//! How the mining parameters shape the result set — a guided tour of
//! `ε`, `mx/my/mz`, the `δ` thresholds, and the merge pass on one noisy
//! synthetic dataset.
//!
//! ```sh
//! cargo run --release --example parameter_study
//! ```

use tricluster::prelude::*;

fn main() {
    let spec = SynthSpec {
        n_genes: 500,
        n_samples: 12,
        n_times: 6,
        n_clusters: 4,
        gene_range: (60, 60),
        sample_range: (5, 5),
        time_range: (3, 3),
        overlap_fraction: 0.25,
        noise: 0.02,
        seed: 99,
        ..SynthSpec::default()
    };
    let data = generate(&spec);
    let base_eps = spec.suggested_epsilon();
    println!(
        "dataset: {:?}, 4 embedded clusters of 60x5x3, 2% noise; suggested ε = {base_eps}\n",
        data.matrix.dims()
    );

    // --- ε sweep: too tight loses clusters, too loose blurs them ---
    println!("ε sweep (mx=40, my=4, mz=2):");
    println!(
        "{:>8}  {:>9} {:>7} {:>9}",
        "ε", "clusters", "recall", "overlap"
    );
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let eps = base_eps * factor;
        let p = Params::builder()
            .epsilon(eps)
            .min_size(40, 4, 2)
            .build()
            .unwrap();
        let r = mine(&data.matrix, &p).unwrap();
        let rec = recovery::score(&data.truth, &r.triclusters, 0.7);
        let met = r.metrics(&data.matrix);
        println!(
            "{eps:>8.4}  {:>9} {:>6.0}% {:>8.1}%",
            r.triclusters.len(),
            rec.recall * 100.0,
            met.overlap * 100.0
        );
    }

    // --- minimum-size sweep: smaller minima admit fragments ---
    println!("\nminimum-size sweep (ε = suggested):");
    println!("{:>12}  {:>9} {:>7}", "mx x my x mz", "clusters", "recall");
    for (mx, my, mz) in [(20, 3, 2), (30, 4, 2), (40, 4, 3), (55, 5, 3)] {
        let p = Params::builder()
            .epsilon(base_eps)
            .min_size(mx, my, mz)
            .build()
            .unwrap();
        let r = mine(&data.matrix, &p).unwrap();
        let rec = recovery::score(&data.truth, &r.triclusters, 0.7);
        println!(
            "{:>12}  {:>9} {:>6.0}%",
            format!("{mx}x{my}x{mz}"),
            r.triclusters.len(),
            rec.recall * 100.0
        );
    }

    // --- merge pass: the knob for decluttering overlapping output ---
    println!("\nmerge pass (η, γ) on a permissive run (mx=25):");
    let permissive = Params::builder()
        .epsilon(base_eps)
        .min_size(25, 3, 2)
        .build()
        .unwrap();
    let before = mine(&data.matrix, &permissive).unwrap();
    println!("  without merge: {} clusters", before.triclusters.len());
    for (eta, gamma) in [(0.1, 0.05), (0.3, 0.15), (0.5, 0.3)] {
        let p = Params::builder()
            .epsilon(base_eps)
            .min_size(25, 3, 2)
            .merge(MergeParams { eta, gamma })
            .build()
            .unwrap();
        let r = mine(&data.matrix, &p).unwrap();
        println!(
            "  η={eta:.2} γ={gamma:.2}: {} clusters ({} merged, {} deleted)",
            r.triclusters.len(),
            r.prune_stats.merged,
            r.prune_stats.deleted_pairwise + r.prune_stats.deleted_multicover
        );
    }

    // --- cluster types under delta constraints ---
    println!("\nδ^z constraint: keeping only clusters that are flat over time:");
    let flat_time = Params::builder()
        .epsilon(base_eps)
        .min_size(30, 3, 2)
        .delta_time(0.5)
        .build()
        .unwrap();
    let r = mine(&data.matrix, &flat_time).unwrap();
    println!(
        "  {} clusters survive δ^z = 0.5 (synthetic time factors vary, so few/none should)",
        r.triclusters.len()
    );
    for c in r.triclusters.iter().take(3) {
        println!(
            "    {}",
            tricluster::core::report::summary(&data.matrix, c, 1e-6)
        );
    }
}
