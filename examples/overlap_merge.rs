//! The merge/delete post-processing (paper §4.4) on the paper's own
//! running example: with `my = 2` the extra cluster
//! `C4 = {g0,g2,g6,g7,g9} × {s1,s4}` appears, fully covered by `C2 ∪ C3`;
//! the multi-cover deletion rule removes it.
//!
//! ```sh
//! cargo run --release --example overlap_merge
//! ```

use tricluster::core::testdata::paper_table1;
use tricluster::prelude::*;

fn describe(label: &str, clusters: &[Tricluster]) {
    println!("{label}: {} clusters", clusters.len());
    for c in clusters {
        println!(
            "  genes {:?} x samples {:?} x times {:?}  ({} cells)",
            c.genes.to_vec(),
            c.samples,
            c.times,
            c.span_size()
        );
    }
}

fn main() {
    let m = paper_table1();
    println!("Table 1 running example, mx=3, my=2, mz=2, ε=0.01\n");

    // Without the merge pass: C1, C2, C3 and the subsumed-in-spirit C4.
    let plain = Params::builder()
        .epsilon(0.01)
        .min_size(3, 2, 2)
        .build()
        .unwrap();
    let before = mine(&m, &plain).unwrap();
    describe("without merge/prune", &before.triclusters);

    // With the multi-cover deletion rule (η = 0.05): C4's 20 cells are all
    // inside C2 ∪ C3, so its uncovered fraction is 0 < η and it is deleted.
    let merged = Params::builder()
        .epsilon(0.01)
        .min_size(3, 2, 2)
        .merge(MergeParams {
            eta: 0.05,
            gamma: 0.0,
        })
        .build()
        .unwrap();
    let after = mine(&m, &merged).unwrap();
    println!();
    describe("with merge/prune (η = 0.05)", &after.triclusters);
    println!(
        "\nprune stats: {} merged, {} deleted pairwise, {} deleted multi-cover",
        after.prune_stats.merged,
        after.prune_stats.deleted_pairwise,
        after.prune_stats.deleted_multicover
    );

    // Metrics before and after: overlap drops.
    let met_before = before.metrics(&m);
    let met_after = after.metrics(&m);
    println!(
        "\noverlap before: {:.1}%   after: {:.1}%",
        met_before.overlap * 100.0,
        met_after.overlap * 100.0
    );
}
