//! The paper's §5.2 real-data workflow on the simulated yeast cell-cycle
//! elutriation dataset: mine triclusters at the paper's parameters, print
//! the metrics table, and run GO-term enrichment on each cluster (Table 2).
//!
//! ```sh
//! cargo run --release --example yeast_cellcycle            # scaled (fast)
//! TRICLUSTER_FULL=1 cargo run --release --example yeast_cellcycle  # 7679 genes
//! ```

use tricluster::microarray::go::{self, CatalogSpec};
use tricluster::microarray::yeast::{self, YeastSpec};
use tricluster::prelude::*;

fn main() {
    let full = std::env::var("TRICLUSTER_FULL").is_ok();
    let spec = if full {
        YeastSpec::default() // 7679 x 13 x 14, the paper's shape
    } else {
        YeastSpec::scaled(1500)
    };
    println!(
        "building simulated elutriation dataset: {} genes x {} channels x {} times…",
        spec.n_genes, spec.n_samples, spec.n_times
    );
    let ds = yeast::build(&spec);

    // The paper's §5.2 parameters: mx=50, my=4, mz=5, eps=0.003 with the
    // ratio threshold relaxed along the time dimension.
    let params = Params::builder()
        .epsilon(yeast::PAPER_EPSILON)
        .epsilon_time(0.05)
        .min_genes(yeast::PAPER_MIN_GENES)
        .min_samples(yeast::PAPER_MIN_SAMPLES)
        .min_times(yeast::PAPER_MIN_TIMES)
        .build()
        .unwrap();

    let t0 = std::time::Instant::now();
    let result = mine(&ds.matrix, &params).unwrap();
    println!(
        "TriCluster output {} clusters in {:.1?} (paper: 5 clusters in 17.8 s)\n",
        result.triclusters.len(),
        t0.elapsed()
    );
    println!("{}\n", result.metrics(&ds.matrix));

    // Cluster membership in input names.
    for (i, c) in result.triclusters.iter().enumerate() {
        let genes: Vec<String> = c.genes.iter().take(5).map(|g| ds.labels.gene(g)).collect();
        let channels: Vec<String> = c.samples.iter().map(|&s| ds.labels.sample(s)).collect();
        let times: Vec<String> = c.times.iter().map(|&t| ds.labels.time(t)).collect();
        println!(
            "C{i}: {} genes ({}…), channels [{}], times [{}]",
            c.genes.count(),
            genes.join(", "),
            channels.join(", "),
            times.join(", ")
        );
    }

    // GO enrichment per cluster (Table 2 shape).
    let groups: Vec<Vec<usize>> = ds.embedded.iter().map(|c| c.genes.to_vec()).collect();
    let catalog = go::simulate_catalog(
        &CatalogSpec {
            n_genes: spec.n_genes,
            ..CatalogSpec::default()
        },
        &groups,
    );
    println!("\nSignificant shared GO terms (p < 0.01):");
    for (i, c) in result.triclusters.iter().enumerate() {
        let report = go::enrich(&catalog, &c.genes.to_vec(), 0.01);
        println!("  C{i} ({} genes):", c.genes.count());
        for cat in go::GoCategory::ALL {
            let terms: Vec<String> = report
                .iter()
                .filter(|e| e.category == cat)
                .take(3)
                .map(|e| e.to_string())
                .collect();
            if !terms.is_empty() {
                println!("    {cat}: {}", terms.join(", "));
            }
        }
    }
}
