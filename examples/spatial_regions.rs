//! The paper's closing use case: the third dimension need not be time —
//! with `gene × region × time` data, TriCluster "can find interesting
//! expression patterns in different regions at different times".
//!
//! Here the axes are genes × spatial regions (tissue sections) × time
//! points: a gene module activates in a *subset of regions* during a
//! *window of time*, and the miner localizes it in both.
//!
//! ```sh
//! cargo run --release --example spatial_regions
//! ```

use tricluster::bitset::BitSet;
use tricluster::prelude::*;

fn main() {
    let (matrix, truth, region_names) = build_spatial_dataset();
    println!(
        "dataset: {} genes x {} regions x {} time points",
        matrix.n_genes(),
        matrix.n_samples(),
        matrix.n_times()
    );
    println!("embedded: a 35-gene module active in 3 of 8 regions, times 2..6\n");

    let params = Params::builder()
        .epsilon(0.002)
        .min_size(25, 3, 3)
        .build()
        .unwrap();
    let result = mine(&matrix, &params).unwrap();

    println!("mined {} clusters:", result.triclusters.len());
    for (i, c) in result.triclusters.iter().enumerate() {
        let regions: Vec<&str> = c.samples.iter().map(|&s| region_names[s]).collect();
        let times: Vec<String> = c.times.iter().map(|&t| format!("t{t}")).collect();
        println!(
            "  cluster {i}: {} genes, regions [{}], times [{}]",
            c.genes.count(),
            regions.join(", "),
            times.join(", ")
        );
    }

    let report = recovery::score(&truth, &result.triclusters, 0.9);
    println!(
        "\nlocalization recovered exactly: recall {:.0}%, precision {:.0}%",
        report.recall * 100.0,
        report.precision * 100.0
    );
}

fn build_spatial_dataset() -> (Matrix3, Vec<Tricluster>, Vec<&'static str>) {
    let regions = vec![
        "cortex",
        "striatum",
        "thalamus",
        "hippocampus",
        "cerebellum",
        "midbrain",
        "pons",
        "medulla",
    ];
    let (ng, nr, nt) = (400, regions.len(), 10);
    let mut m = Matrix3::zeros(ng, nr, nt);
    // background: bounded pseudo-random positive expression
    let mut state = 0x5EED_CAFEu64;
    m.map_in_place(|_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        0.5 + (state % 10_000) as f64 / 500.0
    });
    // module: genes 50..85 in regions {hippocampus, cerebellum, midbrain}
    // during times 2..=6, with a rising-falling activation profile
    let module_genes: Vec<usize> = (50..85).collect();
    let module_regions = [3usize, 4, 5];
    let module_times: Vec<usize> = (2..7).collect();
    let profile = [0.6, 1.2, 2.0, 1.4, 0.8]; // activation over the window
    for (gi, &g) in module_genes.iter().enumerate() {
        let gene_level = 1.0 + gi as f64 * 0.07;
        for (ri, &r) in module_regions.iter().enumerate() {
            let region_gain = 1.0 + ri as f64 * 0.45;
            for (ti, &t) in module_times.iter().enumerate() {
                m.set(g, r, t, gene_level * region_gain * profile[ti]);
            }
        }
    }
    let truth = vec![Tricluster::new(
        BitSet::from_indices(ng, module_genes),
        module_regions.to_vec(),
        module_times,
    )];
    (m, truth, regions)
}
