//! Mining *shifting* (additive) expression patterns via the paper's
//! Lemma 2: a shifting cluster in `D` is a scaling cluster in `exp(D)`.
//!
//! Microarray pipelines usually work in log-expression space, where
//! biologically multiplicative effects become additive — exactly the
//! pattern `mine_shifting` targets.
//!
//! ```sh
//! cargo run --release --example shifting_patterns
//! ```

use tricluster::prelude::*;

fn main() {
    // Build a log-space dataset: 300 genes x 10 samples x 5 times, with two
    // embedded shifting clusters (rows offset by per-sample constants).
    let (matrix, truth) = build_shifting_dataset();
    println!(
        "dataset: {} genes x {} samples x {} times, 2 embedded shifting clusters",
        matrix.n_genes(),
        matrix.n_samples(),
        matrix.n_times()
    );

    let params = Params::builder()
        .epsilon(0.002)
        .min_size(25, 4, 3)
        .build()
        .unwrap();

    // Plain (scaling) mining sees nothing of that extent…
    let scaling = mine(&matrix, &params).unwrap();
    println!(
        "scaling miner on raw log data: {} clusters (additive patterns are invisible)",
        scaling.triclusters.len()
    );

    // …but the exp-transform route of Lemma 2 finds both.
    let (shifting, _) = mine_shifting(&matrix, &params).unwrap();
    println!("shifting miner (Lemma 2): {} clusters", shifting.len());
    for (i, sc) in shifting.iter().enumerate() {
        let (x, y, z) = sc.cluster.shape();
        let offsets: Vec<String> = sc
            .sample_offsets
            .iter()
            .map(|o| format!("{o:+.2}"))
            .collect();
        println!(
            "  shifting cluster {i}: {x} genes x {y} samples x {z} times, \
             sample offsets β = [{}]",
            offsets.join(", ")
        );
    }

    // Verify against the embedded truth.
    let mined: Vec<Tricluster> = shifting.iter().map(|s| s.cluster.clone()).collect();
    let report = recovery::score(&truth, &mined, 0.8);
    println!(
        "\nrecovery: recall {:.0}%, precision {:.0}%",
        report.recall * 100.0,
        report.precision * 100.0
    );
}

fn build_shifting_dataset() -> (Matrix3, Vec<Tricluster>) {
    use tricluster::bitset::BitSet;
    let (ng, ns, nt) = (300, 10, 5);
    let mut m = Matrix3::zeros(ng, ns, nt);
    // background: bounded pseudo-random log-expressions in [-3, 3]
    let mut state = 0xABCDEFu64;
    m.map_in_place(|_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 6000) as f64 / 1000.0 - 3.0
    });
    let mut truth = Vec::new();
    // cluster 1: genes 0..40, samples 0..4, times 0..2
    let offsets1 = [0.0, 0.8, -0.5, 1.2, 0.3];
    for g in 0..40 {
        for (si, off) in offsets1.iter().enumerate() {
            for t in 0..3 {
                m.set(g, si, t, 0.5 + g as f64 * 0.01 + t as f64 * 0.2 + off);
            }
        }
    }
    truth.push(Tricluster::new(
        BitSet::from_indices(ng, 0..40),
        (0..5).collect(),
        (0..3).collect(),
    ));
    // cluster 2: genes 100..130, samples 5..9, times 2..4
    let offsets2 = [0.0, -1.1, 0.6, 0.9, -0.2];
    for g in 100..130 {
        for (si, off) in offsets2.iter().enumerate() {
            for t in 2..5 {
                m.set(
                    g,
                    5 + si,
                    t,
                    -0.7 + (g - 100) as f64 * 0.02 + t as f64 * 0.15 + off,
                );
            }
        }
    }
    truth.push(Tricluster::new(
        BitSet::from_indices(ng, 100..130),
        (5..10).collect(),
        (2..5).collect(),
    ));
    (m, truth)
}
