//! Quickstart: generate a synthetic 3D expression matrix with embedded
//! clusters, mine it, and inspect the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tricluster::prelude::*;

fn main() {
    // 1. A synthetic dataset: 600 genes x 12 samples x 6 time points with
    //    five embedded scaling clusters and 2% measurement noise.
    let spec = SynthSpec {
        n_genes: 600,
        n_samples: 12,
        n_times: 6,
        n_clusters: 5,
        gene_range: (60, 80),
        sample_range: (4, 6),
        time_range: (3, 4),
        overlap_fraction: 0.2,
        noise: 0.02,
        seed: 7,
        ..SynthSpec::default()
    };
    let data = generate(&spec);
    println!(
        "dataset: {} genes x {} samples x {} times, {} embedded clusters\n",
        data.matrix.n_genes(),
        data.matrix.n_samples(),
        data.matrix.n_times(),
        data.truth.len()
    );

    // 2. Mining parameters. `suggested_epsilon` sizes the ratio tolerance
    //    to the generator's noise; minimum cluster shape is 40 x 3 x 2.
    let params = Params::builder()
        .epsilon(spec.suggested_epsilon())
        .min_size(40, 3, 2)
        .build()
        .expect("valid parameters");

    // 3. Mine.
    let result = mine(&data.matrix, &params).unwrap();
    println!(
        "mined {} maximal triclusters in {:?}",
        result.triclusters.len(),
        result.timings.total()
    );
    for (i, c) in result.triclusters.iter().enumerate() {
        let (x, y, z) = c.shape();
        println!(
            "  cluster {i}: {x} genes x {y} samples x {z} times \
             (samples {:?}, times {:?})",
            c.samples, c.times
        );
    }

    // 4. The paper's quality metrics.
    println!("\n{}", result.metrics(&data.matrix));

    // 5. Compare against the embedded ground truth.
    let report = recovery::score(&data.truth, &result.triclusters, 0.8);
    println!(
        "\nrecovery vs ground truth: recall {:.0}%, precision {:.0}%, F1 {:.2}",
        report.recall * 100.0,
        report.precision * 100.0,
        report.f1
    );
}
