//! TriCluster — mining coherent clusters in 3D microarray data.
//!
//! A production-quality Rust reproduction of *"TRICLUSTER: An Effective
//! Algorithm for Mining Coherent Clusters in 3D Microarray Data"* (Zhao &
//! Zaki, SIGMOD 2005). This facade crate re-exports the workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`core`] | the TriCluster algorithm: range multigraph, bicluster/tricluster mining, merge/prune, metrics |
//! | [`matrix`] | dense labeled 2D/3D matrices, TSV I/O, preprocessing |
//! | [`bitset`] | the gene-set bitset |
//! | [`graph`] | multigraph + maximal-clique substrate |
//! | [`synth`] | the paper's synthetic data generator + recovery scoring |
//! | [`microarray`] | simulated yeast cell-cycle data + GO enrichment |
//! | [`baselines`] | brute-force oracle, pCluster, Cheng–Church |
//!
//! # Quickstart
//!
//! ```
//! use tricluster::prelude::*;
//!
//! // Generate a small synthetic dataset with 3 embedded clusters…
//! let spec = SynthSpec {
//!     n_genes: 200, n_samples: 8, n_times: 4, n_clusters: 3,
//!     gene_range: (30, 30), sample_range: (4, 4), time_range: (3, 3),
//!     noise: 0.0, ..SynthSpec::default()
//! };
//! let data = generate(&spec);
//!
//! // …mine it…
//! let params = Params::builder()
//!     .epsilon(0.001)
//!     .min_size(20, 3, 2)
//!     .build()
//!     .unwrap();
//! let result = mine(&data.matrix, &params).unwrap();
//!
//! // …and every embedded cluster is recovered exactly.
//! let report = recovery::score(&data.truth, &result.triclusters, 0.99);
//! assert_eq!(report.recall, 1.0);
//! ```

pub use tricluster_baselines as baselines;
pub use tricluster_bitset as bitset;
pub use tricluster_core as core;
pub use tricluster_graph as graph;
pub use tricluster_matrix as matrix;
pub use tricluster_microarray as microarray;
pub use tricluster_synth as synth;

/// One-stop imports for typical use.
pub mod prelude {
    pub use tricluster_core::{
        classify, cluster_metrics, mine, mine_auto, mine_auto_observed, mine_observed,
        mine_shifting, obs, Bicluster, ClusterType, FanoutLevel, FanoutMode, MergeParams, Metrics,
        MineError, Miner, MiningResult, Params, Tricluster, TruncationReason, WorkerFailure,
    };
    pub use tricluster_matrix::{io, preprocess, Axis, Labels, Matrix2, Matrix3};
    pub use tricluster_synth::{generate, recovery, SynthDataset, SynthSpec};
}
