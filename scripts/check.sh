#!/usr/bin/env bash
# Full pre-change gate: build, tests, formatting, lints. Entirely offline —
# everything it needs ships with the repo and the Rust toolchain.
#
#   ./scripts/check.sh            # run everything
#   ./scripts/check.sh --fast     # skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo build --workspace
if [[ $fast -eq 0 ]]; then
    run cargo build --workspace --release
fi
run cargo test --quiet --workspace
run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings

# Schema gate: a real `mine --report-json` run must emit a valid
# tricluster.report/v2 document (validated in-process, no external tools).
run cargo test --quiet -p tricluster-cli report_json_matches_v2_schema

# Fault-injection gate: every named failpoint site, hit with every action,
# must degrade into a typed error or a valid truncated subset — never a
# process abort — and budget-truncated runs must stay deterministic.
# (These compile tricluster-core with the `failpoints` feature; release
# binaries compile the sites to nothing. The suite includes the JSON-lines
# torn-line regression: a panic mid-event must never tear the stream.)
run cargo test --quiet --test fault_injection
run cargo test --quiet --test fault_injection jsonlines_panic_never_tears_a_line
run cargo test --quiet --test cancellation

# Unwrap-budget gate: panics in crates/core are either isolated at worker
# boundaries or converted to typed errors, so the count of potentially
# panicking call sites must not creep up. Lower the baseline when you
# remove some; raising it needs a deliberate edit of the baseline file.
unwrap_count=$(grep -rEo '\.unwrap\(\)|\.expect\(|panic!\(' crates/core/src | wc -l)
unwrap_budget=$(tr -dc '0-9' < scripts/unwrap_budget.txt)
echo
echo "==> unwrap budget: $unwrap_count potentially panicking call sites in crates/core/src (budget $unwrap_budget)"
if (( unwrap_count > unwrap_budget )); then
    echo "error: crates/core/src has $unwrap_count unwrap()/expect(/panic!( call sites," >&2
    echo "       exceeding the committed budget of $unwrap_budget (scripts/unwrap_budget.txt)." >&2
    echo "       Prefer typed errors or worker isolation; raise the budget only deliberately." >&2
    exit 1
fi

if [[ $fast -eq 0 ]]; then
    # Perf-regression gate: smoke-sized fig7 sweep against the committed
    # baseline. Tolerances are deliberately loose (+100% + 250 ms, memory
    # +50% + 4 MiB) — the committed baseline comes from a different
    # machine; the gate exists to catch order-of-magnitude regressions,
    # not scheduler noise. Regenerate the baseline after intentional
    # performance changes:
    #   cargo run --release -p tricluster-bench --features track-alloc \
    #     --bin fig7 -- --smoke --json current.json
    #   cargo run --release -p tricluster-bench --bin bench -- \
    #     diff BENCH_baseline.json current.json --update
    smoke_json="$(mktemp /tmp/tricluster-smoke-XXXXXX.json)"
    det_tsv="$(mktemp /tmp/tricluster-det-XXXXXX.tsv)"
    det_t1="$(mktemp /tmp/tricluster-det-t1-XXXXXX.json)"
    det_t4="$(mktemp /tmp/tricluster-det-t4-XXXXXX.json)"
    trace_json="$(mktemp /tmp/tricluster-trace-XXXXXX.json)"
    flame_txt="$(mktemp /tmp/tricluster-flame-XXXXXX.folded)"
    ledger_dir="$(mktemp -d /tmp/tricluster-ledger-XXXXXX)"
    met_tsv="$(mktemp /tmp/tricluster-met-XXXXXX.tsv)"
    met_base="$(mktemp /tmp/tricluster-met-base-XXXXXX.json)"
    met_json="$(mktemp /tmp/tricluster-met-XXXXXX.json)"
    met_log="$(mktemp /tmp/tricluster-met-XXXXXX.log)"
    serve_log="$(mktemp /tmp/tricluster-serve-XXXXXX.log)"
    serve_json="$(mktemp /tmp/tricluster-serve-XXXXXX.json)"
    serve_ledger="$(mktemp -d /tmp/tricluster-serve-ledger-XXXXXX)"
    serve_access="$(mktemp /tmp/tricluster-serve-access-XXXXXX.jsonl)"
    serve_pid=""
    trap 'rm -f "$smoke_json" "$det_tsv" "$det_t1" "$det_t4" "$trace_json" "$flame_txt" "$met_tsv" "$met_base" "$met_json" "$met_log" "$serve_log" "$serve_json" "$serve_access"; rm -rf "$ledger_dir" "$serve_ledger"; [[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null' EXIT
    run cargo run --release --quiet -p tricluster-bench --features track-alloc \
        --bin fig7 -- --smoke --json "$smoke_json"
    run cargo run --release --quiet -p tricluster-bench --bin bench -- \
        diff BENCH_baseline.json "$smoke_json" \
        --time-tol 1.0 --time-floor 0.25 --mem-tol 0.5 --mem-floor $((4 << 20))

    # Kernel-smoke gate: the per-pair range-kernel microbenchmark must run
    # end to end and report every stage (transpose/pair/classify/ranges/
    # intersect). No thresholds — per-stage nanoseconds are too
    # machine-dependent to gate on; the smoke exists so the harness itself
    # (and the classify mirror it carries) cannot silently rot.
    run cargo run --release --quiet -p tricluster-bench --bin bench -- \
        kernel --genes 100 --min-ms 5

    # Determinism gate: the same input mined at --threads 1 and --threads 4
    # (the latter taking the intra-slice pair/branch fan-out on few-slice
    # inputs) must produce byte-identical input-determined report sections —
    # clusters, counters, histograms, logical memory, search space.
    run cargo run --release --quiet -p tricluster-cli --bin tricluster -- \
        synth "$det_tsv" --genes 300 --samples 10 --times 3 --clusters 3 --noise 0.01
    run cargo run --release --quiet -p tricluster-cli --bin tricluster -- \
        mine "$det_tsv" --eps 0.012 --threads 1 --report-json "$det_t1"
    run cargo run --release --quiet -p tricluster-cli --bin tricluster -- \
        mine "$det_tsv" --eps 0.012 --threads 4 --report-json "$det_t4"
    run cargo run --release --quiet -p tricluster-bench --bin bench -- \
        determinism "$det_t1" "$det_t4"

    # Trace-smoke gate: a multi-threaded run with a live timeline and
    # heartbeat must still exit 0 and leave a non-empty Chrome Trace Event
    # file (the in-process test trace_out_writes_valid_chrome_trace
    # validates its structure; this exercises the release binary).
    run cargo run --release --quiet -p tricluster-cli --bin tricluster -- \
        mine "$det_tsv" --eps 0.012 --threads 2 --trace-out "$trace_json" --progress=0.1
    if [[ ! -s "$trace_json" ]] || ! grep -q '"traceEvents"' "$trace_json"; then
        echo "error: --trace-out produced no usable trace at $trace_json" >&2
        exit 1
    fi
    echo "==> trace smoke: $(grep -c '"ph"' "$trace_json") events in $trace_json"

    # Ledger-smoke gate: two archived runs over the same input must list,
    # show, and diff cleanly through the release binary (generous
    # tolerances — identical workloads on the same machine), and the
    # flamegraph export must be non-empty with phase-span roots.
    run cargo run --release --quiet -p tricluster-cli --bin tricluster -- \
        mine "$det_tsv" --eps 0.012 --threads 1 --ledger "$ledger_dir" --flame-out "$flame_txt"
    run cargo run --release --quiet -p tricluster-cli --bin tricluster -- \
        mine "$det_tsv" --eps 0.012 --threads 1 --ledger "$ledger_dir"
    if ! grep -q '^phase\.slices\.wall' "$flame_txt"; then
        echo "error: --flame-out produced no phase-rooted stacks at $flame_txt" >&2
        exit 1
    fi
    ids=$(cargo run --release --quiet -p tricluster-cli --bin tricluster -- \
        runs list "$ledger_dir" --ids)
    if [[ $(wc -l <<< "$ids") -ne 2 ]]; then
        echo "error: expected 2 archived runs in $ledger_dir, got: $ids" >&2
        exit 1
    fi
    run cargo run --release --quiet -p tricluster-cli --bin tricluster -- \
        runs show "$ledger_dir" "$(head -n1 <<< "$ids")"
    run cargo run --release --quiet -p tricluster-cli --bin tricluster -- \
        runs diff "$ledger_dir" $ids --time-tol 2.0 --time-floor 0.5
    echo "==> ledger smoke: 2 runs archived, shown, and diffed in $ledger_dir"

    # Metrics-smoke gate: a mine with a live metrics endpoint must serve
    # /healthz, /metrics, and /progress *while mining* (the workload is
    # sized to run a couple of seconds; scrapes go through the release
    # binary's own `watch` client), and serving metrics must not change a
    # byte of the input-determined report sections relative to a plain run
    # at a different thread count.
    run cargo run --release --quiet -p tricluster-cli --bin tricluster -- \
        synth "$met_tsv" --genes 1200 --samples 12 --times 4 --clusters 4 --noise 0.02
    run cargo run --release --quiet -p tricluster-cli --bin tricluster -- \
        mine "$met_tsv" --eps 0.012 --threads 1 --report-json "$met_base"
    echo
    echo "==> metrics smoke: mine --metrics-addr with live scrapes"
    ./target/release/tricluster mine "$met_tsv" --eps 0.012 --threads 4 \
        --metrics-addr 127.0.0.1:0 --report-json "$met_json" >/dev/null 2> "$met_log" &
    met_pid=$!
    met_url=""
    for _ in $(seq 1 500); do
        met_url=$(sed -n 's/^metrics: serving on //p' "$met_log" | head -n1)
        [[ -n "$met_url" ]] && break
        sleep 0.01
    done
    if [[ -z "$met_url" ]]; then
        echo "error: mine --metrics-addr never announced its endpoint (log: $(cat "$met_log"))" >&2
        exit 1
    fi
    ./target/release/tricluster watch "$met_url" --get /healthz | grep -q '^ok$'
    ./target/release/tricluster watch "$met_url" --get /metrics | grep -q '^# EOF$'
    ./target/release/tricluster watch "$met_url" --once | grep -q 'slices'
    if ! kill -0 "$met_pid" 2>/dev/null; then
        echo "error: mine finished before the scrapes — metrics smoke did not observe a live run" >&2
        wait "$met_pid" || true
        exit 1
    fi
    wait "$met_pid"
    echo "==> metrics smoke: scraped /healthz, /metrics, /progress mid-run at $met_url"
    run cargo run --release --quiet -p tricluster-bench --bin bench -- \
        determinism "$met_base" "$met_json"

    # Serve-smoke gate: the multi-tenant daemon must admit concurrent jobs,
    # shed load with a machine-readable 429 when its bounded queue fills,
    # degrade an over-quota job into a structured failed record, cancel a
    # job mid-flight, drain cleanly on POST /shutdown — and a job mined
    # through the daemon must reproduce the one-shot report byte-for-byte
    # across the input-determined sections (`bench determinism`).
    echo
    echo "==> serve smoke: daemon admission, backpressure, cancellation, drain"
    # stdout AND stderr go to the log: an inherited stdout would hold any
    # pipe this script writes to open for as long as the daemon lives.
    ./target/release/tricluster serve 127.0.0.1:0 --workers 1 --queue-depth 2 \
        --ledger "$serve_ledger" --access-log "$serve_access" > "$serve_log" 2>&1 &
    serve_pid=$!
    serve_url=""
    for _ in $(seq 1 500); do
        serve_url=$(sed -n 's/^serve: listening on //p' "$serve_log" | head -n1)
        [[ -n "$serve_url" ]] && break
        sleep 0.01
    done
    if [[ -z "$serve_url" ]]; then
        echo "error: serve never announced its endpoint (log: $(cat "$serve_log"))" >&2
        exit 1
    fi
    # Occupy the single worker with a multi-second job, then fill the queue:
    # one over-quota job (64-byte per-job memory cap, far below the matrix)
    # and one clean deterministic job behind it.
    long_id=$(./target/release/tricluster submit "$serve_url" "$met_tsv" \
        --eps 0.02 --threads 1 --label long 2>/dev/null)
    fail_id=$(./target/release/tricluster submit "$serve_url" "$det_tsv" \
        --max-memory 64 --label over-quota 2>/dev/null)
    det_id=$(./target/release/tricluster submit "$serve_url" "$det_tsv" \
        --eps 0.012 --label deterministic 2>/dev/null)
    # Queue capacity 2 is now exhausted: the next submission must shed with
    # a machine-readable queue_full rejection (submit exits non-zero).
    if shed=$(./target/release/tricluster submit "$serve_url" "$det_tsv" 2>&1); then
        echo "error: fourth submission was admitted past a full queue" >&2
        exit 1
    fi
    if ! grep -q 'queue_full' <<< "$shed"; then
        echo "error: shed submission carried no queue_full reason: $shed" >&2
        exit 1
    fi
    # Mid-job observability: with the long job still occupying the worker,
    # the daemon-lifetime exposition must be live, carry the serve
    # families, and be well-terminated.
    serve_metrics=$(./target/release/tricluster watch "$serve_url" --get /metrics)
    for needle in 'tricluster_serve_jobs_accepted_total 3' \
                  'tricluster_serve_jobs_rejected_queue_full_total 1' \
                  'tricluster_serve_workers_busy 1' \
                  '# TYPE tricluster_serve_job_queue_wait_seconds histogram' \
                  '# EOF'; do
        if ! grep -qF "$needle" <<< "$serve_metrics"; then
            echo "error: mid-job /metrics scrape lacks \"$needle\": $serve_metrics" >&2
            exit 1
        fi
    done
    # Kill the occupying job mid-flight; the daemon keeps serving.
    ./target/release/tricluster submit "$serve_url" --cancel "$long_id" >/dev/null
    # Wait out a clean job and collect its report; the queue may still be
    # full while the cancelled job winds down, so retry the submission
    # until a slot frees up.
    submitted=0
    for _ in $(seq 1 40); do
        if ./target/release/tricluster submit "$serve_url" "$det_tsv" --eps 0.012 \
            --wait --report-json "$serve_json" >/dev/null 2>&1; then
            submitted=1
            break
        fi
        sleep 0.5
    done
    if (( submitted != 1 )); then
        echo "error: the deterministic serve job never completed" >&2
        exit 1
    fi
    ./target/release/tricluster watch "$serve_url" --get "/jobs/$fail_id" \
        | grep -q '"failed"' || {
        echo "error: over-quota job $fail_id is not a structured failed record" >&2
        exit 1
    }
    ./target/release/tricluster watch "$serve_url" --jobs | grep -q 'over-quota'
    # Request-scoped audit: the job's originating request id (from its
    # status) must appear in the access log on the submission record.
    det_rid=$(./target/release/tricluster watch "$serve_url" --get "/jobs/$det_id" \
        | tr -d ' ' | sed -n 's/.*"request_id":\([0-9]*\).*/\1/p' | head -n1)
    if [[ -z "$det_rid" ]]; then
        echo "error: job $det_id carries no request_id" >&2
        exit 1
    fi
    if ! grep "\"request_id\":$det_rid," "$serve_access" | grep -q "\"job_id\":$det_id"; then
        echo "error: access log has no record tying request $det_rid to job $det_id:" >&2
        cat "$serve_access" >&2
        exit 1
    fi
    # Graceful drain: stop admitting, finish in-flight, exit 0.
    ./target/release/tricluster submit "$serve_url" --shutdown drain >/dev/null
    wait "$serve_pid"
    serve_pid=""
    archived=$(./target/release/tricluster runs list "$serve_ledger" --ids | wc -l)
    if (( archived < 2 )); then
        echo "error: expected >=2 jobs archived by the draining daemon, got $archived" >&2
        exit 1
    fi
    echo "==> serve smoke: shed, scraped /metrics mid-job, audited request $det_rid, drained ($archived jobs archived) at $serve_url"
    # The served job ran under full observability (service metrics, access
    # log, lifecycle trace); its deterministic sections must still match
    # the unmonitored one-shot mine byte for byte.
    run cargo run --release --quiet -p tricluster-bench --bin bench -- \
        determinism "$det_t1" "$serve_json"
fi

echo
echo "All checks passed."
