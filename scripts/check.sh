#!/usr/bin/env bash
# Full pre-change gate: build, tests, formatting, lints. Entirely offline —
# everything it needs ships with the repo and the Rust toolchain.
#
#   ./scripts/check.sh            # run everything
#   ./scripts/check.sh --fast     # skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo build --workspace
if [[ $fast -eq 0 ]]; then
    run cargo build --workspace --release
fi
run cargo test --quiet --workspace
run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings

# Schema gate: a real `mine --report-json` run must emit a valid
# tricluster.report/v2 document (validated in-process, no external tools).
run cargo test --quiet -p tricluster-cli report_json_matches_v2_schema

if [[ $fast -eq 0 ]]; then
    # Perf-regression gate: smoke-sized fig7 sweep against the committed
    # baseline. Tolerances are deliberately loose (+100% + 250 ms, memory
    # +50% + 4 MiB) — the committed baseline comes from a different
    # machine; the gate exists to catch order-of-magnitude regressions,
    # not scheduler noise. Regenerate the baseline after intentional
    # performance changes:
    #   cargo run --release -p tricluster-bench --features track-alloc \
    #     --bin fig7 -- --smoke --json BENCH_baseline.json
    smoke_json="$(mktemp /tmp/tricluster-smoke-XXXXXX.json)"
    trap 'rm -f "$smoke_json"' EXIT
    run cargo run --release --quiet -p tricluster-bench --features track-alloc \
        --bin fig7 -- --smoke --json "$smoke_json"
    run cargo run --release --quiet -p tricluster-bench --bin bench -- \
        diff BENCH_baseline.json "$smoke_json" \
        --time-tol 1.0 --time-floor 0.25 --mem-tol 0.5 --mem-floor $((4 << 20))
fi

echo
echo "All checks passed."
