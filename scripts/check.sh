#!/usr/bin/env bash
# Full pre-change gate: build, tests, formatting, lints. Entirely offline —
# everything it needs ships with the repo and the Rust toolchain.
#
#   ./scripts/check.sh            # run everything
#   ./scripts/check.sh --fast     # skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo build --workspace
if [[ $fast -eq 0 ]]; then
    run cargo build --workspace --release
fi
run cargo test --quiet --workspace
run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings

echo
echo "All checks passed."
