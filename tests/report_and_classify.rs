//! Cross-crate flows for cluster reporting, classification, and the
//! normalization preprocessing.

use tricluster::core::report;
use tricluster::core::testdata::paper_table1;
use tricluster::matrix::normalize;
use tricluster::prelude::*;

fn mined() -> (Matrix3, MiningResult) {
    let m = paper_table1();
    let params = Params::builder()
        .epsilon(0.01)
        .min_size(3, 3, 2)
        .build()
        .unwrap();
    let r = mine(&m, &params).unwrap();
    (m, r)
}

#[test]
fn paper_clusters_classified_by_type() {
    let (m, result) = mined();
    let types: Vec<ClusterType> = result
        .triclusters
        .iter()
        .map(|c| classify(&m, c, 1e-9))
        .collect();
    // C1 (sorted first by gene list {0,2,6,9}) is sample-constant, as is
    // C3; the scaling cluster is {1,4,8}
    assert_eq!(
        types.iter().filter(|t| **t == ClusterType::Scaling).count(),
        1
    );
    assert_eq!(
        types
            .iter()
            .filter(|t| **t == ClusterType::SampleConstant)
            .count(),
        2
    );
}

#[test]
fn csv_report_roundtrips_through_parser() {
    let (m, result) = mined();
    let mut buf = Vec::new();
    report::write_csv(&mut buf, &m, &result.triclusters, 1e-9).unwrap();
    let parsed = report::parse_csv(buf.as_slice(), m.n_genes()).unwrap();
    assert_eq!(parsed, result.triclusters);
}

#[test]
fn text_report_names_everything() {
    let (m, result) = mined();
    let labels = Labels::default_for(10, 7, 2);
    let mut buf = Vec::new();
    report::write_text(&mut buf, &m, &result.triclusters, &labels, 1e-9).unwrap();
    let s = String::from_utf8(buf).unwrap();
    for needle in ["g1 g4 g8", "s1 s4 s6", "t0 t1", "Overlap"] {
        assert!(s.contains(needle), "report missing {needle:?}:\n{s}");
    }
}

/// Quantile normalization must not destroy ratio-coherent structure when
/// the columns already share a distribution shape — and mining still finds
/// clusters in standardized data via the shifting route.
#[test]
fn normalization_pipeline_compatibility() {
    let m = paper_table1();
    // log2 + shifting route finds C1's genes (scaling in raw space =
    // shifting in log space)
    let logm = normalize::log2_transform(&m);
    assert!(
        logm.as_slice().iter().all(|v| v.is_finite()),
        "fixture is positive"
    );
    let params = Params::builder()
        .epsilon(0.015)
        .min_size(3, 3, 2)
        .build()
        .unwrap();
    let (shifting, _) = mine_shifting(&logm, &params).unwrap();
    assert!(
        shifting
            .iter()
            .any(|sc| sc.cluster.genes.to_vec() == vec![1, 4, 8]),
        "C1 should appear as a shifting cluster in log space: {:?}",
        shifting
            .iter()
            .map(|s| s.cluster.genes.to_vec())
            .collect::<Vec<_>>()
    );
}

#[test]
fn standardize_then_classify() {
    let m = paper_table1();
    let z = normalize::standardize_genes(&m);
    // standardized C2 rows become identical across samples within a slice
    // (they were constant per slice already), so the region stays
    // sample-constant under classification with a loose tolerance
    let c2 = &mined().1.triclusters[0];
    let t = classify(&z, c2, 1e-9);
    assert_eq!(t, ClusterType::SampleConstant, "{t:?}");
}
