//! Degenerate and boundary inputs through the public pipeline: the library
//! must behave sensibly (empty results, not panics) on the smallest and
//! emptiest matrices a caller can construct.

use tricluster::prelude::*;

fn loose_params() -> Params {
    Params::builder()
        .epsilon(0.1)
        .min_size(1, 1, 1)
        .build()
        .unwrap()
}

#[test]
fn single_cell_matrix() {
    let mut m = Matrix3::zeros(1, 1, 1);
    m.set(0, 0, 0, 5.0);
    let result = mine(&m, &loose_params()).unwrap();
    // one gene x one sample x one time is a (trivial) maximal cluster
    assert_eq!(result.triclusters.len(), 1);
    assert_eq!(result.triclusters[0].span_size(), 1);
}

#[test]
fn zero_genes() {
    let m = Matrix3::zeros(0, 3, 2);
    let result = mine(&m, &loose_params()).unwrap();
    assert!(result.triclusters.is_empty());
    assert!(!result.truncated);
}

#[test]
fn zero_samples() {
    let m = Matrix3::zeros(4, 0, 2);
    let result = mine(&m, &loose_params()).unwrap();
    assert!(result.triclusters.is_empty());
}

#[test]
fn zero_times() {
    let m = Matrix3::zeros(4, 3, 0);
    let result = mine(&m, &loose_params()).unwrap();
    assert!(result.triclusters.is_empty());
    assert!(result.per_time_biclusters.is_empty());
}

#[test]
fn single_time_slice() {
    let mut m = Matrix3::zeros(3, 3, 1);
    for g in 0..3 {
        for s in 0..3 {
            m.set(g, s, 0, (g + 1) as f64 * [1.0, 2.0, 3.0][s]);
        }
    }
    let p = Params::builder()
        .epsilon(0.001)
        .min_size(2, 2, 1)
        .build()
        .unwrap();
    let result = mine(&m, &p).unwrap();
    assert_eq!(result.triclusters.len(), 1);
    assert_eq!(result.triclusters[0].shape(), (3, 3, 1));
}

#[test]
fn all_zero_matrix_yields_nothing_beyond_trivial() {
    // zeros have no defined ratios; without preprocessing, no cluster with
    // ≥2 samples (which would need a ratio range) can exist. Single-column
    // single-slice regions are *vacuously* coherent — no 2x2 submatrix
    // exists — so with min sizes of 1 the miner correctly reports them.
    let m = Matrix3::zeros(4, 3, 2);
    let p = Params::builder()
        .epsilon(0.1)
        .min_size(2, 2, 1)
        .build()
        .unwrap();
    assert!(mine(&m, &p).unwrap().triclusters.is_empty());
    // and the vacuous case: each (sample, time) fiber of all genes
    let trivial = mine(&m, &loose_params()).unwrap();
    assert_eq!(trivial.triclusters.len(), 6, "3 samples x 2 times fibers");
    assert!(trivial.triclusters.iter().all(|c| c.samples.len() == 1));
}

#[test]
fn nan_cells_are_skipped() {
    let mut m = Matrix3::zeros(3, 3, 2);
    for g in 0..3 {
        for s in 0..3 {
            for t in 0..2 {
                m.set(g, s, t, (g + 1) as f64 * (s + 1) as f64 * (t + 1) as f64);
            }
        }
    }
    m.set(0, 0, 0, f64::NAN);
    let p = Params::builder()
        .epsilon(0.001)
        .min_size(2, 2, 2)
        .build()
        .unwrap();
    let result = mine(&m, &p).unwrap();
    // the NaN cell removes g0 from ranges involving (s0, t0); the clean
    // 2x3x2 block on genes 1,2 must still be found
    assert!(
        result
            .triclusters
            .iter()
            .any(|c| c.genes.contains(1) && c.genes.contains(2) && c.samples.len() == 3),
        "{:?}",
        result.triclusters
    );
}

#[test]
fn negative_only_matrix() {
    // all-negative values: ratios are positive, mining works unchanged
    let mut m = Matrix3::zeros(3, 3, 2);
    for g in 0..3 {
        for s in 0..3 {
            for t in 0..2 {
                m.set(g, s, t, -((g + 1) as f64 * (s + 1) as f64 * (t + 1) as f64));
            }
        }
    }
    let p = Params::builder()
        .epsilon(0.001)
        .min_size(3, 3, 2)
        .build()
        .unwrap();
    let result = mine(&m, &p).unwrap();
    assert_eq!(result.triclusters.len(), 1);
    assert_eq!(result.triclusters[0].shape(), (3, 3, 2));
}

#[test]
fn thresholds_larger_than_matrix() {
    let m = Matrix3::zeros(3, 3, 2);
    let p = Params::builder()
        .epsilon(0.1)
        .min_size(10, 10, 10)
        .build()
        .unwrap();
    assert!(mine(&m, &p).unwrap().triclusters.is_empty());
}

#[test]
fn duplicate_columns_cluster_together() {
    // two identical sample columns always form a ratio-1 range
    let mut m = Matrix3::zeros(4, 3, 1);
    for g in 0..4 {
        let v = 1.0 + g as f64 * 1.7;
        m.set(g, 0, 0, v);
        m.set(g, 1, 0, v);
        m.set(g, 2, 0, 100.0 + (g as f64 * 37.3) % 11.0);
    }
    let p = Params::builder()
        .epsilon(0.0)
        .min_size(4, 2, 1)
        .build()
        .unwrap();
    let result = mine(&m, &p).unwrap();
    assert_eq!(result.triclusters.len(), 1);
    assert_eq!(result.triclusters[0].samples, vec![0, 1]);
}

#[test]
fn metrics_on_empty_result() {
    let m = Matrix3::zeros(3, 3, 2);
    let p = Params::builder()
        .epsilon(0.1)
        .min_size(2, 2, 2)
        .build()
        .unwrap();
    let result = mine(&m, &p).unwrap();
    assert!(result.triclusters.is_empty());
    let met = result.metrics(&m);
    assert_eq!(met.cluster_count, 0);
    assert_eq!(met.coverage, 0);
    assert_eq!(met.overlap, 0.0);
}

#[test]
fn epsilon_zero_requires_exact_ratios() {
    let mut m = Matrix3::zeros(2, 2, 1);
    m.set(0, 0, 0, 1.0);
    m.set(0, 1, 0, 2.0);
    m.set(1, 0, 0, 3.0);
    m.set(1, 1, 0, 6.000001); // ratio off by 1.7e-7
    let p = Params::builder()
        .epsilon(0.0)
        .min_size(2, 2, 1)
        .build()
        .unwrap();
    assert!(mine(&m, &p).unwrap().triclusters.is_empty());
    let p = Params::builder()
        .epsilon(1e-6)
        .min_size(2, 2, 1)
        .build()
        .unwrap();
    assert_eq!(mine(&m, &p).unwrap().triclusters.len(), 1);
}
