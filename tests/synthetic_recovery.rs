//! Recovery of embedded clusters from synthetic data (the workload behind
//! Figure 7), including the noise-robustness role of extended/patched
//! ranges.

use tricluster::core::params::RangeExtension;
use tricluster::prelude::*;

fn spec_small(noise: f64, seed: u64) -> SynthSpec {
    SynthSpec {
        n_genes: 400,
        n_samples: 10,
        n_times: 6,
        n_clusters: 4,
        gene_range: (50, 50),
        sample_range: (4, 4),
        time_range: (3, 3),
        overlap_fraction: 0.0,
        noise,
        seed,
        ..SynthSpec::default()
    }
}

fn params_for(spec: &SynthSpec) -> Params {
    Params::builder()
        .epsilon(spec.suggested_epsilon())
        .min_size(30, 3, 2)
        .build()
        .unwrap()
}

#[test]
fn noiseless_recovery_is_perfect() {
    for seed in [1u64, 2, 3] {
        let spec = spec_small(0.0, seed);
        let data = generate(&spec);
        let result = mine(&data.matrix, &params_for(&spec)).unwrap();
        let report = recovery::score(&data.truth, &result.triclusters, 0.99);
        assert_eq!(report.recall, 1.0, "seed {seed}: {report:?}");
        assert_eq!(report.precision, 1.0, "seed {seed}: {report:?}");
    }
}

#[test]
fn three_percent_noise_recovery() {
    let spec = spec_small(0.03, 11);
    let data = generate(&spec);
    let result = mine(&data.matrix, &params_for(&spec)).unwrap();
    let report = recovery::score(&data.truth, &result.triclusters, 0.8);
    assert_eq!(report.recall, 1.0, "{report:?}");
}

#[test]
fn overlapping_clusters_are_recovered() {
    let spec = SynthSpec {
        overlap_fraction: 0.5,
        ..spec_small(0.01, 21)
    };
    let data = generate(&spec);
    let result = mine(&data.matrix, &params_for(&spec)).unwrap();
    // overlapping clusters can merge into valid bounding regions, so score
    // with a looser threshold: every embedded cluster must be substantially
    // captured by some mined cluster
    let report = recovery::score(&data.truth, &result.triclusters, 0.5);
    assert_eq!(report.recall, 1.0, "{report:?}");
}

/// Ablation: with a deliberately too-tight ε, the extended/split/patched
/// ranges recover clusters that plain maximal windows lose — the paper's
/// robustness argument for range extension (§4.1).
#[test]
fn range_extension_rescues_tight_epsilon() {
    let spec = spec_small(0.02, 31);
    let data = generate(&spec);
    // ε at half of what the noise requires; the relaxed time threshold
    // isolates the range-extension effect to the sample dimension
    let tight_eps = spec.suggested_epsilon() / 2.0;
    let base = Params::builder()
        .epsilon(tight_eps)
        .epsilon_time(spec.suggested_epsilon())
        .min_size(25, 4, 3);
    let with_ext = base
        .clone()
        .range_extension(RangeExtension::On)
        .build()
        .unwrap();
    let without_ext = base.range_extension(RangeExtension::Off).build().unwrap();

    let rep_on = recovery::score(
        &data.truth,
        &mine(&data.matrix, &with_ext).unwrap().triclusters,
        0.8,
    );
    let rep_off = recovery::score(
        &data.truth,
        &mine(&data.matrix, &without_ext).unwrap().triclusters,
        0.8,
    );
    assert!(
        rep_on.recall > rep_off.recall,
        "extension must help at tight ε: on={} off={}",
        rep_on.recall,
        rep_off.recall
    );
    assert!(
        rep_on.recall > 0.9,
        "extension should rescue the clusters at ε/2: {rep_on:?}"
    );
}

/// The merge/prune pass reduces (or keeps) the cluster count and never
/// reduces coverage below the dominant clusters.
#[test]
fn merge_prune_reduces_clutter() {
    let spec = spec_small(0.03, 41);
    let data = generate(&spec);
    let eps = spec.suggested_epsilon();
    let plain = Params::builder()
        .epsilon(eps)
        .min_size(25, 3, 2)
        .build()
        .unwrap();
    let merged = Params::builder()
        .epsilon(eps)
        .min_size(25, 3, 2)
        .merge(MergeParams {
            eta: 0.25,
            gamma: 0.1,
        })
        .build()
        .unwrap();
    let n_plain = mine(&data.matrix, &plain).unwrap().triclusters.len();
    let result = mine(&data.matrix, &merged).unwrap();
    assert!(
        result.triclusters.len() <= n_plain,
        "merge pass increased cluster count: {} -> {}",
        n_plain,
        result.triclusters.len()
    );
    let report = recovery::score(&data.truth, &result.triclusters, 0.6);
    assert!(report.recall >= 0.75, "{report:?}");
}

/// Determinism end-to-end: same spec, same results.
#[test]
fn pipeline_is_deterministic() {
    let spec = spec_small(0.02, 51);
    let a = {
        let d = generate(&spec);
        mine(&d.matrix, &params_for(&spec)).unwrap().triclusters
    };
    let b = {
        let d = generate(&spec);
        mine(&d.matrix, &params_for(&spec)).unwrap().triclusters
    };
    assert_eq!(a, b);
}
