//! Cross-check: the TriCluster miner against the exact brute-force oracle
//! on small matrices.
//!
//! With `RangeExtension::Off` the miner's ranges use the exact `ε`
//! semantics of the cluster definition, so its output should match the
//! exhaustive enumeration:
//!
//! * **soundness** — every mined cluster is a valid maximal cluster (it
//!   appears in the brute-force set), and
//! * **completeness** — every brute-force cluster is mined.
//!
//! One known, paper-inherited incompleteness corner exists: when extending
//! along time, TriCluster intersects with *maximal* per-slice biclusters
//! and prunes the whole branch if the intersected region is temporally
//! incoherent, even if a gene/sample *subset* of it would have been
//! coherent ("If the extended bicluster has no such coherent values in the
//! intersection region, TRICLUSTER will prune it", §4.3). The seeds below
//! avoid that corner; `completeness_corner_documented` demonstrates it.

use tricluster::baselines::brute;
use tricluster::core::params::RangeExtension;
use tricluster::prelude::*;

fn view(cs: &[Tricluster]) -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    let mut v: Vec<_> = cs
        .iter()
        .map(|c| (c.genes.to_vec(), c.samples.clone(), c.times.clone()))
        .collect();
    v.sort();
    v
}

fn exact_params(eps: f64, mx: usize, my: usize, mz: usize) -> Params {
    Params::builder()
        .epsilon(eps)
        .min_genes(mx)
        .min_samples(my)
        .min_times(mz)
        .range_extension(RangeExtension::Off)
        .build()
        .unwrap()
}

/// Deterministic pseudo-random matrix with a planted scaling cluster.
fn random_matrix_with_cluster(seed: u64, ng: usize, ns: usize, nt: usize) -> Matrix3 {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 10_000) as f64 / 100.0 + 1.0 // 1.00 .. 101.00
    };
    let mut m = Matrix3::zeros(ng, ns, nt);
    for g in 0..ng {
        for s in 0..ns {
            for t in 0..nt {
                m.set(g, s, t, next());
            }
        }
    }
    // plant: genes 0..3 x samples 0..2 x times 0..1 scaling
    for g in 0..3.min(ng) {
        for s in 0..3.min(ns) {
            for t in 0..2.min(nt) {
                m.set(
                    g,
                    s,
                    t,
                    (g + 1) as f64 * [1.0, 2.5, 4.0][s] * (t + 1) as f64,
                );
            }
        }
    }
    m
}

#[test]
fn miner_matches_brute_force_on_planted_matrices() {
    for seed in 0..12u64 {
        let m = random_matrix_with_cluster(seed, 6, 4, 3);
        let params = exact_params(0.02, 2, 2, 2);
        let mined = view(&mine(&m, &params).unwrap().triclusters);
        let brute = view(&brute::mine_exhaustive(&m, &params));
        assert_eq!(mined, brute, "mismatch at seed {seed}");
    }
}

#[test]
fn miner_matches_brute_force_with_loose_epsilon() {
    // larger ε makes random coincidences (and thus nontrivial clusters)
    // common — a stronger stress of the search
    for seed in 100..108u64 {
        let m = random_matrix_with_cluster(seed, 5, 4, 3);
        let params = exact_params(0.25, 2, 2, 2);
        let mined = view(&mine(&m, &params).unwrap().triclusters);
        let brute = view(&brute::mine_exhaustive(&m, &params));
        assert_eq!(mined, brute, "mismatch at seed {seed}");
    }
}

#[test]
fn miner_matches_brute_force_with_deltas() {
    for seed in 200..206u64 {
        let m = random_matrix_with_cluster(seed, 5, 4, 2);
        let params = Params::builder()
            .epsilon(0.1)
            .min_genes(2)
            .min_samples(2)
            .min_times(2)
            .delta_gene(40.0)
            .delta_sample(60.0)
            .delta_time(50.0)
            .range_extension(RangeExtension::Off)
            .build()
            .unwrap();
        let mined = view(&mine(&m, &params).unwrap().triclusters);
        let brute = view(&brute::mine_exhaustive(&m, &params));
        assert_eq!(mined, brute, "mismatch at seed {seed}");
    }
}

#[test]
fn mined_clusters_are_always_sound() {
    use tricluster::core::validate::is_valid_cluster;
    // soundness holds even with extension ON, at the extension's widened
    // tolerance (extended/split ranges span up to 2ε, and the 2x2 plane
    // conditions allow another factor-of-two of global drift)
    for seed in 300..310u64 {
        let m = random_matrix_with_cluster(seed, 7, 4, 3);
        let params = Params::builder()
            .epsilon(0.05)
            .min_genes(2)
            .min_samples(2)
            .min_times(2)
            .build()
            .unwrap();
        let result = mine(&m, &params).unwrap();
        for c in &result.triclusters {
            assert!(
                is_valid_cluster(&m, c, 2.0 * 0.05 + 1e-9, 2.0 * 0.05 + 1e-9, (2, 2, 2)),
                "seed {seed}: mined cluster invalid at 2ε: {c:?}"
            );
        }
    }
}

/// The completeness corner inherited from the paper (§4.3 pruning): the
/// miner may drop a cluster whose *bicluster-intersection* region is
/// temporally incoherent even though a subset region is coherent. This test
/// documents the behavior rather than asserting equality.
#[test]
fn completeness_corner_documented() {
    // genes 0,1,2 × samples 0,1 are one bicluster in both slices (all rows
    // scale), but only genes {0,1} stay coherent across time; gene 2's time
    // ratio differs. Brute finds {0,1}x{0,1}x{0,1}; the miner intersects
    // with the maximal bicluster {0,1,2}x{0,1} first.
    let mut m = Matrix3::zeros(3, 2, 2);
    for g in 0..3 {
        for s in 0..2 {
            let v = (g + 1) as f64 * [1.0, 3.0][s];
            m.set(g, s, 0, v);
            let time_factor = if g == 2 { 7.0 } else { 2.0 };
            m.set(g, s, 1, v * time_factor);
        }
    }
    let params = exact_params(0.001, 2, 2, 2);
    let brute = view(&brute::mine_exhaustive(&m, &params));
    assert!(
        brute.contains(&(vec![0, 1], vec![0, 1], vec![0, 1])),
        "{brute:?}"
    );
    let mined = view(&mine(&m, &params).unwrap().triclusters);
    // Depending on the per-slice bicluster set, the miner either finds the
    // subset cluster or prunes it; both are acceptable TriCluster behavior.
    for c in &mined {
        assert!(brute.contains(c), "mined cluster not valid/maximal: {c:?}");
    }
}
