//! End-to-end §5.2 reproduction on the simulated yeast elutriation data
//! (experiments E4/E5 in DESIGN.md), at test-friendly scale.

use tricluster::microarray::go::{self, CatalogSpec};
use tricluster::microarray::yeast::{self, YeastSpec};
use tricluster::prelude::*;
use tricluster::synth::recovery;

fn paper_params() -> Params {
    Params::builder()
        .epsilon(yeast::PAPER_EPSILON)
        .epsilon_time(0.05) // the paper relaxes ε along the time dimension
        .min_genes(yeast::PAPER_MIN_GENES)
        .min_samples(yeast::PAPER_MIN_SAMPLES)
        .min_times(yeast::PAPER_MIN_TIMES)
        .build()
        .unwrap()
}

#[test]
fn five_clusters_with_zero_overlap() {
    let ds = yeast::build(&YeastSpec::scaled(1200));
    let result = mine(&ds.matrix, &paper_params()).unwrap();
    // §5.2 table shape: 5 clusters, Coverage == Elements#, Overlap 0.00%
    assert_eq!(result.triclusters.len(), 5);
    let met = result.metrics(&ds.matrix);
    assert_eq!(met.cluster_count, 5);
    assert_eq!(met.coverage, met.element_sum);
    assert_eq!(met.overlap, 0.0);
    // span sum: 4 samples x 5 times x (51+52+57+97+66) genes = 6460 cells
    // (paper reports 6520 with its cluster shapes)
    assert_eq!(met.element_sum, 6460);
    // recovery of the embedded groups is exact
    let report = recovery::score(&ds.embedded, &result.triclusters, 0.99);
    assert_eq!(report.recall, 1.0);
    assert_eq!(report.precision, 1.0);
}

#[test]
fn mined_clusters_have_paper_gene_counts() {
    let ds = yeast::build(&YeastSpec::scaled(1200));
    let result = mine(&ds.matrix, &paper_params()).unwrap();
    let mut sizes: Vec<usize> = result.triclusters.iter().map(|c| c.genes.count()).collect();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![51, 52, 57, 66, 97]);
}

#[test]
fn go_enrichment_identifies_marker_terms_per_cluster() {
    let spec = YeastSpec::scaled(1200);
    let ds = yeast::build(&spec);
    let result = mine(&ds.matrix, &paper_params()).unwrap();
    let groups: Vec<Vec<usize>> = ds.embedded.iter().map(|c| c.genes.to_vec()).collect();
    // at 1200 genes (vs the paper's 7679) the default 3-in/8-out markers
    // are not significant for the 97-gene group (expected overlap scales
    // with cluster/genome ratio); strengthen markers proportionally
    let catalog = go::simulate_catalog(
        &CatalogSpec {
            n_genes: spec.n_genes,
            marker_in_group: 5,
            marker_outside_group: 4,
            ..CatalogSpec::default()
        },
        &groups,
    );
    // match each mined cluster back to its embedded group index
    for c in &result.triclusters {
        let gi = groups
            .iter()
            .position(|g| {
                let set: std::collections::HashSet<_> = g.iter().collect();
                c.genes.iter().filter(|x| set.contains(x)).count() * 2 > g.len()
            })
            .expect("mined cluster matches some group");
        let report = go::enrich(&catalog, &c.genes.to_vec(), 0.01);
        assert!(
            report.iter().any(|e| e.term.ends_with(&format!("[C{gi}]"))),
            "cluster {gi}: no marker term significant: {report:?}"
        );
        // Table 2 shape: p-values ascending, all below the cutoff
        for w in report.windows(2) {
            assert!(w[0].p_value <= w[1].p_value);
        }
        for e in &report {
            assert!(e.p_value < 0.01);
            assert!(e.count >= 2);
        }
    }
}

#[test]
fn labels_resolve_mined_indices() {
    let ds = yeast::build(&YeastSpec::scaled(1200));
    let result = mine(&ds.matrix, &paper_params()).unwrap();
    let c = &result.triclusters[0];
    for g in c.genes.iter().take(3) {
        let name = ds.labels.gene(g);
        assert!(name.starts_with('Y'), "gene name {name}");
        assert_eq!(ds.labels.gene_index(&name), Some(g));
    }
    for &s in &c.samples {
        assert!(!ds.labels.sample(s).is_empty());
    }
    for &t in &c.times {
        assert!(ds.labels.time(t).ends_with("min"));
    }
}
