//! End-to-end reproduction of the paper's running example (Table 1,
//! Figures 1–5) — experiment E1/E2 in DESIGN.md.

use tricluster::core::testdata::{paper_table1, paper_table1_expected};
use tricluster::prelude::*;

fn paper_params() -> Params {
    Params::builder()
        .epsilon(0.01)
        .min_size(3, 3, 2)
        .build()
        .unwrap()
}

fn view(cs: &[Tricluster]) -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    let mut v: Vec<_> = cs
        .iter()
        .map(|c| (c.genes.to_vec(), c.samples.clone(), c.times.clone()))
        .collect();
    v.sort();
    v
}

/// §2: with mx=my=3, mz=2, ε=0.01 the dataset contains exactly the three
/// maximal clusters C1, C2, C3 spanning both time slices.
#[test]
fn clusters_c1_c2_c3_found_exactly() {
    let result = mine(&paper_table1(), &paper_params()).unwrap();
    let mut want = paper_table1_expected();
    want.sort();
    assert_eq!(view(&result.triclusters), want);
}

/// §2: "if we set my = 2 we would find another maximal cluster C4 =
/// {g0,g2,g6,g7,g9} × {s1,s4}, which is subsumed by C2 and C3. We shall see
/// later that TRICLUSTER can optionally delete such a cluster in the final
/// steps."
#[test]
fn c4_appears_at_my2_and_merge_pass_deletes_it() {
    let m = paper_table1();
    let p_no_merge = Params::builder()
        .epsilon(0.01)
        .min_size(3, 2, 2)
        .build()
        .unwrap();
    let got = view(&mine(&m, &p_no_merge).unwrap().triclusters);
    let c4 = (vec![0, 2, 6, 7, 9], vec![1usize, 4], vec![0usize, 1]);
    assert!(got.contains(&c4), "C4 missing without merge pass: {got:?}");

    // With the multi-cover deletion rule enabled, C4 (fully covered by
    // C2 ∪ C3) is deleted, exactly as the paper describes.
    let p_merge = Params::builder()
        .epsilon(0.01)
        .min_size(3, 2, 2)
        .merge(MergeParams {
            eta: 0.05,
            gamma: 0.0,
        })
        .build()
        .unwrap();
    let result = mine(&m, &p_merge).unwrap();
    let got = view(&result.triclusters);
    assert!(!got.contains(&c4), "C4 should be deleted: {got:?}");
    let mut want = paper_table1_expected();
    want.sort();
    assert_eq!(got, want, "C1–C3 survive the merge pass");
    assert!(result.prune_stats.deleted_multicover >= 1);
}

/// §5.2 metrics on the running example: three 24-cell clusters, 8 cells of
/// C2∩C3 overlap.
#[test]
fn metrics_match_hand_computation() {
    let m = paper_table1();
    let result = mine(&m, &paper_params()).unwrap();
    let met = result.metrics(&m);
    assert_eq!(met.cluster_count, 3);
    assert_eq!(met.element_sum, 72);
    assert_eq!(met.coverage, 64);
    assert!((met.overlap - 0.125).abs() < 1e-12);
    // C2/C3 hold per-gene constants at each time -> zero gene-direction
    // variance would only hold if all genes shared a value; sample-direction
    // variance is 0 for C2/C3 but not C1.
    assert!(met.fluctuation_sample > 0.0);
}

/// The per-slice biclusters match the paper's Figure 5 (three biclusters in
/// each slice, identical index sets).
#[test]
fn per_slice_biclusters_match_figure5() {
    let m = paper_table1();
    let result = mine(&m, &paper_params()).unwrap();
    assert_eq!(result.per_time_biclusters.len(), 2);
    for bcs in &result.per_time_biclusters {
        let mut got: Vec<(Vec<usize>, Vec<usize>)> = bcs
            .iter()
            .map(|b| (b.genes.to_vec(), b.samples.clone()))
            .collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                (vec![0, 2, 6, 9], vec![1, 4, 6]),
                (vec![0, 7, 9], vec![1, 2, 4, 5]),
                (vec![1, 4, 8], vec![0, 1, 4, 6]),
            ]
        );
    }
}

/// Lemma 1 in action: mining the transposed matrix finds the transposed
/// clusters (mine_auto maps them back automatically).
#[test]
fn symmetry_lemma_via_mine_auto() {
    let m = paper_table1();
    let baseline = view(&mine(&m, &paper_params()).unwrap().triclusters);
    let auto = view(&mine_auto(&m, &paper_params()).unwrap().triclusters);
    assert_eq!(baseline, auto);
}

/// Mining with mz=1 exposes the per-slice biclusters as triclusters.
#[test]
fn single_slice_mining() {
    let m = paper_table1();
    let p = Params::builder()
        .epsilon(0.01)
        .min_size(3, 3, 1)
        .build()
        .unwrap();
    let result = mine(&m, &p).unwrap();
    // all clusters span both times (they're coherent across slices), so the
    // maximal set is the same three clusters
    let mut want = paper_table1_expected();
    want.sort();
    assert_eq!(view(&result.triclusters), want);
}
