//! Thread-count and fan-out-mode determinism (the oracle behind the
//! `--threads`/`--fanout` flags): the mined clusters, every report counter,
//! and the v2 report's input-determined sections must be byte-identical
//! whether the run used 1, 2, or 8 workers, and whether it fanned out at
//! slice level or intra-slice (pair/branch) level.

use tricluster::core::obs::Recorder;
use tricluster::core::runreport::{histograms_json, memory_json, search_space_json};
use tricluster::core::testdata::paper_table1;
use tricluster::prelude::*;

/// The Figure 7 smoke workload shape: small enough for a tier-1 test, rich
/// enough that every DFS phase, histogram, and prune counter is exercised.
fn smoke_matrix() -> Matrix3 {
    let spec = SynthSpec {
        n_genes: 400,
        n_samples: 10,
        n_times: 5,
        n_clusters: 4,
        gene_range: (50, 50),
        sample_range: (4, 4),
        time_range: (3, 3),
        noise: 0.02,
        ..SynthSpec::default()
    };
    generate(&spec).matrix
}

fn smoke_params(threads: usize, fanout: FanoutMode) -> Params {
    Params::builder()
        .epsilon(0.012)
        .min_size(25, 3, 2)
        .threads(threads)
        .fanout(fanout)
        .build()
        .unwrap()
}

fn table1_params(threads: usize, fanout: FanoutMode) -> Params {
    Params::builder()
        .epsilon(0.01)
        .min_size(3, 3, 2)
        .threads(threads)
        .fanout(fanout)
        .build()
        .unwrap()
}

/// The input-determined report sections, rendered: any byte difference
/// fails the comparison.
fn deterministic_sections(result: &MiningResult) -> String {
    format!(
        "{}\n{}\n{}",
        histograms_json(&result.report).render(),
        memory_json(&result.report).render(),
        search_space_json(&result.report).render(),
    )
}

fn clusters(result: &MiningResult) -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    result
        .triclusters
        .iter()
        .map(|c| (c.genes.to_vec(), c.samples.clone(), c.times.clone()))
        .collect()
}

fn assert_invariant_across_schedules(m: &Matrix3, mk: &dyn Fn(usize, FanoutMode) -> Params) {
    let baseline = mine_observed(m, &mk(1, FanoutMode::Slice), &Recorder::new()).unwrap();
    assert!(
        !baseline.report.histograms.is_empty(),
        "recording sink must collect histograms"
    );
    let base_sections = deterministic_sections(&baseline);
    for threads in [1usize, 2, 8] {
        for fanout in [FanoutMode::Auto, FanoutMode::Slice, FanoutMode::Pair] {
            let r = mine_observed(m, &mk(threads, fanout), &Recorder::new()).unwrap();
            assert_eq!(
                clusters(&r),
                clusters(&baseline),
                "clusters differ at threads={threads} fanout={fanout:?}"
            );
            assert_eq!(
                r.report.counter_map(),
                baseline.report.counter_map(),
                "counters differ at threads={threads} fanout={fanout:?}"
            );
            assert_eq!(
                deterministic_sections(&r),
                base_sections,
                "report sections differ at threads={threads} fanout={fanout:?}"
            );
        }
    }
}

#[test]
fn smoke_workload_is_thread_and_fanout_invariant() {
    let m = smoke_matrix();
    assert_invariant_across_schedules(&m, &smoke_params);
}

#[test]
fn paper_table1_is_thread_and_fanout_invariant() {
    let m = paper_table1();
    assert_invariant_across_schedules(&m, &table1_params);
}

/// Timeline tracing and progress telemetry must be pure observers: mining
/// with a live trace journal and a running heartbeat ticker leaves every
/// input-determined section byte-identical to a plain run, at every thread
/// count and fan-out mode.
#[test]
fn tracing_and_progress_do_not_perturb_deterministic_sections() {
    use std::sync::Arc;
    use std::time::Duration;
    use tricluster::core::obs::progress::{Progress, ProgressSink, ProgressTicker};
    use tricluster::core::obs::timeline::Timeline;
    use tricluster::core::obs::Fanout;

    let m = smoke_matrix();
    let baseline =
        mine_observed(&m, &smoke_params(1, FanoutMode::Slice), &Recorder::new()).unwrap();
    let base_sections = deterministic_sections(&baseline);
    for threads in [1usize, 2, 8] {
        for fanout in [FanoutMode::Auto, FanoutMode::Slice, FanoutMode::Pair] {
            let recorder = Recorder::new();
            let timeline = Timeline::new();
            let progress = Arc::new(Progress::new());
            let progress_sink = ProgressSink(progress.clone());
            let sink = Fanout(vec![&recorder, &timeline, &progress_sink]);
            // An aggressive heartbeat (1 ms) maximises the chance of racing
            // the miner; its output goes nowhere.
            let ticker = ProgressTicker::start(
                progress.clone(),
                Duration::from_millis(1),
                Box::new(std::io::sink()),
            );
            let r = mine_observed(&m, &smoke_params(threads, fanout), &sink).unwrap();
            drop(ticker);
            assert_eq!(
                clusters(&r),
                clusters(&baseline),
                "clusters differ under tracing at threads={threads} fanout={fanout:?}"
            );
            assert_eq!(
                r.report.counter_map(),
                baseline.report.counter_map(),
                "counters differ under tracing at threads={threads} fanout={fanout:?}"
            );
            assert_eq!(
                deterministic_sections(&r),
                base_sections,
                "report sections differ under tracing at threads={threads} fanout={fanout:?}"
            );
            // the observers actually observed: the timeline journalled work
            // and the gauges saw every slice
            let journals = timeline.journals();
            assert!(
                journals.iter().any(|j| !j.events.is_empty()),
                "timeline recorded nothing at threads={threads} fanout={fanout:?}"
            );
            let snapshot = progress.snapshot_json().render();
            assert!(
                snapshot.contains("\"phase\":\"done\"")
                    && snapshot.contains("\"slices\":{\"done\":5,\"total\":5}"),
                "progress gauges never moved: {snapshot}"
            );
        }
    }
}

/// The smoke workload actually exercises the intra-slice paths: at 8
/// threads over 5 slices, Auto must pick pair-level range graphs and
/// branch-level DFS.
#[test]
fn auto_fanout_goes_intra_when_workers_outnumber_slices() {
    let m = smoke_matrix();
    let r = mine(&m, &smoke_params(8, FanoutMode::Auto)).unwrap();
    assert_eq!(r.fanout.range_graph, FanoutLevel::Pair);
    assert_eq!(r.fanout.bicluster, FanoutLevel::Branch);
    let r = mine(&m, &smoke_params(2, FanoutMode::Auto)).unwrap();
    assert_eq!(r.fanout.range_graph, FanoutLevel::Slice);
    assert_eq!(r.fanout.bicluster, FanoutLevel::Slice);
}
