//! Thread-count and fan-out-mode determinism (the oracle behind the
//! `--threads`/`--fanout` flags): the mined clusters, every report counter,
//! and the v2 report's input-determined sections must be byte-identical
//! whether the run used 1, 2, or 8 workers, and whether it fanned out at
//! slice level or intra-slice (pair/branch) level.

use std::collections::BTreeMap;
use tricluster::core::obs::json::Json;
use tricluster::core::obs::Recorder;
use tricluster::core::runreport::{histograms_json, memory_json, search_space_json};
use tricluster::core::testdata::paper_table1;
use tricluster::prelude::*;

/// Track every allocation in this test binary so the per-phase allocation
/// attribution path is live: runs carry `memory.alloc.*` counters and the
/// `memory.phase_bytes` report section. Measured byte counts are
/// schedule-dependent by nature, so the determinism comparisons below
/// restrict themselves to the logical (input-determined) sections.
#[global_allocator]
static ALLOC: tricluster::core::obs::alloc::TrackingAlloc =
    tricluster::core::obs::alloc::TrackingAlloc;

/// The Figure 7 smoke workload shape: small enough for a tier-1 test, rich
/// enough that every DFS phase, histogram, and prune counter is exercised.
fn smoke_matrix() -> Matrix3 {
    let spec = SynthSpec {
        n_genes: 400,
        n_samples: 10,
        n_times: 5,
        n_clusters: 4,
        gene_range: (50, 50),
        sample_range: (4, 4),
        time_range: (3, 3),
        noise: 0.02,
        ..SynthSpec::default()
    };
    generate(&spec).matrix
}

fn smoke_params(threads: usize, fanout: FanoutMode) -> Params {
    Params::builder()
        .epsilon(0.012)
        .min_size(25, 3, 2)
        .threads(threads)
        .fanout(fanout)
        .build()
        .unwrap()
}

fn table1_params(threads: usize, fanout: FanoutMode) -> Params {
    Params::builder()
        .epsilon(0.01)
        .min_size(3, 3, 2)
        .threads(threads)
        .fanout(fanout)
        .build()
        .unwrap()
}

/// The input-determined report sections, rendered: any byte difference
/// fails the comparison. The measured-allocator sub-objects (`alloc`,
/// `phase_bytes`) are stripped from the memory section — they report real
/// allocator traffic, which legitimately varies with the schedule.
fn deterministic_sections(result: &MiningResult) -> String {
    let logical_memory = match memory_json(&result.report) {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| !matches!(k.as_str(), "alloc" | "phase_bytes"))
                .collect(),
        ),
        other => other,
    };
    format!(
        "{}\n{}\n{}",
        histograms_json(&result.report).render(),
        logical_memory.render(),
        search_space_json(&result.report).render(),
    )
}

/// Counters minus the measured-allocator metrics, for the same reason.
fn logical_counters(result: &MiningResult) -> BTreeMap<String, u64> {
    result
        .report
        .counter_map()
        .into_iter()
        .filter(|(k, _)| !k.starts_with("memory.alloc."))
        .collect()
}

fn clusters(result: &MiningResult) -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    result
        .triclusters
        .iter()
        .map(|c| (c.genes.to_vec(), c.samples.clone(), c.times.clone()))
        .collect()
}

fn assert_invariant_across_schedules(m: &Matrix3, mk: &dyn Fn(usize, FanoutMode) -> Params) {
    let baseline = mine_observed(m, &mk(1, FanoutMode::Slice), &Recorder::new()).unwrap();
    assert!(
        !baseline.report.histograms.is_empty(),
        "recording sink must collect histograms"
    );
    let base_sections = deterministic_sections(&baseline);
    for threads in [1usize, 2, 8] {
        for fanout in [FanoutMode::Auto, FanoutMode::Slice, FanoutMode::Pair] {
            let r = mine_observed(m, &mk(threads, fanout), &Recorder::new()).unwrap();
            assert_eq!(
                clusters(&r),
                clusters(&baseline),
                "clusters differ at threads={threads} fanout={fanout:?}"
            );
            assert_eq!(
                logical_counters(&r),
                logical_counters(&baseline),
                "counters differ at threads={threads} fanout={fanout:?}"
            );
            assert_eq!(
                deterministic_sections(&r),
                base_sections,
                "report sections differ at threads={threads} fanout={fanout:?}"
            );
        }
    }
}

#[test]
fn smoke_workload_is_thread_and_fanout_invariant() {
    let m = smoke_matrix();
    assert_invariant_across_schedules(&m, &smoke_params);
}

#[test]
fn paper_table1_is_thread_and_fanout_invariant() {
    let m = paper_table1();
    assert_invariant_across_schedules(&m, &table1_params);
}

/// Timeline tracing and progress telemetry must be pure observers: mining
/// with a live trace journal and a running heartbeat ticker leaves every
/// input-determined section byte-identical to a plain run, at every thread
/// count and fan-out mode.
#[test]
fn tracing_and_progress_do_not_perturb_deterministic_sections() {
    use std::sync::Arc;
    use std::time::Duration;
    use tricluster::core::obs::progress::{Progress, ProgressSink, ProgressTicker};
    use tricluster::core::obs::timeline::Timeline;
    use tricluster::core::obs::Fanout;

    let m = smoke_matrix();
    let baseline =
        mine_observed(&m, &smoke_params(1, FanoutMode::Slice), &Recorder::new()).unwrap();
    let base_sections = deterministic_sections(&baseline);
    for threads in [1usize, 2, 8] {
        for fanout in [FanoutMode::Auto, FanoutMode::Slice, FanoutMode::Pair] {
            let recorder = Recorder::new();
            let timeline = Timeline::new();
            let progress = Arc::new(Progress::new());
            let progress_sink = ProgressSink(progress.clone());
            let sink = Fanout(vec![&recorder, &timeline, &progress_sink]);
            // An aggressive heartbeat (1 ms) maximises the chance of racing
            // the miner; its output goes nowhere.
            let ticker = ProgressTicker::start(
                progress.clone(),
                Duration::from_millis(1),
                Box::new(std::io::sink()),
            );
            let r = mine_observed(&m, &smoke_params(threads, fanout), &sink).unwrap();
            drop(ticker);
            assert_eq!(
                clusters(&r),
                clusters(&baseline),
                "clusters differ under tracing at threads={threads} fanout={fanout:?}"
            );
            assert_eq!(
                logical_counters(&r),
                logical_counters(&baseline),
                "counters differ under tracing at threads={threads} fanout={fanout:?}"
            );
            assert_eq!(
                deterministic_sections(&r),
                base_sections,
                "report sections differ under tracing at threads={threads} fanout={fanout:?}"
            );
            // the observers actually observed: the timeline journalled work
            // and the gauges saw every slice
            let journals = timeline.journals();
            assert!(
                journals.iter().any(|j| !j.events.is_empty()),
                "timeline recorded nothing at threads={threads} fanout={fanout:?}"
            );
            let snapshot = progress.snapshot_json().render();
            assert!(
                snapshot.contains("\"phase\":\"done\"")
                    && snapshot.contains("\"slices\":{\"done\":5,\"total\":5}"),
                "progress gauges never moved: {snapshot}"
            );
        }
    }
}

/// The metrics registry and its scrape server must be pure observers too:
/// mining with a live `Registry` in the sink fan-out — progress gauges
/// attached, HTTP server scraping `/metrics` after every run — leaves the
/// clusters and every input-determined section byte-identical to a plain
/// run, at every thread count and fan-out mode. This is the tentpole
/// determinism guarantee behind `mine --metrics-addr`.
#[test]
fn metrics_registry_and_server_do_not_perturb_deterministic_sections() {
    use std::sync::Arc;
    use tricluster::core::obs::httpd::{http_get, MetricsServer};
    use tricluster::core::obs::metrics::Registry;
    use tricluster::core::obs::names;
    use tricluster::core::obs::progress::Progress;
    use tricluster::core::obs::Fanout;

    let m = smoke_matrix();
    let baseline =
        mine_observed(&m, &smoke_params(1, FanoutMode::Slice), &Recorder::new()).unwrap();
    let base_sections = deterministic_sections(&baseline);
    for threads in [1usize, 2, 8] {
        for fanout in [FanoutMode::Auto, FanoutMode::Slice, FanoutMode::Pair] {
            let recorder = Recorder::new();
            let registry = Arc::new(Registry::new());
            registry.attach_progress(Arc::new(Progress::new()));
            let server = MetricsServer::serve("127.0.0.1:0", registry.clone()).unwrap();
            let sink = Fanout(vec![&recorder, &*registry]);
            let r = mine_observed(&m, &smoke_params(threads, fanout), &sink).unwrap();
            assert_eq!(
                clusters(&r),
                clusters(&baseline),
                "clusters differ under metrics at threads={threads} fanout={fanout:?}"
            );
            assert_eq!(
                logical_counters(&r),
                logical_counters(&baseline),
                "counters differ under metrics at threads={threads} fanout={fanout:?}"
            );
            assert_eq!(
                deterministic_sections(&r),
                base_sections,
                "report sections differ under metrics at threads={threads} fanout={fanout:?}"
            );
            // the registry really aggregated the run, and the final scrape
            // reflects it: pair counts match the report, the exposition is
            // well-terminated, and the gauges reached the terminal phase
            assert_eq!(
                registry.counter_value(names::RG_PAIRS),
                r.report.counter_map()[names::RG_PAIRS],
                "registry pair counter diverged at threads={threads} fanout={fanout:?}"
            );
            let (status, body) = http_get(&format!("{}/metrics", server.url())).unwrap();
            assert_eq!(status, 200);
            assert!(body.ends_with("# EOF\n"), "{body}");
            assert!(body.contains("tricluster_rangegraph_pairs_total"), "{body}");
            assert!(
                body.contains("tricluster_progress_phase{phase=\"done\"} 1"),
                "{body}"
            );
            drop(server);
        }
    }
}

/// The full observability stack live at once — tracking allocator with
/// per-phase attribution, a timeline journal folded to flamegraph stacks,
/// and every run archived into one ledger — must leave the mined clusters
/// and input-determined sections invariant across thread counts and
/// fan-out modes, and the archive must round-trip through `diff_reports`
/// with per-phase allocation metrics covered.
#[test]
fn ledger_flame_and_phase_bytes_do_not_perturb_determinism() {
    use tricluster::core::obs::ledger::{
        content_hash, diff_reports, DiffTolerances, Ledger, NewEntry,
    };
    use tricluster::core::obs::timeline::Timeline;
    use tricluster::core::obs::Fanout;
    use tricluster::core::runreport;

    let dir =
        std::env::temp_dir().join(format!("tricluster-det-ledger-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ledger = Ledger::open(dir.join("ledger")).unwrap();
    let m = smoke_matrix();
    let baseline =
        mine_observed(&m, &smoke_params(1, FanoutMode::Slice), &Recorder::new()).unwrap();
    let base_sections = deterministic_sections(&baseline);
    let mut ids = Vec::new();
    for threads in [1usize, 2, 8] {
        for fanout in [FanoutMode::Auto, FanoutMode::Slice, FanoutMode::Pair] {
            let recorder = Recorder::new();
            let timeline = Timeline::new();
            let sink = Fanout(vec![&recorder, &timeline]);
            let r = mine_observed(&m, &smoke_params(threads, fanout), &sink).unwrap();
            assert_eq!(
                clusters(&r),
                clusters(&baseline),
                "clusters differ at threads={threads} fanout={fanout:?}"
            );
            assert_eq!(
                logical_counters(&r),
                logical_counters(&baseline),
                "counters differ at threads={threads} fanout={fanout:?}"
            );
            assert_eq!(
                deterministic_sections(&r),
                base_sections,
                "report sections differ at threads={threads} fanout={fanout:?}"
            );
            // the allocator really attributed traffic to each phase, and
            // the phases sum to no more than the whole-run total (other
            // test threads share the global counters, so lower bounds only)
            let counters = r.report.counter_map();
            let total = counters["memory.alloc.total_bytes"];
            assert!(total > 0, "no measured allocations");
            let phase_sum: u64 = [
                "memory.alloc.slices.bytes",
                "memory.alloc.triclusters.bytes",
                "memory.alloc.prune.bytes",
            ]
            .iter()
            .map(|k| counters[*k])
            .sum();
            assert!(
                phase_sum > 0 && phase_sum <= total,
                "{phase_sum} vs {total}"
            );
            // the timeline folds into non-empty well-formed stacks
            let folded = timeline.to_folded();
            assert!(!folded.trim().is_empty());
            for line in folded.lines() {
                let (stack, micros) = line.rsplit_once(' ').expect("`stack N` shape");
                assert!(
                    !stack.is_empty() && micros.parse::<u64>().is_ok(),
                    "{line:?}"
                );
            }
            // archive the run, flame artifact included
            let met = r.metrics(&m);
            let doc = runreport::report_to_json_v2(&m, &r, &r.report, &met);
            runreport::validate_v2(&doc).unwrap();
            let id = ledger
                .archive(&NewEntry {
                    kind: "mine",
                    label: Some(format!("threads{threads}-{fanout:?}")),
                    dataset_hash: content_hash(b"determinism-smoke"),
                    params_hash: content_hash(format!("{threads}/{fanout:?}").as_bytes()),
                    report: &doc,
                    trace: None,
                    flame: Some(&folded),
                })
                .unwrap();
            ids.push(id);
        }
    }
    // the archive round-trips: every run listed, every flame readable
    let entries = ledger.list().unwrap();
    assert_eq!(entries.len(), 9);
    assert_eq!(
        entries.iter().map(|e| e.id.clone()).collect::<Vec<_>>(),
        ids
    );
    assert!(ledger.flame_path(&ids[0]).is_file());
    // cross-run analytics cover timings, allocator totals, and per-phase
    // allocation attribution for archived runs
    let first = ledger.read_report(&ids[0]).unwrap();
    let last = ledger.read_report(&ids[8]).unwrap();
    let deltas = diff_reports(&first, &last, &DiffTolerances::default()).unwrap();
    let metrics: Vec<&str> = deltas.iter().map(|d| d.metric.as_str()).collect();
    for expected in [
        "timings.total_secs",
        "memory.alloc.total_bytes",
        "memory.phase_bytes.slices.bytes",
        "memory.phase_bytes.triclusters.bytes",
        "memory.phase_bytes.prune.bytes",
    ] {
        assert!(metrics.contains(&expected), "{expected} not in {metrics:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The smoke workload actually exercises the intra-slice paths: at 8
/// threads over 5 slices, Auto must pick pair-level range graphs and
/// branch-level DFS.
#[test]
fn auto_fanout_goes_intra_when_workers_outnumber_slices() {
    let m = smoke_matrix();
    let r = mine(&m, &smoke_params(8, FanoutMode::Auto)).unwrap();
    assert_eq!(r.fanout.range_graph, FanoutLevel::Pair);
    assert_eq!(r.fanout.bicluster, FanoutLevel::Branch);
    let r = mine(&m, &smoke_params(2, FanoutMode::Auto)).unwrap();
    assert_eq!(r.fanout.range_graph, FanoutLevel::Slice);
    assert_eq!(r.fanout.bicluster, FanoutLevel::Slice);
}
