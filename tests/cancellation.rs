//! Run-budget semantics: interrupting a run at an arbitrary budget yields a
//! sound subset of the uninterrupted run's clusters, and budget-truncated
//! runs stay byte-deterministic across thread counts and fan-out modes.

use proptest::prelude::*;
use tricluster::core::runreport::{fault_json, report_to_json_v2};
use tricluster::core::testdata::paper_table1;
use tricluster::core::{cluster_metrics, resolve_truncation, TruncationReason};
use tricluster::core::{CancelHandle, CancelToken};
use tricluster::prelude::*;

fn smoke_matrix() -> Matrix3 {
    let spec = SynthSpec {
        n_genes: 300,
        n_samples: 10,
        n_times: 5,
        n_clusters: 3,
        gene_range: (40, 40),
        sample_range: (4, 4),
        time_range: (3, 3),
        noise: 0.02,
        ..SynthSpec::default()
    };
    generate(&spec).matrix
}

fn params_with(
    threads: usize,
    f: impl FnOnce(tricluster::core::ParamsBuilder) -> tricluster::core::ParamsBuilder,
) -> Params {
    // ε matched to the generator's 2% noise (suggested_epsilon = 4.5·noise)
    f(Params::builder()
        .epsilon(0.09)
        .min_size(20, 3, 2)
        .threads(threads))
    .build()
    .unwrap()
}

fn cluster_view(result: &MiningResult) -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    result
        .triclusters
        .iter()
        .map(|c| (c.genes.to_vec(), c.samples.clone(), c.times.clone()))
        .collect()
}

/// Every cluster of a truncated run must be a (sub)cluster of something the
/// unbounded run found: budgets may lose results, never invent them.
fn assert_subset(truncated: &MiningResult, full: &MiningResult) {
    for c in &truncated.triclusters {
        assert!(
            full.triclusters.iter().any(|f| c.is_subcluster_of(f)),
            "truncated run invented a cluster outside the full set: {c:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interrupting Table 1 at any candidate budget yields a subset.
    #[test]
    fn any_candidate_budget_yields_a_subset(budget in 1u64..120) {
        let m = paper_table1();
        let base = Params::builder().epsilon(0.01).min_size(3, 3, 2);
        let full = mine(&m, &base.clone().build().unwrap()).unwrap();
        let cut = mine(&m, &base.max_candidates(budget).build().unwrap()).unwrap();
        assert_subset(&cut, &full);
        // the flag and the machine-readable reason always agree
        prop_assert_eq!(cut.truncated, cut.truncation.is_some());
        if let Some(reason) = cut.truncation {
            prop_assert_eq!(reason, TruncationReason::CandidateBudget);
        } else {
            // budget not exhausted: the result is the full result
            prop_assert_eq!(cluster_view(&cut), cluster_view(&full));
        }
    }

    /// Same property on a synthetic workload with a memory budget.
    #[test]
    fn any_memory_budget_yields_a_subset(extra in 0u64..40_000) {
        let m = smoke_matrix();
        let matrix_bytes = (m.n_genes() * m.n_samples() * m.n_times() * 8) as u64;
        let full = mine(&m, &params_with(1, |b| b)).unwrap();
        let cut = mine(
            &m,
            &params_with(1, |b| b.max_memory(matrix_bytes + extra)),
        )
        .unwrap();
        assert_subset(&cut, &full);
        prop_assert_eq!(cut.truncated, cut.truncation.is_some());
        if let Some(reason) = cut.truncation {
            prop_assert_eq!(reason, TruncationReason::MemoryBudget);
        }
    }

    /// The documented precedence (cancelled > deadline > memory > candidates
    /// > worker failure) is a pure, total fold: any combination of tripped
    /// causes resolves to exactly one reason, and resolving twice agrees.
    #[test]
    fn any_combination_of_causes_resolves_by_precedence(
        cancelled in proptest::bool::ANY,
        deadline in proptest::bool::ANY,
        memory in proptest::bool::ANY,
        candidates in proptest::bool::ANY,
        worker in proptest::bool::ANY,
    ) {
        let resolved = resolve_truncation(cancelled, deadline, memory, candidates, worker);
        let expected = if cancelled {
            Some(TruncationReason::Cancelled)
        } else if deadline {
            Some(TruncationReason::Deadline)
        } else if memory {
            Some(TruncationReason::MemoryBudget)
        } else if candidates {
            Some(TruncationReason::CandidateBudget)
        } else if worker {
            Some(TruncationReason::WorkerFailure)
        } else {
            None
        };
        prop_assert_eq!(resolved, expected);
        prop_assert_eq!(
            resolved,
            resolve_truncation(cancelled, deadline, memory, candidates, worker),
            "resolution must be deterministic"
        );
    }

    /// Racing trips on a live token: any subset of {cancel handle, zero
    /// deadline, zero memory budget} tripped from concurrent threads — plus
    /// a candidate budget observed by the caller — must latch and resolve
    /// to the documented precedence, independent of thread interleaving.
    #[test]
    fn racing_token_trips_resolve_deterministically(
        trip_cancel in proptest::bool::ANY,
        trip_deadline in proptest::bool::ANY,
        trip_memory in proptest::bool::ANY,
        trip_candidates in proptest::bool::ANY,
    ) {
        let handle = CancelHandle::new();
        let token = CancelToken::with_handle(
            trip_deadline.then_some(std::time::Duration::ZERO),
            trip_memory.then_some(0),
            handle.clone(),
        );
        let barrier = std::sync::Barrier::new(3);
        std::thread::scope(|s| {
            let cancel_thread = {
                let (handle, barrier) = (&handle, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    if trip_cancel {
                        handle.cancel();
                    }
                })
            };
            let charge_thread = {
                let (token, barrier) = (&token, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    for _ in 0..16 {
                        token.charge(1);
                    }
                })
            };
            let (token, barrier) = (&token, &barrier);
            barrier.wait();
            for _ in 0..16 {
                token.deadline_exceeded();
            }
            cancel_thread.join().unwrap();
            charge_thread.join().unwrap();
        });
        // One final cooperative poll, as a mining loop would issue before
        // assembling its result: every armed trip is now latched.
        token.deadline_exceeded();
        token.charge(1);
        let resolved = resolve_truncation(
            token.cancel_was_hit(),
            token.deadline_was_hit(),
            token.memory_was_hit(),
            trip_candidates,
            false,
        );
        let expected = if trip_cancel {
            Some(TruncationReason::Cancelled)
        } else if trip_deadline {
            Some(TruncationReason::Deadline)
        } else if trip_memory {
            Some(TruncationReason::MemoryBudget)
        } else if trip_candidates {
            Some(TruncationReason::CandidateBudget)
        } else {
            None
        };
        prop_assert_eq!(resolved, expected);
    }
}

/// A candidate-truncated run is byte-identical across thread counts and
/// fan-out modes: clusters, counters, and the v2 report's fault section.
#[test]
fn candidate_truncated_runs_are_deterministic_across_threads() {
    let m = smoke_matrix();
    let runs: Vec<(MiningResult, String)> = [
        (1, FanoutMode::Auto),
        (2, FanoutMode::Slice),
        (8, FanoutMode::Pair),
    ]
    .into_iter()
    .map(|(threads, fanout)| {
        let p = params_with(threads, |b| b.max_candidates(40).fanout(fanout));
        let r = mine(&m, &p).unwrap();
        let met = cluster_metrics(&m, &r.triclusters);
        let doc = report_to_json_v2(&m, &r, &r.report, &met);
        let counters = doc.get_path(&["report", "counters"]).unwrap().render();
        let fault = doc.get("fault").map(|f| f.render()).unwrap_or_default();
        (r, format!("{counters}\n{fault}"))
    })
    .collect();
    let (first, first_render) = &runs[0];
    assert!(
        first.truncated,
        "a 40-node budget must truncate this workload"
    );
    assert_eq!(first.truncation, Some(TruncationReason::CandidateBudget));
    for (r, render) in &runs[1..] {
        assert_eq!(cluster_view(first), cluster_view(r));
        assert_eq!(
            first_render, render,
            "truncated reports must be byte-identical"
        );
    }
}

/// A memory-truncated run drops whole slices in deterministic slice order,
/// so its output is also identical across thread counts.
#[test]
fn memory_truncated_runs_are_deterministic_across_threads() {
    let m = smoke_matrix();
    let matrix_bytes = (m.n_genes() * m.n_samples() * m.n_times() * 8) as u64;
    let budget = matrix_bytes + 2_000; // matrix fits; bicluster stores don't
    let runs: Vec<(MiningResult, String)> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let r = mine(&m, &params_with(threads, |b| b.max_memory(budget))).unwrap();
            let met = cluster_metrics(&m, &r.triclusters);
            let doc = report_to_json_v2(&m, &r, &r.report, &met);
            let counters = doc.get_path(&["report", "counters"]).unwrap().render();
            let fault = doc.get("fault").map(|f| f.render()).unwrap_or_default();
            (r, format!("{counters}\n{fault}"))
        })
        .collect();
    let (first, first_render) = &runs[0];
    assert!(
        first.truncated,
        "budget {budget} must truncate this workload"
    );
    assert_eq!(first.truncation, Some(TruncationReason::MemoryBudget));
    for (r, render) in &runs[1..] {
        assert_eq!(cluster_view(first), cluster_view(r));
        assert_eq!(
            first_render, render,
            "truncated reports must be byte-identical"
        );
    }
}

/// A matrix that alone exceeds the memory budget is a typed front-door
/// error, not a truncated run.
#[test]
fn matrix_larger_than_memory_budget_is_a_typed_error() {
    let m = paper_table1(); // 10*7*2*8 = 1120 bytes
    let p = Params::builder()
        .epsilon(0.01)
        .min_size(3, 3, 2)
        .max_memory(1_000)
        .build()
        .unwrap();
    match mine(&m, &p) {
        Err(MineError::MemoryBudget { required, budget }) => {
            assert_eq!(required, 1120);
            assert_eq!(budget, 1_000);
        }
        other => panic!("expected MemoryBudget error, got {other:?}"),
    }
}

/// `deadline: 0` cancels every phase at its first poll, identically on any
/// thread count: the canonical deterministic deadline truncation.
#[test]
fn zero_deadline_truncates_empty_and_deterministic() {
    let m = smoke_matrix();
    for threads in [1usize, 2, 8] {
        let p = params_with(threads, |b| b.deadline(std::time::Duration::ZERO));
        let r = mine(&m, &p).unwrap();
        assert!(r.truncated);
        assert_eq!(r.truncation, Some(TruncationReason::Deadline));
        assert!(
            r.triclusters.is_empty(),
            "a zero deadline admits no work (threads={threads})"
        );
        assert_eq!(
            fault_json(&r)
                .unwrap()
                .get("truncation_reason")
                .unwrap()
                .as_str(),
            Some("deadline")
        );
    }
}

/// A generous deadline changes nothing: same clusters, no truncation flag.
#[test]
fn generous_deadline_is_invisible() {
    let m = paper_table1();
    let base = Params::builder().epsilon(0.01).min_size(3, 3, 2);
    let plain = mine(&m, &base.clone().build().unwrap()).unwrap();
    let timed = mine(
        &m,
        &base
            .deadline(std::time::Duration::from_secs(3600))
            .build()
            .unwrap(),
    )
    .unwrap();
    assert!(!timed.truncated);
    assert_eq!(timed.truncation, None);
    assert_eq!(cluster_view(&plain), cluster_view(&timed));
}
