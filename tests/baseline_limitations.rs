//! §3 of the paper argues the prior methods each miss something TriCluster
//! captures. This test makes those arguments executable on one shared
//! scenario: a scaling tricluster living in a *subset* of samples and a
//! *subset* of time points, with a second overlapping cluster.

use tricluster::baselines::{chengchurch, jiang, opsm, xmotif};
use tricluster::bitset::BitSet;
use tricluster::prelude::*;

/// 60 genes x 8 samples x 6 times. Genes 0..=19 scale over samples 0..=3 at
/// times 1..=3; genes 10..=29 scale over samples 4..=7 at times 2..=4
/// (overlapping genes 10..=19 with the first cluster).
fn scenario() -> (Matrix3, Vec<Tricluster>) {
    let mut m = Matrix3::zeros(60, 8, 6);
    let mut state = 0xFACADEu64;
    m.map_in_place(|_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        0.5 + (state % 9000) as f64 / 300.0
    });
    let fill = |m: &mut Matrix3,
                genes: std::ops::Range<usize>,
                samples: &[usize],
                times: &[usize],
                salt: f64| {
        for g in genes {
            for (si, &s) in samples.iter().enumerate() {
                for (ti, &t) in times.iter().enumerate() {
                    let v = (1.0 + (g % 10) as f64 * 0.2 + salt)
                        * (1.0 + si as f64 * 0.5)
                        * (1.0 + ti as f64 * 0.3);
                    m.set(g, s, t, v);
                }
            }
        }
    };
    fill(&mut m, 0..20, &[0, 1, 2, 3], &[1, 2, 3], 0.0);
    fill(&mut m, 10..30, &[4, 5, 6, 7], &[2, 3, 4], 3.0);
    let truth = vec![
        Tricluster::new(
            BitSet::from_indices(60, 0..20),
            vec![0, 1, 2, 3],
            vec![1, 2, 3],
        ),
        Tricluster::new(
            BitSet::from_indices(60, 10..30),
            vec![4, 5, 6, 7],
            vec![2, 3, 4],
        ),
    ];
    (m, truth)
}

/// TriCluster itself: both overlapping clusters, exactly localized.
#[test]
fn tricluster_finds_both_overlapping_clusters() {
    let (m, truth) = scenario();
    let params = Params::builder()
        .epsilon(0.001)
        .min_size(15, 4, 3)
        .build()
        .unwrap();
    let result = mine(&m, &params).unwrap();
    let report = recovery::score(&truth, &result.triclusters, 0.95);
    assert_eq!(report.recall, 1.0, "{:?}", result.triclusters);
    assert_eq!(report.precision, 1.0);
}

/// §3.1 (Jiang et al.): the time dimension is used in full space, so a
/// pattern holding on 3 of 6 time points is invisible.
#[test]
fn jiang_misses_time_subset_patterns() {
    let (m, _) = scenario();
    let found = jiang::mine_gene_sample_clusters(
        &m,
        &jiang::JiangParams {
            min_correlation: 0.95,
            min_genes: 15,
            min_samples: 4,
        },
    );
    assert!(
        found.is_empty(),
        "full-time correlation should find nothing here: {found:?}"
    );
}

/// §3.3 (Cheng–Church): greedy + masking returns one cluster per pass and
/// its random masking perturbs overlapping structure — it cannot *enumerate*
/// the two maximal overlapping clusters the way TriCluster does. We assert
/// the structural weakness (its output is not the two ground-truth gene
/// sets), not that it finds nothing.
#[test]
fn chengchurch_does_not_enumerate_overlaps() {
    let (m, truth) = scenario();
    // run on the slice where both clusters are active
    let slice = m.time_slice(2);
    let found = chengchurch::mine_delta_biclusters(
        &slice,
        &chengchurch::CcParams {
            delta: 0.5,
            n_clusters: 2,
            min_rows: 10,
            min_cols: 3,
            mask_range: (0.0, 40.0),
            ..Default::default()
        },
    );
    let truth_sets: Vec<Vec<usize>> = truth.iter().map(|c| c.genes.to_vec()).collect();
    let exact_matches = found
        .iter()
        .filter(|bc| truth_sets.contains(&bc.rows))
        .count();
    assert!(
        exact_matches < 2,
        "greedy masking should not cleanly enumerate both overlapping \
         clusters: {found:?}"
    );
}

/// §3.3 (xMotif): Monte Carlo sampling — single-draw runs disagree across
/// seeds. (xMotif's pattern class is *conserved* rows, so this check uses a
/// matrix with two disjoint conserved blocks; a single random draw lands in
/// one, the other, or neither.)
#[test]
fn xmotif_is_seed_dependent() {
    let mut rows = Vec::new();
    for g in 0..4 {
        let level = 1.0 + g as f64;
        let mut row = vec![level, level, level];
        row.extend([40.0 + g as f64 * 9.0, 55.0, 71.0 + g as f64 * 3.0]);
        rows.push(row);
    }
    for g in 0..4 {
        let level = 10.0 + g as f64;
        rows.push(vec![
            90.0 - g as f64 * 7.0,
            63.0 + g as f64 * 2.0,
            48.0 + g as f64 * 5.0,
            level,
            level,
            level,
        ]);
    }
    let slice = Matrix2::from_rows(&rows);
    let outcomes: std::collections::HashSet<Option<(usize, Vec<usize>)>> = (0..10)
        .map(|seed| {
            xmotif::mine_xmotifs(
                &slice,
                &xmotif::XMotifParams {
                    alpha: 0.01,
                    iterations: 1,
                    seed,
                    ..Default::default()
                },
            )
            .map(|motif| (motif.size(), motif.samples))
        })
        .collect();
    assert!(outcomes.len() > 1, "{outcomes:?}");
}

/// §3.3 (OPSM): the beam search is incomplete relative to the exact search
/// on small inputs — and it mines a different pattern class altogether
/// (orders, not ratios), so it reports row orders rather than the scaling
/// clusters.
#[test]
fn opsm_beam_bounded_by_exact() {
    let (m, _) = scenario();
    let slice = m.time_slice(2);
    // restrict to 6 columns for the exact reference
    let small = slice.submatrix(&(0..20).collect::<Vec<_>>(), &[0, 1, 2, 3, 4, 5]);
    let exact = opsm::mine_opsm_exact(&small, 3, 1).unwrap();
    for beam in [1, 2, 8, 64] {
        let found = opsm::mine_opsm_beam(&small, 3, beam, 1);
        if let Some(best) = found.first() {
            assert!(
                best.support() <= exact.support(),
                "beam {beam} exceeded exact support"
            );
        }
    }
    let wide = opsm::mine_opsm_beam(&small, 3, 64, 1);
    assert_eq!(
        wide[0].support(),
        exact.support(),
        "wide beam reaches exact"
    );
}
