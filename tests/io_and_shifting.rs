//! Cross-crate flows: TSV round-trips feeding the miner, preprocessing,
//! and shifting-cluster mining (Lemma 2) end-to-end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tricluster::core::testdata::{paper_table1, paper_table1_expected};
use tricluster::prelude::*;

fn paper_params() -> Params {
    Params::builder()
        .epsilon(0.01)
        .min_size(3, 3, 2)
        .build()
        .unwrap()
}

fn view(cs: &[Tricluster]) -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    let mut v: Vec<_> = cs
        .iter()
        .map(|c| (c.genes.to_vec(), c.samples.clone(), c.times.clone()))
        .collect();
    v.sort();
    v
}

/// Write the paper matrix to stacked TSV, read it back, and mine: results
/// identical to mining the in-memory matrix.
#[test]
fn tsv_roundtrip_preserves_mining_results() {
    let m = paper_table1();
    let labels = Labels::default_for(10, 7, 2);
    let mut buf = Vec::new();
    io::write_stacked_tsv(&mut buf, &m, &labels).unwrap();
    let (back, back_labels) = io::read_stacked_tsv(buf.as_slice()).unwrap();
    assert_eq!(back, m);
    assert_eq!(back_labels, labels);
    let mut want = paper_table1_expected();
    want.sort();
    assert_eq!(
        view(&mine(&back, &paper_params()).unwrap().triclusters),
        want
    );
}

/// Zeros in the raw file are replaced by preprocessing and the matrix
/// becomes minable (ratios defined everywhere).
#[test]
fn zero_replacement_enables_mining() {
    let mut m = paper_table1();
    // blank out some background cells with zeros, as raw exports do
    m.set(3, 3, 0, 0.0);
    m.set(5, 2, 1, 0.0);
    let mut rng = StdRng::seed_from_u64(5);
    let replaced =
        preprocess::replace_zeros(&mut m, preprocess::ZeroReplacement::default(), &mut rng);
    assert_eq!(replaced, 2);
    let mut want = paper_table1_expected();
    want.sort();
    assert_eq!(view(&mine(&m, &paper_params()).unwrap().triclusters), want);
}

/// Lemma 2 end-to-end: a planted additive cluster is found by
/// `mine_shifting` and reported with its offsets; plain `mine` on the raw
/// matrix does not see it as a scaling cluster.
#[test]
fn shifting_cluster_pipeline() {
    let mut m = Matrix3::zeros(6, 5, 3);
    // background
    let mut v = 0.13;
    m.map_in_place(|_| {
        v = (v * 31.7) % 9.0 + 1.0;
        v
    });
    // genes 0..3 / samples 0..3 / all times: additive offsets per sample
    let offsets = [0.0, 0.9, -0.4, 1.7];
    for g in 0..4 {
        for (s, off) in offsets.iter().enumerate() {
            for t in 0..3 {
                m.set(g, s, t, 2.0 + g as f64 * 0.5 + t as f64 * 0.25 + off);
            }
        }
    }
    let params = Params::builder()
        .epsilon(0.001)
        .min_size(4, 4, 3)
        .build()
        .unwrap();
    let (shifting, _) = mine_shifting(&m, &params).unwrap();
    assert_eq!(shifting.len(), 1, "{shifting:?}");
    let c = &shifting[0];
    assert_eq!(c.cluster.genes.to_vec(), vec![0, 1, 2, 3]);
    assert_eq!(c.cluster.samples, vec![0, 1, 2, 3]);
    for (got, want) in c.sample_offsets.iter().zip(offsets) {
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }
    // the same region is NOT multiplicative-coherent: plain mining at the
    // same ε finds nothing of that extent
    let plain = mine(&m, &params).unwrap();
    assert!(
        plain
            .triclusters
            .iter()
            .all(|c| c.genes.count() < 4 || c.samples.len() < 4),
        "additive cluster must not satisfy scaling coherence: {:?}",
        plain.triclusters
    );
}

/// `mine_auto` handles a matrix whose largest dimension is on the time
/// axis (e.g. long time-series with few genes).
#[test]
fn auto_transposition_on_time_heavy_matrix() {
    let m = paper_table1(); // 10 x 7 x 2
    let twisted = m.permuted([Axis::Sample, Axis::Time, Axis::Gene]); // 7 x 2 x 10
    let result = mine_auto(&twisted, &paper_params()).unwrap();
    // clusters in twisted coordinates: genes axis holds samples, samples
    // axis holds times, times axis holds genes
    let mut got: Vec<_> = result
        .triclusters
        .iter()
        .map(|c| (c.times.clone(), c.genes.to_vec(), c.samples.clone()))
        .collect();
    got.sort();
    let mut want = paper_table1_expected();
    want.sort();
    assert_eq!(got, want);
}
