//! The fault-injection gate: every named injection site, hit with every
//! action, must degrade into a typed error or a valid truncated subset —
//! never a process abort, never an invented cluster.
//!
//! Test builds compile `tricluster-core` with the `failpoints` feature, so
//! the sites in [`FAILPOINTS`] are live here; release builds compile them
//! to nothing. Scenarios serialize through the process-global
//! `failpoint::scenario()` guard.

use std::time::Duration;
use tricluster::core::runreport::{fault_json, report_to_json_v2};
use tricluster::core::{cluster_metrics, FAILPOINTS};
use tricluster::prelude::*;
use tricluster_failpoint::{self as failpoint, Action};

fn smoke_matrix() -> Matrix3 {
    let spec = SynthSpec {
        n_genes: 200,
        n_samples: 8,
        n_times: 4,
        n_clusters: 2,
        gene_range: (30, 30),
        sample_range: (4, 4),
        time_range: (3, 3),
        noise: 0.01,
        ..SynthSpec::default()
    };
    generate(&spec).matrix
}

fn params(threads: usize) -> Params {
    // ε matched to the generator's 1% noise (suggested_epsilon = 4.5·noise)
    Params::builder()
        .epsilon(0.045)
        .min_size(15, 3, 2)
        .threads(threads)
        .build()
        .unwrap()
}

fn cluster_view(result: &MiningResult) -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    result
        .triclusters
        .iter()
        .map(|c| (c.genes.to_vec(), c.samples.clone(), c.times.clone()))
        .collect()
}

fn assert_subset(degraded: &MiningResult, full: &MiningResult) {
    for c in &degraded.triclusters {
        assert!(
            full.triclusters.iter().any(|f| c.is_subcluster_of(f)),
            "degraded run invented a cluster outside the full set: {c:?}"
        );
    }
}

/// The tentpole guarantee: for every site × every action, `mine` returns —
/// a typed error or an `Ok` whose clusters are a subset of the clean run's.
#[test]
fn every_site_and_every_action_degrades_gracefully() {
    let m = smoke_matrix();
    let plain = params(1);
    // the prune phase only runs when merge/delete post-processing is on
    let merging = Params::builder()
        .epsilon(0.045)
        .min_size(15, 3, 2)
        .threads(1)
        .merge(MergeParams {
            eta: 0.2,
            gamma: 0.1,
        })
        .build()
        .unwrap();
    let full_plain = mine(&m, &plain).unwrap();
    let full_merging = mine(&m, &merging).unwrap();
    for &site in FAILPOINTS {
        let (p, full) = if site == "core.prune.phase" {
            (&merging, &full_merging)
        } else {
            (&plain, &full_plain)
        };
        for action in [
            Action::Panic,
            Action::Error,
            Action::Delay(Duration::from_millis(2)),
        ] {
            let _s = failpoint::scenario();
            failpoint::configure_once(site, action.clone());
            match mine(&m, p) {
                Ok(r) => {
                    assert_subset(&r, full);
                    // a delay alone must not perturb the result at all
                    if action == Action::Delay(Duration::from_millis(2)) {
                        assert_eq!(
                            cluster_view(&r),
                            cluster_view(full),
                            "{site}: delay changed the output"
                        );
                        assert_eq!(r.truncation, None, "{site}: delay marked truncation");
                    } else {
                        // a lost unit must be accounted for
                        assert!(
                            r.truncated,
                            "{site}/{action:?}: degraded Ok not flagged truncated"
                        );
                        assert!(
                            !r.worker_failures.is_empty(),
                            "{site}/{action:?}: no failure recorded"
                        );
                    }
                }
                Err(e) => {
                    // only the front-door site may fail the whole run, and
                    // only with its typed error variants
                    assert_eq!(site, "core.mine.entry", "{site}/{action:?}: {e}");
                    match (&action, &e) {
                        (Action::Error, MineError::Fault { site: s, .. }) => {
                            assert_eq!(*s, "core.mine.entry")
                        }
                        (Action::Panic, MineError::Panic { message }) => {
                            assert!(message.contains("core.mine.entry"), "{message}")
                        }
                        other => panic!("unexpected error shape: {other:?}"),
                    }
                }
            }
        }
    }
}

/// One poisoned DFS branch: the run completes, names the lost unit, and the
/// survivors merge deterministically.
#[test]
fn branch_panic_is_isolated_and_reported() {
    let m = smoke_matrix();
    let p = params(1);
    let full = mine(&m, &p).unwrap();
    let _s = failpoint::scenario();
    failpoint::configure_once("core.bicluster.branch", Action::Panic);
    let r = mine(&m, &p).unwrap();
    assert!(r.truncated);
    assert_eq!(r.truncation, Some(TruncationReason::WorkerFailure));
    assert_eq!(r.worker_failures.len(), 1);
    let f = &r.worker_failures[0];
    assert_eq!(f.phase, "bicluster_branch");
    assert!(f.unit.starts_with("t="), "unit names the slice: {}", f.unit);
    assert!(f.message.contains("core.bicluster.branch"), "{}", f.message);
    assert_subset(&r, &full);
    // the failure reaches the report: counter + v2 fault section
    assert_eq!(
        r.report
            .counter(tricluster::core::obs::names::F_WORKER_FAILURES),
        1
    );
    let met = cluster_metrics(&m, &r.triclusters);
    let doc = report_to_json_v2(&m, &r, &r.report, &met);
    tricluster::core::runreport::validate_v2(&doc).unwrap();
    assert_eq!(
        doc.get_path(&["fault", "truncation_reason"])
            .and_then(|v| v.as_str()),
        Some("worker_failure")
    );
    assert_eq!(
        doc.get_path(&["fault", "worker_failures"])
            .and_then(|v| v.as_arr())
            .map(<[_]>::len),
        Some(1)
    );
}

/// Panic isolation holds on the multi-threaded fan-out paths too: a panic
/// inside a worker thread never tears the process down.
#[test]
fn worker_thread_panics_are_isolated() {
    let m = smoke_matrix();
    let full = mine(&m, &params(1)).unwrap();
    for (site, fanout) in [
        ("core.slice", FanoutMode::Slice),
        ("core.rangegraph.pair", FanoutMode::Pair),
        ("core.bicluster.branch", FanoutMode::Pair),
    ] {
        let _s = failpoint::scenario();
        failpoint::configure_once(site, Action::Panic);
        let p = Params::builder()
            .epsilon(0.045)
            .min_size(15, 3, 2)
            .threads(4)
            .fanout(fanout)
            .build()
            .unwrap();
        let r = mine(&m, &p).unwrap();
        assert!(r.truncated, "{site}");
        assert!(!r.worker_failures.is_empty(), "{site}");
        assert_subset(&r, &full);
    }
}

/// An injected per-slice delay plus a tiny deadline: every slice polls the
/// expired deadline before doing work, so the truncated result is empty and
/// byte-identical across thread counts — the deterministic deadline test.
#[test]
fn injected_delay_with_deadline_truncates_deterministically() {
    let m = smoke_matrix();
    for threads in [1usize, 2, 8] {
        let _s = failpoint::scenario();
        failpoint::configure("core.slice", Action::Delay(Duration::from_millis(30)));
        let p = Params::builder()
            .epsilon(0.045)
            .min_size(15, 3, 2)
            .threads(threads)
            .deadline(Duration::from_millis(1))
            .build()
            .unwrap();
        let r = mine(&m, &p).unwrap();
        assert!(r.truncated, "threads={threads}");
        assert_eq!(r.truncation, Some(TruncationReason::Deadline));
        assert!(
            r.triclusters.is_empty(),
            "slices that wake up past the deadline must contribute nothing \
             (threads={threads}, got {})",
            r.triclusters.len()
        );
        assert_eq!(
            fault_json(&r)
                .unwrap()
                .get("truncation_reason")
                .unwrap()
                .as_str(),
            Some("deadline")
        );
    }
}

/// With nothing armed, runs through the failpoint-instrumented build are
/// byte-identical to a clean run: no fault section, no failure counter, and
/// the same clusters and counters on every thread count.
#[test]
fn disarmed_failpoints_leave_no_trace() {
    let m = smoke_matrix();
    let _s = failpoint::scenario(); // guards against concurrent scenarios
    let render = |threads: usize| {
        let r = mine(&m, &params(threads)).unwrap();
        assert!(!r.truncated);
        assert_eq!(r.truncation, None);
        assert!(r.worker_failures.is_empty());
        assert_eq!(
            r.report
                .counter(tricluster::core::obs::names::F_WORKER_FAILURES),
            0
        );
        assert_eq!(fault_json(&r), None);
        let met = cluster_metrics(&m, &r.triclusters);
        let doc = report_to_json_v2(&m, &r, &r.report, &met);
        assert!(doc.get("fault").is_none(), "clean runs carry no fault key");
        format!(
            "{:?}\n{}",
            cluster_view(&r),
            doc.get_path(&["report", "counters"]).unwrap().render()
        )
    };
    let one = render(1);
    assert_eq!(one, render(2));
    assert_eq!(one, render(8));
}

/// A panic raised mid-event — after rendering a JSON line but before it
/// reaches the writer — must never tear the stream: every byte that does
/// come out is complete lines of valid JSON, and the sink keeps working
/// after recovering the poisoned lock.
#[test]
fn jsonlines_panic_never_tears_a_line() {
    use std::io::Write;
    use std::sync::{Arc, Mutex};
    use tricluster::core::obs::json::Json;
    use tricluster::core::obs::{EventSink, JsonLinesSink};

    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = Arc::new(Mutex::new(Vec::new()));
    let _s = failpoint::scenario();
    let sink = JsonLinesSink::new(SharedBuf(buf.clone()));
    sink.counter("before", 1);
    failpoint::configure_once("obs.jsonlines.line", Action::Panic);
    let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sink.counter("poisoned", 2);
    }));
    assert!(hit.is_err(), "armed failpoint must panic");
    // the sink still accepts events after the panic...
    sink.counter("after", 3);
    drop(sink);
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    // ...and the stream holds only complete, parseable lines: the
    // panicked event is wholly absent, not half-written
    assert!(text.ends_with('\n'), "torn tail: {text:?}");
    let names: Vec<String> = text
        .lines()
        .map(|line| {
            let doc =
                Json::parse(line).unwrap_or_else(|e| panic!("torn/invalid line {line:?}: {e}"));
            doc.get("counter")
                .and_then(|v| v.as_str())
                .unwrap()
                .to_string()
        })
        .collect();
    assert_eq!(names, ["before", "after"], "{text:?}");
}

/// A lost prune phase degrades to "no clusters survived post-processing" —
/// flagged, recorded, and still a well-formed result.
#[test]
fn prune_phase_panic_yields_flagged_empty_result() {
    let m = smoke_matrix();
    let _s = failpoint::scenario();
    failpoint::configure_once("core.prune.phase", Action::Panic);
    let p = Params::builder()
        .epsilon(0.045)
        .min_size(15, 3, 2)
        .threads(1)
        .merge(MergeParams {
            eta: 0.2,
            gamma: 0.1,
        })
        .build()
        .unwrap();
    let r = mine(&m, &p).unwrap();
    assert!(r.truncated);
    assert_eq!(r.truncation, Some(TruncationReason::WorkerFailure));
    assert!(r.triclusters.is_empty());
    assert_eq!(r.worker_failures.len(), 1);
    assert_eq!(r.worker_failures[0].phase, "prune");
}
