//! Property tests for the hypergeometric enrichment machinery.

use proptest::prelude::*;
use tricluster_microarray::go::{hypergeometric_tail, ln_choose, ln_gamma};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ln Γ satisfies the recurrence Γ(x+1) = x·Γ(x).
    #[test]
    fn ln_gamma_recurrence(x in 0.1f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "x={x}: {lhs} vs {rhs}");
    }

    /// Pascal's rule: C(n,k) = C(n-1,k-1) + C(n-1,k).
    #[test]
    fn ln_choose_pascal(n in 2usize..60, k in 1usize..59) {
        prop_assume!(k < n);
        let lhs = ln_choose(n, k).exp();
        let rhs = ln_choose(n - 1, k - 1).exp() + ln_choose(n - 1, k).exp();
        prop_assert!(
            (lhs - rhs).abs() / rhs.max(1.0) < 1e-9,
            "C({n},{k}): {lhs} vs {rhs}"
        );
    }

    /// Tail probabilities are valid probabilities and monotone in k.
    #[test]
    fn tail_is_monotone_probability(
        total in 2usize..200,
        marked_frac in 0.0f64..1.0,
        draw_frac in 0.0f64..1.0,
    ) {
        let marked = ((total as f64 * marked_frac) as usize).min(total);
        let n = ((total as f64 * draw_frac) as usize).clamp(1, total);
        let mut prev = f64::INFINITY;
        for k in 0..=n {
            let p = hypergeometric_tail(total, marked, n, k);
            prop_assert!((0.0..=1.0).contains(&p), "p={p} out of range");
            prop_assert!(p <= prev + 1e-12, "tail must fall as k rises");
            prev = p;
        }
        prop_assert_eq!(hypergeometric_tail(total, marked, n, 0), 1.0);
    }

    /// The tail sums the exact PMF: P[K ≥ k] − P[K ≥ k+1] = P[K = k] ≥ 0,
    /// and all the point masses sum to 1.
    #[test]
    fn tail_differences_sum_to_one(total in 2usize..80, marked in 1usize..79, n in 1usize..79) {
        prop_assume!(marked <= total && n <= total);
        let mut acc = 0.0;
        for k in 0..=n {
            let pk = hypergeometric_tail(total, marked, n, k)
                - hypergeometric_tail(total, marked, n, k + 1);
            prop_assert!(pk >= -1e-9, "negative point mass at k={k}");
            acc += pk;
        }
        prop_assert!((acc - 1.0).abs() < 1e-6, "masses sum to {acc}");
    }

    /// Symmetry of the hypergeometric: swapping the roles of "marked" and
    /// "drawn" leaves the distribution unchanged.
    #[test]
    fn marked_drawn_symmetry(total in 2usize..80, marked in 1usize..79, n in 1usize..79, k in 0usize..20) {
        prop_assume!(marked <= total && n <= total);
        let a = hypergeometric_tail(total, marked, n, k);
        let b = hypergeometric_tail(total, n, marked, k);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}
