//! Simulated yeast cell-cycle elutriation dataset (substitute for the
//! Spellman et al. data used in paper §5.2).
//!
//! # Generative model
//!
//! Every gene has a latent intensity `expr(g, t)`. Each of the 13 sample
//! attributes is a measurement channel with a per-channel gain:
//! `d[g][s][t] = expr(g, t) · gain(s) · (1 + jitter)`.
//!
//! * **Background genes** get a per-cell jitter of several percent — channel
//!   columns are only loosely proportional, so no large gene set stays
//!   coherent across ≥ `my` channels at the paper's tight `ε = 0.003`.
//! * **Embedded groups** (the paper's five clusters: 51, 52, 57, 97, 66
//!   genes) follow `expr(g, t) = base(g) · profile_c(t)` on a contiguous
//!   window of time points, with jitter below `ε/4`, on a subset of
//!   channels; outside the window/channels they receive background-level
//!   jitter. Each group therefore forms exactly one coherent tricluster
//!   with the intended `genes × channels × times` extent.
//!
//! The defaults mirror the paper (`7679 × 13 × 14`); [`YeastSpec::scaled`]
//! produces a smaller instance with the same structure for tests.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tricluster_bitset::BitSet;
use tricluster_core::Tricluster;
use tricluster_matrix::{Labels, Matrix3};

/// The paper's mining parameters for this dataset: `mx=50, my=4, mz=5`,
/// `ε = 0.003` (relaxed along time).
pub const PAPER_MIN_GENES: usize = 50;
/// Minimum samples (`my`) used in §5.2.
pub const PAPER_MIN_SAMPLES: usize = 4;
/// Minimum time points (`mz`) used in §5.2.
pub const PAPER_MIN_TIMES: usize = 5;
/// The ratio threshold `ε` used in §5.2.
pub const PAPER_EPSILON: f64 = 0.003;

/// Specification of the simulated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct YeastSpec {
    /// Total number of genes (paper: 7679).
    pub n_genes: usize,
    /// Number of sample attributes / channels (paper: 13).
    pub n_samples: usize,
    /// Number of time points (paper: 14, minutes 0..390 step 30).
    pub n_times: usize,
    /// Gene-group sizes to embed (paper cluster sizes).
    pub group_sizes: Vec<usize>,
    /// Channels per embedded group.
    pub samples_per_group: usize,
    /// Time points per embedded group (contiguous window).
    pub times_per_group: usize,
    /// Relative jitter of embedded-group cells (must stay ≪ ε).
    pub cluster_jitter: f64,
    /// Relative jitter of background cells.
    pub background_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YeastSpec {
    fn default() -> Self {
        YeastSpec {
            n_genes: 7679,
            n_samples: 13,
            n_times: 14,
            group_sizes: vec![51, 52, 57, 97, 66],
            samples_per_group: 4,
            times_per_group: 5,
            cluster_jitter: 0.0006,
            background_jitter: 0.08,
            seed: 20050614, // SIGMOD 2005 opening day
        }
    }
}

impl YeastSpec {
    /// A smaller instance (default 1500 genes) with the same embedded
    /// structure, for tests and quick runs.
    pub fn scaled(n_genes: usize) -> Self {
        assert!(n_genes >= 600, "need room for the five embedded groups");
        YeastSpec {
            n_genes,
            ..YeastSpec::default()
        }
    }
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct YeastDataset {
    /// Expression matrix, genes × channels × times.
    pub matrix: Matrix3,
    /// Gene/sample/time names (systematic-style gene names, channel names
    /// modeled on the Spellman raw attributes, times in minutes).
    pub labels: Labels,
    /// The embedded coherent regions (ground truth).
    pub embedded: Vec<Tricluster>,
}

/// Channel names modeled on the raw attributes of the Spellman dataset.
const CHANNELS: [&str; 13] = [
    "CH1I",
    "CH1B",
    "CH1D",
    "CH2I",
    "CH2B",
    "CH2D",
    "CH2IN",
    "CH1I_norm",
    "CH2I_norm",
    "RAT1",
    "RAT2",
    "RAT1N",
    "RAT2N",
];

/// Builds the simulated dataset.
pub fn build(spec: &YeastSpec) -> YeastDataset {
    let total_group: usize = spec.group_sizes.iter().sum();
    assert!(
        total_group <= spec.n_genes,
        "group sizes ({total_group}) exceed gene count ({})",
        spec.n_genes
    );
    assert!(spec.samples_per_group <= spec.n_samples);
    assert!(spec.times_per_group <= spec.n_times);
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // channel gains: ratios/normalized signals span roughly one decade
    let gains: Vec<f64> = (0..spec.n_samples)
        .map(|_| rng.gen_range(0.4..4.0))
        .collect();

    // latent per-gene intensity scale and smooth temporal wander
    // (magnitudes chosen so per-fiber variances land in the hundreds, the
    // order of the paper's reported fluctuations)
    let base: Vec<f64> = (0..spec.n_genes)
        .map(|_| rng.gen_range(10.0..160.0))
        .collect();

    // assign group genes: shuffle, take consecutive blocks
    let mut gene_order: Vec<usize> = (0..spec.n_genes).collect();
    gene_order.shuffle(&mut rng);
    let mut embedded = Vec::with_capacity(spec.group_sizes.len());
    let mut cursor = 0usize;
    type GroupMeta = (Vec<usize>, Vec<usize>, Vec<usize>, Vec<f64>);
    let mut group_meta: Vec<GroupMeta> = Vec::new();
    for (ci, &size) in spec.group_sizes.iter().enumerate() {
        let genes: Vec<usize> = gene_order[cursor..cursor + size].to_vec();
        cursor += size;
        // channel subset: rotate so groups use different channel sets
        let mut chans: Vec<usize> = (0..spec.n_samples).collect();
        chans.rotate_left((ci * 3) % spec.n_samples);
        chans.truncate(spec.samples_per_group);
        chans.sort_unstable();
        // contiguous time window, staggered per group
        let max_start = spec.n_times - spec.times_per_group;
        let start = (ci * 2).min(max_start);
        let times: Vec<usize> = (start..start + spec.times_per_group).collect();
        // cell-cycle-like temporal profile for the group
        let phase = ci as f64 * 1.1;
        let profile: Vec<f64> = (0..spec.n_times)
            .map(|t| 1.0 + 0.6 * (t as f64 * 0.45 + phase).sin())
            .collect();
        embedded.push(Tricluster::new(
            BitSet::from_indices(spec.n_genes, genes.iter().copied()),
            chans.clone(),
            times.clone(),
        ));
        group_meta.push((genes, chans, times, profile));
    }

    // fill matrix
    let mut m = Matrix3::zeros(spec.n_genes, spec.n_samples, spec.n_times);
    for (g, &gene_base) in base.iter().enumerate() {
        // background temporal wander: smooth random walk per gene
        let mut level = gene_base;
        for t in 0..spec.n_times {
            level *= rng.gen_range(0.85..1.18);
            for (s, &gain) in gains.iter().enumerate() {
                let jitter = rng.gen_range(-spec.background_jitter..=spec.background_jitter);
                m.set(g, s, t, level * gain * (1.0 + jitter));
            }
        }
    }
    for (genes, chans, times, profile) in &group_meta {
        for &g in genes {
            for &s in chans {
                for &t in times {
                    let jitter = rng.gen_range(-spec.cluster_jitter..=spec.cluster_jitter);
                    m.set(g, s, t, base[g] * profile[t] * gains[s] * (1.0 + jitter));
                }
            }
        }
    }

    let labels = Labels::new(
        (0..spec.n_genes).map(systematic_name).collect(),
        CHANNELS
            .iter()
            .cycle()
            .take(spec.n_samples)
            .map(|s| s.to_string())
            .collect(),
        (0..spec.n_times)
            .map(|t| format!("{}min", t * 30))
            .collect(),
    );

    YeastDataset {
        matrix: m,
        labels,
        embedded,
    }
}

/// Generates a systematic-style yeast ORF name (`Y<chr><arm><num><strand>`).
fn systematic_name(i: usize) -> String {
    let chromosome = (b'A' + ((i / 500) % 16) as u8) as char;
    let arm = if (i / 250).is_multiple_of(2) {
        'L'
    } else {
        'R'
    };
    let strand = if i.is_multiple_of(2) { 'W' } else { 'C' };
    format!("Y{chromosome}{arm}{:03}{strand}", i % 250)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricluster_core::validate::is_coherent_region;

    fn small() -> YeastSpec {
        YeastSpec::scaled(800)
    }

    #[test]
    fn default_spec_matches_paper_shape() {
        let spec = YeastSpec::default();
        assert_eq!((spec.n_genes, spec.n_samples, spec.n_times), (7679, 13, 14));
        assert_eq!(spec.group_sizes, vec![51, 52, 57, 97, 66]);
    }

    #[test]
    fn build_produces_expected_dimensions() {
        let ds = build(&small());
        assert_eq!(ds.matrix.dims(), (800, 13, 14));
        assert_eq!(ds.embedded.len(), 5);
        assert_eq!(ds.labels.genes().len(), 800);
        assert_eq!(ds.labels.samples().len(), 13);
        assert_eq!(
            ds.labels.times(),
            &[
                "0min", "30min", "60min", "90min", "120min", "150min", "180min", "210min",
                "240min", "270min", "300min", "330min", "360min", "390min",
            ]
        );
    }

    #[test]
    fn embedded_groups_have_paper_sizes() {
        let ds = build(&small());
        let sizes: Vec<usize> = ds.embedded.iter().map(|c| c.genes.count()).collect();
        assert_eq!(sizes, vec![51, 52, 57, 97, 66]);
        for c in &ds.embedded {
            assert_eq!(c.samples.len(), 4);
            assert_eq!(c.times.len(), 5);
        }
    }

    #[test]
    fn embedded_groups_are_coherent_at_paper_epsilon() {
        let ds = build(&small());
        for c in &ds.embedded {
            assert!(
                is_coherent_region(
                    &ds.matrix,
                    &c.genes,
                    &c.samples,
                    &c.times,
                    PAPER_EPSILON,
                    PAPER_EPSILON
                ),
                "embedded group not coherent at eps={PAPER_EPSILON}: {c:?}"
            );
        }
    }

    #[test]
    fn groups_do_not_overlap_in_genes() {
        let ds = build(&small());
        for (i, a) in ds.embedded.iter().enumerate() {
            for b in &ds.embedded[i + 1..] {
                assert!(a.genes.is_disjoint(&b.genes));
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = build(&small());
        let b = build(&small());
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.embedded, b.embedded);
    }

    #[test]
    fn values_are_positive_and_signal_scaled() {
        let ds = build(&small());
        let mut max = 0.0f64;
        for &v in ds.matrix.as_slice() {
            assert!(v > 0.0, "expression values are positive raw signals");
            max = max.max(v);
        }
        assert!(max > 50.0, "raw-signal magnitudes expected, got max {max}");
    }

    #[test]
    fn systematic_names_look_like_orfs() {
        assert_eq!(systematic_name(0), "YAL000W");
        let n = systematic_name(1234);
        assert!(n.starts_with('Y') && n.len() == 7, "{n}");
    }

    #[test]
    #[should_panic(expected = "group sizes")]
    fn too_small_genome_panics() {
        let spec = YeastSpec {
            n_genes: 100,
            ..YeastSpec::default()
        };
        build(&spec);
    }
}
