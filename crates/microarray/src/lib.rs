//! Simulated yeast cell-cycle microarray data and GO-term enrichment.
//!
//! The paper's real-data evaluation (§5.2) uses the Spellman et al. yeast
//! cell-cycle *elutriation* experiments — a `7679 genes × 13 sample
//! attributes × 14 time points` matrix — and validates mined clusters with
//! the yeastgenome.org GO term finder. Neither resource is available
//! offline, so this crate provides faithful substitutes that exercise the
//! identical code paths:
//!
//! * [`yeast`] — a generative model of the elutriation dataset. The 13
//!   "samples" are measurement channels (raw/normalized Cy5 & Cy3 signals,
//!   their ratios, …), i.e. near-multiplicative transforms of a common
//!   latent intensity — precisely why scaling clusters across sample
//!   columns exist in the real data. Five coherent gene groups with the
//!   paper's cluster sizes (51, 52, 57, 97, 66 genes) are embedded with
//!   per-group temporal profiles.
//! * [`spellman`] — a loader/assembler for Spellman-style raw attribute
//!   tables (one table per time point), usable with the real files when
//!   available.
//! * [`go`] — a simulated Gene Ontology catalog (process / function /
//!   component) with background terms plus group-enriched marker terms, and
//!   an exact hypergeometric enrichment test, reproducing the shape of the
//!   paper's Table 2 (`term (n=3, p=0.00346)` rows, cutoff `p < 0.01`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod go;
pub mod spellman;
pub mod yeast;
