//! Simulated Gene Ontology catalog and hypergeometric enrichment
//! (substitute for the yeastgenome.org GO term finder used for Table 2).
//!
//! A [`GoCatalog`] maps terms in the three GO categories (biological
//! process, molecular function, cellular component) to gene sets.
//! [`simulate_catalog`] builds one with background terms of realistic
//! frequency plus *marker terms* planted in given gene groups, so that a
//! correctly mined cluster shows a handful of significantly shared terms —
//! the shape of the paper's Table 2.
//!
//! [`enrich`] computes the exact hypergeometric upper-tail p-value for each
//! term against a gene set: drawing `n = |cluster|` genes from a genome of
//! `N` where `m` carry the term, the probability of seeing `≥ k` carriers:
//!
//! ```text
//! p = Σ_{i=k}^{min(n,m)}  C(m,i) · C(N−m, n−i) / C(N, n)
//! ```
//!
//! computed in log space with a Lanczos `ln Γ` (no external stats crate).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// The three GO ontologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GoCategory {
    /// Biological process.
    Process,
    /// Molecular function.
    Function,
    /// Cellular component.
    Component,
}

impl GoCategory {
    /// All categories in Table 2 column order.
    pub const ALL: [GoCategory; 3] = [
        GoCategory::Process,
        GoCategory::Function,
        GoCategory::Component,
    ];
}

impl std::fmt::Display for GoCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GoCategory::Process => "Process",
            GoCategory::Function => "Function",
            GoCategory::Component => "Cellular Component",
        })
    }
}

/// One GO term with its annotated genes.
#[derive(Debug, Clone)]
pub struct GoTerm {
    /// Term name, e.g. `"ubiquitin cycle"`.
    pub name: String,
    /// Ontology the term belongs to.
    pub category: GoCategory,
    /// Annotated genes (indices into the genome).
    pub genes: Vec<usize>,
}

/// A catalog of GO terms over a genome of `n_genes`.
#[derive(Debug, Clone)]
pub struct GoCatalog {
    /// Genome size `N`.
    pub n_genes: usize,
    /// All terms.
    pub terms: Vec<GoTerm>,
}

/// One significant term in an enrichment report.
#[derive(Debug, Clone)]
pub struct Enrichment {
    /// Term name.
    pub term: String,
    /// Ontology.
    pub category: GoCategory,
    /// Cluster genes annotated with the term (`n=` in Table 2).
    pub count: usize,
    /// Hypergeometric upper-tail p-value.
    pub p_value: f64,
}

impl std::fmt::Display for Enrichment {
    /// Table 2 cell format: `name (n=3, p=0.00346)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (n={}, p={:.3e})",
            self.term, self.count, self.p_value
        )
    }
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0` (g = 7, n = 9 series).
///
/// Accurate to ~1e-13 over the range used here; exact enough for p-values.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain: x > 0, got {x}");
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)` via `ln Γ`.
pub fn ln_choose(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Exact hypergeometric upper tail `P[K ≥ k]` when drawing `n` of `total`
/// items, `marked` of which are special.
pub fn hypergeometric_tail(total: usize, marked: usize, n: usize, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if (marked > total || n > total || k > n || k > marked) && k > n.min(marked) {
        return 0.0;
    }
    let denom = ln_choose(total, n);
    let mut p = 0.0f64;
    for i in k..=n.min(marked) {
        if n - i > total - marked {
            continue; // impossible configuration
        }
        let ln_term = ln_choose(marked, i) + ln_choose(total - marked, n - i) - denom;
        p += ln_term.exp();
    }
    p.min(1.0)
}

/// Parameters for [`simulate_catalog`].
#[derive(Debug, Clone)]
pub struct CatalogSpec {
    /// Genome size; must match the dataset's gene count.
    pub n_genes: usize,
    /// Background terms per category.
    pub background_terms_per_category: usize,
    /// Range of background-term sizes (fraction of the genome).
    pub background_frequency: (f64, f64),
    /// Marker terms planted per gene group and category.
    pub markers_per_group: usize,
    /// Cluster genes annotated by each marker term.
    pub marker_in_group: usize,
    /// Non-cluster genes annotated by each marker term.
    pub marker_outside_group: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CatalogSpec {
    fn default() -> Self {
        CatalogSpec {
            n_genes: 7679,
            background_terms_per_category: 60,
            background_frequency: (0.002, 0.1),
            markers_per_group: 2,
            marker_in_group: 3,
            marker_outside_group: 8,
            seed: 1998, // Spellman et al. publication year
        }
    }
}

/// Term-name pools per category, in the flavor of Table 2.
const PROCESS_NAMES: &[&str] = &[
    "ubiquitin cycle",
    "protein polyubiquitination",
    "carbohydrate biosynthesis",
    "G1/S transition of mitotic cell cycle",
    "mRNA polyadenylylation",
    "lipid transport",
    "physiological process",
    "organelle organization and biogenesis",
    "localization",
    "pantothenate biosynthesis",
    "pantothenate metabolism",
    "transport",
    "DNA repair",
    "chromatin remodeling",
    "glycolysis",
    "ribosome biogenesis",
    "autophagy",
    "cell wall organization",
    "protein folding",
    "sporulation",
];
const FUNCTION_NAMES: &[&str] = &[
    "protein phosphatase regulator activity",
    "phosphatase regulator activity",
    "oxidoreductase activity",
    "lipid transporter activity",
    "antioxidant activity",
    "MAP kinase activity",
    "deaminase activity",
    "hydrolase activity",
    "receptor signaling protein serine/threonine kinase activity",
    "ubiquitin conjugating enzyme activity",
    "ATPase activity",
    "helicase activity",
    "GTPase activity",
    "kinase activity",
    "ligase activity",
    "transferase activity",
    "isomerase activity",
    "peptidase activity",
    "transcription factor activity",
    "RNA binding",
];
const COMPONENT_NAMES: &[&str] = &[
    "cytoplasm",
    "microsome",
    "vesicular fraction",
    "microbody",
    "peroxisome",
    "membrane",
    "cell",
    "endoplasmic reticulum",
    "vacuolar membrane",
    "intracellular",
    "endoplasmic reticulum membrane",
    "nuclear envelope-endoplasmic reticulum network",
    "Golgi vesicle",
    "nucleus",
    "mitochondrion",
    "ribosome",
    "spindle pole body",
    "bud neck",
    "plasma membrane",
    "cell cortex",
];

fn names_for(cat: GoCategory) -> &'static [&'static str] {
    match cat {
        GoCategory::Process => PROCESS_NAMES,
        GoCategory::Function => FUNCTION_NAMES,
        GoCategory::Component => COMPONENT_NAMES,
    }
}

/// Builds a simulated catalog: background terms annotate random genes at
/// genome-typical frequencies; each gene group additionally receives
/// `markers_per_group` planted terms per category whose annotations
/// concentrate in the group.
pub fn simulate_catalog(spec: &CatalogSpec, groups: &[Vec<usize>]) -> GoCatalog {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut terms = Vec::new();
    for cat in GoCategory::ALL {
        let pool = names_for(cat);
        // background terms
        for i in 0..spec.background_terms_per_category {
            let frac = rng.gen_range(spec.background_frequency.0..=spec.background_frequency.1);
            let size = ((spec.n_genes as f64 * frac) as usize).max(2);
            let mut genes: Vec<usize> = (0..spec.n_genes).collect();
            genes.shuffle(&mut rng);
            genes.truncate(size);
            terms.push(GoTerm {
                name: format!("{} [bg{}]", pool[i % pool.len()], i),
                category: cat,
                genes,
            });
        }
        // marker terms per group
        for (gi, group) in groups.iter().enumerate() {
            for mi in 0..spec.markers_per_group {
                let mut in_group = group.clone();
                in_group.shuffle(&mut rng);
                in_group.truncate(spec.marker_in_group.min(group.len()));
                let group_set: HashSet<usize> = group.iter().copied().collect();
                let mut outside: Vec<usize> = (0..spec.n_genes)
                    .filter(|g| !group_set.contains(g))
                    .collect();
                outside.shuffle(&mut rng);
                outside.truncate(spec.marker_outside_group);
                let mut genes = in_group;
                genes.extend(outside);
                let name_idx =
                    (spec.background_terms_per_category + gi * spec.markers_per_group + mi)
                        % pool.len();
                terms.push(GoTerm {
                    name: format!("{} [C{gi}]", pool[name_idx]),
                    category: cat,
                    genes,
                });
            }
        }
    }
    GoCatalog {
        n_genes: spec.n_genes,
        terms,
    }
}

/// Computes the significant shared terms (p < `cutoff`) of a gene set, per
/// category, sorted by ascending p-value — one Table 2 row.
pub fn enrich(catalog: &GoCatalog, cluster_genes: &[usize], cutoff: f64) -> Vec<Enrichment> {
    let cluster: HashSet<usize> = cluster_genes.iter().copied().collect();
    let mut out: Vec<Enrichment> = catalog
        .terms
        .iter()
        .filter_map(|term| {
            let k = term.genes.iter().filter(|g| cluster.contains(g)).count();
            if k < 2 {
                return None; // a single shared gene is never reported
            }
            let p = hypergeometric_tail(catalog.n_genes, term.genes.len(), cluster.len(), k);
            (p < cutoff).then_some(Enrichment {
                term: term.name.clone(),
                category: term.category,
                count: k,
                p_value: p,
            })
        })
        .collect();
    out.sort_by(|a, b| a.p_value.total_cmp(&b.p_value));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma(n as f64 + 1.0);
            assert!(
                (got - f64::ln(f)).abs() < 1e-10,
                "ln Γ({}) = {got}, want ln {f}",
                n + 1
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-12);
    }

    #[test]
    fn ln_choose_small_values() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10, 5) - 252f64.ln()).abs() < 1e-10);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert!((ln_choose(7, 0)).abs() < 1e-12);
    }

    #[test]
    fn hypergeometric_exact_small_case() {
        // urn: 10 items, 4 marked, draw 3; P[K >= 1] = 1 - C(6,3)/C(10,3)
        let want = 1.0 - 20.0 / 120.0;
        let got = hypergeometric_tail(10, 4, 3, 1);
        assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        // P[K >= 3] = C(4,3)/C(10,3)
        let want3 = 4.0 / 120.0;
        assert!((hypergeometric_tail(10, 4, 3, 3) - want3).abs() < 1e-10);
    }

    #[test]
    fn hypergeometric_boundaries() {
        assert_eq!(hypergeometric_tail(10, 4, 3, 0), 1.0);
        assert_eq!(hypergeometric_tail(10, 4, 3, 4), 0.0, "k > draws");
        assert_eq!(hypergeometric_tail(10, 2, 5, 3), 0.0, "k > marked");
        // drawing everything: k = marked is certain
        assert!((hypergeometric_tail(8, 3, 8, 3) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn hypergeometric_matches_paper_scale() {
        // Table 2 magnitude check: 3 of 51 cluster genes sharing a term of
        // ~30 genes in a 7679-gene genome is ~1e-3-scale significant.
        let p = hypergeometric_tail(7679, 30, 51, 3);
        assert!(p > 1e-5 && p < 1e-2, "p = {p}");
    }

    #[test]
    fn catalog_marker_terms_enrich_their_group() {
        let groups: Vec<Vec<usize>> = vec![(0..51).collect(), (100..152).collect()];
        let spec = CatalogSpec {
            n_genes: 2000,
            ..Default::default()
        };
        let catalog = simulate_catalog(&spec, &groups);
        let report = enrich(&catalog, &groups[0], 0.01);
        assert!(
            report.iter().any(|e| e.term.ends_with("[C0]")),
            "group 0 markers significant: {report:?}"
        );
        assert!(
            !report.iter().any(|e| e.term.ends_with("[C1]")),
            "group 1 markers must not leak into group 0: {report:?}"
        );
        // sorted ascending by p
        for w in report.windows(2) {
            assert!(w[0].p_value <= w[1].p_value);
        }
    }

    #[test]
    fn enrich_requires_two_shared_genes() {
        let catalog = GoCatalog {
            n_genes: 100,
            terms: vec![GoTerm {
                name: "solo".into(),
                category: GoCategory::Process,
                genes: vec![0],
            }],
        };
        assert!(enrich(&catalog, &[0, 1, 2], 1.0).is_empty());
    }

    #[test]
    fn random_background_rarely_significant() {
        let groups: Vec<Vec<usize>> = vec![(0..50).collect()];
        let spec = CatalogSpec {
            n_genes: 5000,
            markers_per_group: 0,
            ..Default::default()
        };
        let catalog = simulate_catalog(&spec, &groups);
        // an arbitrary gene set should show few significant background hits
        let arbitrary: Vec<usize> = (1000..1050).collect();
        let report = enrich(&catalog, &arbitrary, 0.001);
        assert!(report.len() <= 2, "background too noisy: {report:?}");
    }

    #[test]
    fn display_matches_table2_format() {
        let e = Enrichment {
            term: "ubiquitin cycle".into(),
            category: GoCategory::Process,
            count: 3,
            p_value: 0.00346,
        };
        let s = e.to_string();
        assert!(s.contains("ubiquitin cycle"));
        assert!(s.contains("n=3"));
        assert!(s.contains("p=3.460e-3"));
        assert_eq!(GoCategory::Component.to_string(), "Cellular Component");
    }

    #[test]
    fn catalog_deterministic() {
        let groups: Vec<Vec<usize>> = vec![(0..20).collect()];
        let spec = CatalogSpec {
            n_genes: 500,
            ..Default::default()
        };
        let a = simulate_catalog(&spec, &groups);
        let b = simulate_catalog(&spec, &groups);
        assert_eq!(a.terms.len(), b.terms.len());
        for (x, y) in a.terms.iter().zip(&b.terms) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.genes, y.genes);
        }
    }
}
