//! Loader for Spellman-style raw attribute tables.
//!
//! The Stanford cell-cycle distribution ships **one table per time point**:
//! rows are spots/ORFs, columns are the raw measurement attributes (`CH1I`,
//! `CH1B`, `CH2I`, `RAT1`, …). The paper builds its `T × S × G` matrix from
//! 13 of those attributes over the 14 elutriation time points.
//!
//! [`assemble`] aligns a sequence of per-time tables into a
//! [`Matrix3`]: genes are matched **by name** (the intersection of all
//! tables, in first-table order — real exports drop flagged spots, so the
//! per-file gene sets differ), attributes likewise. The actual data files
//! are not redistributable; the format, however, is exercised by the tests
//! and usable for any data following it.

use std::collections::HashMap;
use std::io::BufRead;
use tricluster_matrix::io::{read_slice_tsv, IoError};
use tricluster_matrix::{Labels, Matrix2, Matrix3};

/// One parsed per-time attribute table.
#[derive(Debug, Clone)]
pub struct AttributeTable {
    /// Values: genes × attributes.
    pub values: Matrix2,
    /// Row (gene/ORF) names.
    pub genes: Vec<String>,
    /// Column (attribute) names.
    pub attributes: Vec<String>,
}

/// Reads one attribute table (same TSV shape as a time slice: header of
/// attribute names, one row per ORF).
pub fn read_attribute_table<R: BufRead>(reader: R) -> Result<AttributeTable, IoError> {
    let (values, genes, attributes) = read_slice_tsv(reader)?;
    Ok(AttributeTable {
        values,
        genes,
        attributes,
    })
}

/// Errors from [`assemble`].
#[derive(Debug)]
pub enum AssembleError {
    /// Fewer than one table given.
    NoTables,
    /// No gene name occurs in every table.
    NoCommonGenes,
    /// An explicitly requested attribute is missing from some table.
    MissingAttribute {
        /// The attribute name.
        attribute: String,
        /// Index of the table lacking it.
        table: usize,
    },
    /// No attribute is shared by all tables (when auto-selecting).
    NoCommonAttributes,
}

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssembleError::NoTables => write!(f, "no attribute tables given"),
            AssembleError::NoCommonGenes => {
                write!(f, "no gene occurs in every time point's table")
            }
            AssembleError::MissingAttribute { attribute, table } => {
                write!(f, "attribute {attribute:?} missing from table {table}")
            }
            AssembleError::NoCommonAttributes => {
                write!(f, "no attribute is shared by all tables")
            }
        }
    }
}

impl std::error::Error for AssembleError {}

/// Assembles per-time attribute tables into a 3D matrix.
///
/// * `attributes = Some(names)` selects exactly those columns (the paper
///   used 13 of them); `None` uses every attribute common to all tables,
///   in first-table order.
/// * Genes are the intersection of all tables' gene names, in first-table
///   order. Cells are looked up by name, so row order may differ between
///   files.
/// * `time_names` labels the third axis (defaults to `t0…` when shorter
///   than the table list).
pub fn assemble(
    tables: &[AttributeTable],
    attributes: Option<&[&str]>,
    time_names: &[String],
) -> Result<(Matrix3, Labels), AssembleError> {
    if tables.is_empty() {
        return Err(AssembleError::NoTables);
    }
    // attribute selection
    let selected: Vec<String> = match attributes {
        Some(names) => {
            for (ti, table) in tables.iter().enumerate() {
                for name in names {
                    if !table.attributes.iter().any(|a| a == name) {
                        return Err(AssembleError::MissingAttribute {
                            attribute: (*name).to_string(),
                            table: ti,
                        });
                    }
                }
            }
            names.iter().map(|s| s.to_string()).collect()
        }
        None => {
            let common: Vec<String> = tables[0]
                .attributes
                .iter()
                .filter(|a| tables.iter().all(|t| t.attributes.contains(a)))
                .cloned()
                .collect();
            if common.is_empty() {
                return Err(AssembleError::NoCommonAttributes);
            }
            common
        }
    };

    // gene intersection in first-table order
    let later_sets: Vec<HashMap<&str, usize>> = tables[1..]
        .iter()
        .map(|t| {
            t.genes
                .iter()
                .enumerate()
                .map(|(i, g)| (g.as_str(), i))
                .collect()
        })
        .collect();
    let mut genes: Vec<String> = Vec::new();
    let mut row_maps: Vec<Vec<usize>> = vec![Vec::new(); tables.len()];
    for (row0, g) in tables[0].genes.iter().enumerate() {
        let mut rows = Vec::with_capacity(tables.len());
        rows.push(row0);
        let mut everywhere = true;
        for set in &later_sets {
            match set.get(g.as_str()) {
                Some(&r) => rows.push(r),
                None => {
                    everywhere = false;
                    break;
                }
            }
        }
        if everywhere {
            genes.push(g.clone());
            for (ti, r) in rows.into_iter().enumerate() {
                row_maps[ti].push(r);
            }
        }
    }
    if genes.is_empty() {
        return Err(AssembleError::NoCommonGenes);
    }

    // per-table attribute column indices
    let col_maps: Vec<Vec<usize>> = tables
        .iter()
        .map(|t| {
            selected
                .iter()
                .map(|name| {
                    t.attributes
                        .iter()
                        .position(|a| a == name)
                        .expect("attribute checked above")
                })
                .collect()
        })
        .collect();

    let mut m = Matrix3::zeros(genes.len(), selected.len(), tables.len());
    for (ti, table) in tables.iter().enumerate() {
        for (gi, &row) in row_maps[ti].iter().enumerate() {
            for (si, &col) in col_maps[ti].iter().enumerate() {
                m.set(gi, si, ti, table.values.get(row, col));
            }
        }
    }
    let times: Vec<String> = (0..tables.len())
        .map(|t| {
            time_names
                .get(t)
                .cloned()
                .unwrap_or_else(|| format!("t{t}"))
        })
        .collect();
    let labels = Labels::new(genes, selected, times);
    Ok((m, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(text: &str) -> AttributeTable {
        read_attribute_table(text.as_bytes()).unwrap()
    }

    const T0: &str = "orf\tCH1I\tCH2I\tRAT1\n\
                      YAL001C\t100\t50\t2.0\n\
                      YAL002W\t200\t100\t2.0\n\
                      YAL003W\t300\t100\t3.0\n";
    const T1: &str = "orf\tCH1I\tCH2I\tRAT1\n\
                      YAL002W\t220\t110\t2.0\n\
                      YAL001C\t110\t55\t2.0\n\
                      YAL003W\t330\t110\t3.0\n";

    #[test]
    fn read_table_parses_names_and_values() {
        let t = table(T0);
        assert_eq!(t.genes, vec!["YAL001C", "YAL002W", "YAL003W"]);
        assert_eq!(t.attributes, vec!["CH1I", "CH2I", "RAT1"]);
        assert_eq!(t.values.get(1, 0), 200.0);
    }

    #[test]
    fn assemble_aligns_genes_by_name() {
        // T1 lists YAL002W first; alignment must be by name, not position
        let (m, labels) = assemble(&[table(T0), table(T1)], None, &[]).unwrap();
        assert_eq!(m.dims(), (3, 3, 2));
        assert_eq!(labels.genes(), &["YAL001C", "YAL002W", "YAL003W"]);
        assert_eq!(m.get(0, 0, 0), 100.0, "YAL001C CH1I at t0");
        assert_eq!(m.get(0, 0, 1), 110.0, "YAL001C CH1I at t1 (row-reordered)");
        assert_eq!(m.get(1, 1, 1), 110.0, "YAL002W CH2I at t1");
        assert_eq!(labels.times(), &["t0", "t1"]);
    }

    #[test]
    fn assemble_intersects_missing_genes() {
        let t1_missing = "orf\tCH1I\tCH2I\tRAT1\nYAL001C\t1\t2\t3\n";
        let (m, labels) = assemble(&[table(T0), table(t1_missing)], None, &[]).unwrap();
        assert_eq!(m.n_genes(), 1);
        assert_eq!(labels.genes(), &["YAL001C"]);
    }

    #[test]
    fn assemble_selects_requested_attributes() {
        let (m, labels) = assemble(&[table(T0), table(T1)], Some(&["RAT1", "CH1I"]), &[]).unwrap();
        assert_eq!(m.n_samples(), 2);
        assert_eq!(labels.samples(), &["RAT1", "CH1I"]);
        assert_eq!(m.get(0, 0, 0), 2.0, "RAT1 first");
        assert_eq!(m.get(0, 1, 0), 100.0);
    }

    #[test]
    fn assemble_reports_missing_attribute() {
        let e = assemble(&[table(T0)], Some(&["NOPE"]), &[]).unwrap_err();
        assert!(matches!(e, AssembleError::MissingAttribute { .. }));
        assert!(e.to_string().contains("NOPE"));
    }

    #[test]
    fn assemble_reports_no_common_genes() {
        let other = "orf\tCH1I\tCH2I\tRAT1\nYBR999W\t1\t2\t3\n";
        let e = assemble(&[table(T0), table(other)], None, &[]).unwrap_err();
        assert!(matches!(e, AssembleError::NoCommonGenes));
    }

    #[test]
    fn assemble_reports_no_tables_and_no_common_attributes() {
        assert!(matches!(
            assemble(&[], None, &[]),
            Err(AssembleError::NoTables)
        ));
        let different = "orf\tOTHER\nYAL001C\t1\n";
        let e = assemble(&[table(T0), table(different)], None, &[]).unwrap_err();
        assert!(matches!(e, AssembleError::NoCommonAttributes));
    }

    #[test]
    fn time_names_applied_with_default_fill() {
        let (_, labels) = assemble(&[table(T0), table(T1)], None, &["0min".to_string()]).unwrap();
        assert_eq!(labels.times(), &["0min", "t1"]);
    }

    #[test]
    fn assembled_matrix_is_minable() {
        use tricluster_core::{mine, Params};
        // the three ORFs scale between CH1I and CH2I with per-gene ratios
        // 2.0, 2.0, 3.0 — genes 0 and 1 form a ratio-coherent pair across
        // both times
        let (m, _) = assemble(&[table(T0), table(T1)], None, &[]).unwrap();
        let params = Params::builder()
            .epsilon(0.01)
            .epsilon_time(0.2)
            .min_size(2, 2, 2)
            .build()
            .unwrap();
        let result = mine(&m, &params).unwrap();
        assert!(
            result
                .triclusters
                .iter()
                .any(|c| c.genes.to_vec() == vec![0, 1]),
            "{:?}",
            result.triclusters
        );
    }
}
