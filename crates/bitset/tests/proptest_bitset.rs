//! Property-based tests checking `BitSet` against a `BTreeSet<usize>` model.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tricluster_bitset::BitSet;

const UNIVERSE: usize = 257; // deliberately not a multiple of 64

fn model_pair() -> impl Strategy<Value = (BTreeSet<usize>, BTreeSet<usize>)> {
    let set = proptest::collection::btree_set(0..UNIVERSE, 0..UNIVERSE);
    (set.clone(), set)
}

fn to_bitset(m: &BTreeSet<usize>) -> BitSet {
    BitSet::from_indices(UNIVERSE, m.iter().copied())
}

proptest! {
    #[test]
    fn roundtrip_via_iter(m in proptest::collection::btree_set(0..UNIVERSE, 0..UNIVERSE)) {
        let s = to_bitset(&m);
        let back: BTreeSet<usize> = s.iter().collect();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn count_matches_model(m in proptest::collection::btree_set(0..UNIVERSE, 0..UNIVERSE)) {
        let s = to_bitset(&m);
        prop_assert_eq!(s.count(), m.len());
        prop_assert_eq!(s.is_empty(), m.is_empty());
    }

    #[test]
    fn intersection_matches_model((a, b) in model_pair()) {
        let got: BTreeSet<usize> = to_bitset(&a).intersection(&to_bitset(&b)).iter().collect();
        let want: BTreeSet<usize> = a.intersection(&b).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn union_matches_model((a, b) in model_pair()) {
        let got: BTreeSet<usize> = to_bitset(&a).union(&to_bitset(&b)).iter().collect();
        let want: BTreeSet<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn difference_matches_model((a, b) in model_pair()) {
        let got: BTreeSet<usize> = to_bitset(&a).difference(&to_bitset(&b)).iter().collect();
        let want: BTreeSet<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn symmetric_difference_matches_model((a, b) in model_pair()) {
        let mut s = to_bitset(&a);
        s.symmetric_difference_with(&to_bitset(&b));
        let got: BTreeSet<usize> = s.iter().collect();
        let want: BTreeSet<usize> = a.symmetric_difference(&b).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn intersection_count_agrees((a, b) in model_pair()) {
        let sa = to_bitset(&a);
        let sb = to_bitset(&b);
        let n = a.intersection(&b).count();
        prop_assert_eq!(sa.intersection_count(&sb), n);
        // at_least is consistent at, below, and above the true count
        prop_assert!(sa.intersection_count_at_least(&sb, n));
        if n > 0 {
            prop_assert!(sa.intersection_count_at_least(&sb, n - 1));
        }
        prop_assert!(!sa.intersection_count_at_least(&sb, n + 1));
    }

    #[test]
    fn intersect_into_matches_model((a, b) in model_pair(), junk in proptest::collection::btree_set(0..UNIVERSE, 0..UNIVERSE)) {
        // Scratch starts with arbitrary junk; intersect_into must fully
        // replace it and report the exact cardinality.
        let mut scratch = to_bitset(&junk);
        let n = scratch.intersect_into(&to_bitset(&a), &to_bitset(&b));
        let want: BTreeSet<usize> = a.intersection(&b).copied().collect();
        let got: BTreeSet<usize> = scratch.iter().collect();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(n, want.len());
        prop_assert_eq!(scratch.capacity(), UNIVERSE);
        prop_assert_eq!(scratch, to_bitset(&a).intersection(&to_bitset(&b)));
    }

    #[test]
    fn subset_matches_model((a, b) in model_pair()) {
        prop_assert_eq!(to_bitset(&a).is_subset(&to_bitset(&b)), a.is_subset(&b));
        prop_assert_eq!(to_bitset(&a).is_disjoint(&to_bitset(&b)), a.is_disjoint(&b));
    }

    #[test]
    fn min_max_match_model(m in proptest::collection::btree_set(0..UNIVERSE, 0..UNIVERSE)) {
        let s = to_bitset(&m);
        prop_assert_eq!(s.min(), m.iter().next().copied());
        prop_assert_eq!(s.max(), m.iter().next_back().copied());
    }

    #[test]
    fn complement_is_involution(m in proptest::collection::btree_set(0..UNIVERSE, 0..UNIVERSE)) {
        let s = to_bitset(&m);
        let mut c = s.clone();
        c.complement_in_place();
        prop_assert_eq!(c.count(), UNIVERSE - s.count());
        prop_assert!(c.is_disjoint(&s));
        c.complement_in_place();
        prop_assert_eq!(c, s);
    }

    #[test]
    fn demorgan((a, b) in model_pair()) {
        // !(A ∪ B) == !A ∩ !B
        let sa = to_bitset(&a);
        let sb = to_bitset(&b);
        let mut lhs = sa.union(&sb);
        lhs.complement_in_place();
        let mut na = sa.clone();
        na.complement_in_place();
        let mut nb = sb.clone();
        nb.complement_in_place();
        prop_assert_eq!(lhs, na.intersection(&nb));
    }

    #[test]
    fn insert_remove_roundtrip(m in proptest::collection::btree_set(0..UNIVERSE, 1..UNIVERSE), idx in 0..UNIVERSE) {
        let mut s = to_bitset(&m);
        let present = m.contains(&idx);
        prop_assert_eq!(s.insert(idx), !present);
        prop_assert!(s.contains(idx));
        prop_assert!(s.remove(idx));
        prop_assert!(!s.contains(idx));
    }
}
