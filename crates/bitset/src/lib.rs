//! Fixed-capacity bitset with fast set algebra.
//!
//! Gene-sets are the hot data structure in TriCluster mining: every candidate
//! extension intersects the gene-sets attached to range-multigraph edges with
//! the current candidate's gene-set. This crate provides [`BitSet`], a
//! `u64`-block bitset tuned for that workload:
//!
//! * in-place and allocating `and` / `or` / `subtract` / `xor`,
//! * popcount-based cardinality and *bounded* intersection counting
//!   (`intersection_count_at_least` short-circuits as soon as the `mx`
//!   threshold is reached, the common case in the miner),
//! * subset / superset / disjointness tests,
//! * iteration over set bits in ascending order.
//!
//! The universe size is fixed at construction; all binary operations require
//! both operands to share a universe (checked with `debug_assert!` in release
//! hot paths and a hard assert in the allocating constructors).
//!
//! # Example
//!
//! ```
//! use tricluster_bitset::BitSet;
//!
//! let mut a = BitSet::from_indices(10, [1, 3, 4, 8]);
//! let b = BitSet::from_indices(10, [3, 4, 9]);
//! a.intersect_with(&b);
//! assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 4]);
//! assert!(a.is_subset(&b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod iter;
mod pool;

pub use iter::Ones;
pub use pool::BitSetPool;

const BITS: usize = 64;

/// Block width of the unrolled set-algebra kernels. Four independent `u64`
/// lanes per iteration give the autovectorizer a fixed-shape inner loop
/// (two 128-bit or one 256-bit op per AND/OR) while keeping the early-exit
/// checks of the bounded kernels at chunk granularity.
const LANES: usize = 4;

/// A fixed-capacity set of `usize` indices backed by `u64` blocks.
///
/// See the [crate-level documentation](crate) for the design rationale.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    blocks: Vec<u64>,
    /// Number of addressable bits (the universe size), not the population.
    nbits: usize,
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[inline]
fn block_count(nbits: usize) -> usize {
    nbits.div_ceil(BITS)
}

impl BitSet {
    /// Creates an empty set over a universe of `nbits` indices `0..nbits`.
    pub fn new(nbits: usize) -> Self {
        BitSet {
            blocks: vec![0; block_count(nbits)],
            nbits,
        }
    }

    /// Creates a set containing every index in `0..nbits`.
    pub fn full(nbits: usize) -> Self {
        let mut s = BitSet::new(nbits);
        for b in &mut s.blocks {
            *b = !0;
        }
        s.clear_excess();
        s
    }

    /// Creates a set over `0..nbits` containing the given indices.
    ///
    /// # Panics
    /// Panics if any index is `>= nbits`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(nbits: usize, indices: I) -> Self {
        let mut s = BitSet::new(nbits);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Creates a set over `0..nbits` from indices that are all known to be
    /// in range — the contract of a range finder handing over one contiguous
    /// window of its sorted ratio array. Skips the per-bit bounds assertion
    /// (and its formatting machinery) that [`BitSet::insert`] pays, setting
    /// each bit with two shifts and an OR.
    ///
    /// Out-of-range indices are a caller bug: debug builds panic, release
    /// builds panic on the block access (no silent wraparound either way).
    pub fn from_sorted_range_indices<I: IntoIterator<Item = usize>>(
        nbits: usize,
        indices: I,
    ) -> Self {
        let mut s = BitSet::new(nbits);
        s.set_bits_unchecked(indices);
        s
    }

    /// Sets every index yielded by `indices`; all must be `< capacity`
    /// (debug-asserted; release builds still panic on the block bound).
    #[inline]
    pub(crate) fn set_bits_unchecked<I: IntoIterator<Item = usize>>(&mut self, indices: I) {
        for i in indices {
            debug_assert!(
                i < self.nbits,
                "index {i} out of bounds for BitSet of capacity {}",
                self.nbits
            );
            self.blocks[i / BITS] |= 1u64 << (i % BITS);
        }
    }

    /// Crate-internal: assembles a set directly from block storage. The
    /// blocks must already be exactly `block_count(nbits)` long and hold no
    /// bits above `nbits` — [`BitSetPool::alloc`] guarantees both by
    /// clearing and zero-resizing the buffer it reuses.
    #[inline]
    pub(crate) fn from_raw_parts(blocks: Vec<u64>, nbits: usize) -> Self {
        debug_assert_eq!(blocks.len(), block_count(nbits));
        debug_assert!(blocks.iter().all(|&b| b == 0), "pool buffers start empty");
        BitSet { blocks, nbits }
    }

    /// Crate-internal: surrenders the block storage for pooling.
    #[inline]
    pub(crate) fn into_raw_blocks(self) -> Vec<u64> {
        self.blocks
    }

    /// Zeroes the bits above `nbits` in the last block so that popcounts and
    /// equality remain exact after a whole-block operation such as `full` or
    /// `complement`.
    fn clear_excess(&mut self) {
        let used = self.nbits % BITS;
        if used != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }

    /// The universe size (number of addressable indices), **not** the number
    /// of elements; for that see [`BitSet::count`].
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Inserts `index` into the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `index >= capacity`.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(
            index < self.nbits,
            "index {index} out of bounds for BitSet of capacity {}",
            self.nbits
        );
        let block = &mut self.blocks[index / BITS];
        let mask = 1u64 << (index % BITS);
        let was_absent = *block & mask == 0;
        *block |= mask;
        was_absent
    }

    /// Removes `index` from the set. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        if index >= self.nbits {
            return false;
        }
        let block = &mut self.blocks[index / BITS];
        let mask = 1u64 << (index % BITS);
        let was_present = *block & mask != 0;
        *block &= !mask;
        was_present
    }

    /// Tests whether `index` is in the set. Out-of-universe indices are never
    /// members.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.nbits {
            return false;
        }
        self.blocks[index / BITS] & (1u64 << (index % BITS)) != 0
    }

    /// Number of elements in the set (population count).
    #[inline]
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `true` iff the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes all elements, keeping the universe size.
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = 0;
        }
    }

    /// Flips the membership of every index in the universe.
    pub fn complement_in_place(&mut self) {
        for b in &mut self.blocks {
            *b = !*b;
        }
        self.clear_excess();
    }

    #[inline]
    fn check_same_universe(&self, other: &BitSet) {
        debug_assert_eq!(
            self.nbits, other.nbits,
            "BitSet universe mismatch: {} vs {}",
            self.nbits, other.nbits
        );
    }

    /// In-place intersection: `self ∩= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.check_same_universe(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= *b;
        }
    }

    /// In-place union: `self ∪= other`.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        self.check_same_universe(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= *b;
        }
    }

    /// In-place difference: `self −= other`.
    #[inline]
    pub fn subtract_with(&mut self, other: &BitSet) {
        self.check_same_universe(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !*b;
        }
    }

    /// In-place symmetric difference: `self ⊕= other`.
    #[inline]
    pub fn symmetric_difference_with(&mut self, other: &BitSet) {
        self.check_same_universe(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a ^= *b;
        }
    }

    /// Overwrites `self` with `a ∩ b` and returns the cardinality of the
    /// result, computed in the same pass over the blocks.
    ///
    /// `self` adopts `a`'s universe; its previous contents (and universe) are
    /// discarded, but its block allocation is reused when large enough. This
    /// is the miner's scratch-buffer intersection: a DFS that keeps one
    /// `BitSet` per depth level can intersect into it repeatedly without
    /// allocating per extension.
    #[inline]
    pub fn intersect_into(&mut self, a: &BitSet, b: &BitSet) -> usize {
        a.check_same_universe(b);
        self.nbits = a.nbits;
        self.blocks.clear();
        self.blocks.resize(a.blocks.len(), 0);
        let mut acc = [0usize; LANES];
        let mut dst = self.blocks.chunks_exact_mut(LANES);
        let mut sa = a.blocks.chunks_exact(LANES);
        let mut sb = b.blocks.chunks_exact(LANES);
        for ((d, x), y) in (&mut dst).zip(&mut sa).zip(&mut sb) {
            for l in 0..LANES {
                let v = x[l] & y[l];
                acc[l] += v.count_ones() as usize;
                d[l] = v;
            }
        }
        let tail = dst
            .into_remainder()
            .iter_mut()
            .zip(sa.remainder())
            .zip(sb.remainder());
        for ((d, x), y) in tail {
            let v = x & y;
            acc[0] += v.count_ones() as usize;
            *d = v;
        }
        acc.iter().sum()
    }

    /// Allocating intersection.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Allocating union.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Allocating difference (`self − other`).
    pub fn difference(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.subtract_with(other);
        out
    }

    /// `|self ∩ other|` without allocating.
    #[inline]
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.check_same_universe(other);
        let mut acc = [0usize; LANES];
        let mut ca = self.blocks.chunks_exact(LANES);
        let mut cb = other.blocks.chunks_exact(LANES);
        for (x, y) in (&mut ca).zip(&mut cb) {
            for l in 0..LANES {
                acc[l] += (x[l] & y[l]).count_ones() as usize;
            }
        }
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            acc[0] += (x & y).count_ones() as usize;
        }
        acc.iter().sum()
    }

    /// Returns `true` as soon as `|self ∩ other| >= threshold`, scanning as
    /// few blocks as possible. This is the miner's admission test
    /// (`|G(R) ∩ C.X| ≥ mx`), which usually succeeds early or fails with a
    /// near-empty intersection; either way most blocks are skipped. The
    /// early exit runs at [`LANES`]-chunk granularity: cheap enough to keep
    /// the loop body vectorizable, fine enough that a hit in the first
    /// blocks still skips the rest of the scan.
    #[inline]
    pub fn intersection_count_at_least(&self, other: &BitSet, threshold: usize) -> bool {
        self.check_same_universe(other);
        if threshold == 0 {
            return true;
        }
        let mut seen = 0usize;
        let mut ca = self.blocks.chunks_exact(LANES);
        let mut cb = other.blocks.chunks_exact(LANES);
        for (x, y) in (&mut ca).zip(&mut cb) {
            let mut chunk = 0u32;
            for l in 0..LANES {
                chunk += (x[l] & y[l]).count_ones();
            }
            seen += chunk as usize;
            if seen >= threshold {
                return true;
            }
        }
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            seen += (x & y).count_ones() as usize;
            if seen >= threshold {
                return true;
            }
        }
        false
    }

    /// Like [`BitSet::intersection_count_at_least`], but with the caller
    /// providing `self`'s population count. When `self` is sparse relative
    /// to the universe (the common case for candidate gene-sets deep in the
    /// miner's DFS), membership-testing `self`'s elements in `other` beats
    /// scanning every block — with early success at `threshold` and early
    /// failure once the remaining elements cannot reach it.
    #[inline]
    pub fn intersection_count_at_least_hinted(
        &self,
        other: &BitSet,
        threshold: usize,
        self_count: usize,
    ) -> bool {
        // Check the universes before any early return — previously a
        // zero-threshold or too-small-hint call skipped the check entirely
        // and a mismatched `other` fell through to the sparse path, where
        // `contains` silently treats out-of-universe indices as absent.
        self.check_same_universe(other);
        debug_assert_eq!(self_count, self.count(), "stale population hint");
        if threshold == 0 {
            return true;
        }
        if self_count < threshold {
            return false;
        }
        // sparse path pays off when elements < blocks scanned
        if self_count <= self.blocks.len() {
            let mut seen = 0usize;
            let mut remaining = self_count;
            for i in self.iter() {
                if other.contains(i) {
                    seen += 1;
                    if seen >= threshold {
                        return true;
                    }
                }
                remaining -= 1;
                if seen + remaining < threshold {
                    return false;
                }
            }
            return false;
        }
        self.intersection_count_at_least(other, threshold)
    }

    /// `true` iff every element of `self` is in `other`.
    #[inline]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.check_same_universe(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` iff every element of `other` is in `self`.
    #[inline]
    pub fn is_superset(&self, other: &BitSet) -> bool {
        other.is_subset(self)
    }

    /// `true` iff the sets share no element.
    #[inline]
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.check_same_universe(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// Smallest element, or `None` if empty.
    pub fn min(&self) -> Option<usize> {
        for (i, &b) in self.blocks.iter().enumerate() {
            if b != 0 {
                return Some(i * BITS + b.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Largest element, or `None` if empty.
    pub fn max(&self) -> Option<usize> {
        for (i, &b) in self.blocks.iter().enumerate().rev() {
            if b != 0 {
                return Some(i * BITS + (BITS - 1 - b.leading_zeros() as usize));
            }
        }
        None
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> Ones<'_> {
        Ones::new(&self.blocks)
    }

    /// Collects the elements into a `Vec<usize>` in ascending order.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Access to the raw blocks (for hashing / tests).
    pub fn as_blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Retains only the elements for which `f` returns `true`.
    pub fn retain(&mut self, mut f: impl FnMut(usize) -> bool) {
        let doomed: Vec<usize> = self.iter().filter(|&i| !f(i)).collect();
        for i in doomed {
            self.remove(i);
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Ones<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose universe is `max + 1` of the yielded indices
    /// (or 0 when the iterator is empty). Prefer [`BitSet::from_indices`]
    /// when the universe is known.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let nbits = items.iter().copied().max().map_or(0, |m| m + 1);
        BitSet::from_indices(nbits, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.capacity(), 100);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert_eq!(s.count(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(1000), "out of universe is never a member");
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.remove(5000));
        assert_eq!(s.count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn full_and_complement() {
        let mut s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        s.complement_in_place();
        assert!(s.is_empty());
        s.complement_in_place();
        assert_eq!(s.count(), 70);
    }

    #[test]
    fn full_zero_capacity() {
        let s = BitSet::full(0);
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 0);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(200, [1, 2, 3, 100, 150]);
        let b = BitSet::from_indices(200, [2, 3, 4, 150, 199]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2, 3, 150]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4, 100, 150, 199]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 100]);
        let mut x = a.clone();
        x.symmetric_difference_with(&b);
        assert_eq!(x.to_vec(), vec![1, 4, 100, 199]);
    }

    #[test]
    fn intersection_count_matches_intersection() {
        let a = BitSet::from_indices(300, (0..300).step_by(3));
        let b = BitSet::from_indices(300, (0..300).step_by(5));
        assert_eq!(a.intersection_count(&b), a.intersection(&b).count());
    }

    #[test]
    fn intersection_count_at_least_threshold_edges() {
        let a = BitSet::from_indices(100, [1, 2, 3]);
        let b = BitSet::from_indices(100, [2, 3, 4]);
        assert!(a.intersection_count_at_least(&b, 0));
        assert!(a.intersection_count_at_least(&b, 1));
        assert!(a.intersection_count_at_least(&b, 2));
        assert!(!a.intersection_count_at_least(&b, 3));
    }

    #[test]
    fn intersect_into_matches_intersection_and_reuses_buffer() {
        let a = BitSet::from_indices(300, (0..300).step_by(3));
        let b = BitSet::from_indices(300, (0..300).step_by(5));
        let mut scratch = BitSet::new(0);
        let n = scratch.intersect_into(&a, &b);
        assert_eq!(scratch, a.intersection(&b));
        assert_eq!(n, scratch.count());
        assert_eq!(scratch.capacity(), 300);
        // Reuse with a different (smaller) universe: contents fully replaced.
        let c = BitSet::from_indices(64, [0, 1, 2]);
        let d = BitSet::from_indices(64, [2, 3]);
        let n2 = scratch.intersect_into(&c, &d);
        assert_eq!(n2, 1);
        assert_eq!(scratch.to_vec(), vec![2]);
        assert_eq!(scratch.capacity(), 64);
    }

    #[test]
    fn intersect_into_empty_universe() {
        let a = BitSet::new(0);
        let b = BitSet::new(0);
        let mut scratch = BitSet::from_indices(10, [3]);
        assert_eq!(scratch.intersect_into(&a, &b), 0);
        assert!(scratch.is_empty());
        assert_eq!(scratch.capacity(), 0);
    }

    #[test]
    fn subset_superset_disjoint() {
        let a = BitSet::from_indices(80, [10, 20]);
        let b = BitSet::from_indices(80, [10, 20, 30]);
        let c = BitSet::from_indices(80, [40]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(b.is_superset(&a));
        assert!(a.is_subset(&a), "subset is reflexive");
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn min_max() {
        let s = BitSet::from_indices(500, [77, 200, 499]);
        assert_eq!(s.min(), Some(77));
        assert_eq!(s.max(), Some(499));
        assert_eq!(BitSet::new(10).min(), None);
        assert_eq!(BitSet::new(10).max(), None);
    }

    #[test]
    fn iter_ascending_across_blocks() {
        let v = vec![0, 1, 63, 64, 65, 127, 128, 191];
        let s = BitSet::from_indices(192, v.clone());
        assert_eq!(s.to_vec(), v);
    }

    #[test]
    fn retain_keeps_matching() {
        let mut s = BitSet::from_indices(50, 0..50);
        s.retain(|i| i % 7 == 0);
        assert_eq!(s.to_vec(), vec![0, 7, 14, 21, 28, 35, 42, 49]);
    }

    #[test]
    fn from_iterator_infers_universe() {
        let s: BitSet = vec![3usize, 9, 4].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.to_vec(), vec![3, 4, 9]);
        let empty: BitSet = std::iter::empty().collect();
        assert_eq!(empty.capacity(), 0);
    }

    #[test]
    fn debug_format_lists_elements() {
        let s = BitSet::from_indices(10, [1, 5]);
        assert_eq!(format!("{s:?}"), "{1, 5}");
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::from_indices(66, [0, 65]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 66);
    }

    /// Deterministic scatter of indices for the capacity-sweep tests: a
    /// multiplicative hash keeps bits in every block, including a partially
    /// used trailing block.
    fn scatter(nbits: usize, salt: usize) -> Vec<usize> {
        (0..nbits)
            .filter(|i| (i.wrapping_mul(2654435761) ^ salt).is_multiple_of(3))
            .collect()
    }

    /// Capacities chosen to exercise every shape the chunked kernels see:
    /// zero blocks, a single partial block, exactly one chunk (4×64), a
    /// chunk plus partial remainder blocks, and multi-chunk with a
    /// non-multiple-of-64 trailing block.
    const CAPS: [usize; 10] = [0, 1, 63, 64, 65, 255, 256, 257, 300, 777];

    #[test]
    fn chunked_intersection_count_matches_naive_all_capacities() {
        for nbits in CAPS {
            let a = BitSet::from_indices(nbits, scatter(nbits, 0));
            let b = BitSet::from_indices(nbits, scatter(nbits, 1));
            let naive = a.iter().filter(|&i| b.contains(i)).count();
            assert_eq!(a.intersection_count(&b), naive, "nbits={nbits}");
            assert_eq!(b.intersection_count(&a), naive, "nbits={nbits}");
        }
    }

    #[test]
    fn chunked_intersect_into_matches_naive_all_capacities() {
        let mut scratch = BitSet::new(0);
        for nbits in CAPS {
            let a = BitSet::from_indices(nbits, scatter(nbits, 2));
            let b = BitSet::from_indices(nbits, scatter(nbits, 3));
            let n = scratch.intersect_into(&a, &b);
            assert_eq!(scratch, a.intersection(&b), "nbits={nbits}");
            assert_eq!(n, scratch.count(), "nbits={nbits}");
        }
    }

    #[test]
    fn chunked_count_at_least_every_threshold_all_capacities() {
        for nbits in CAPS {
            let a = BitSet::from_indices(nbits, scatter(nbits, 4));
            let b = BitSet::from_indices(nbits, scatter(nbits, 5));
            let exact = a.intersection_count(&b);
            for t in [0, 1, exact.saturating_sub(1), exact, exact + 1, exact + 10] {
                assert_eq!(
                    a.intersection_count_at_least(&b, t),
                    exact >= t,
                    "nbits={nbits} t={t} exact={exact}"
                );
            }
        }
    }

    #[test]
    fn hinted_matches_unhinted_all_capacities_and_thresholds() {
        for nbits in CAPS {
            // Sparse self (forces the membership-test path) and dense self
            // (forces the block-scan path), each against a mid-density other.
            let sparse: Vec<usize> = scatter(nbits, 6).into_iter().step_by(40).collect();
            let dense = scatter(nbits, 7);
            let other = BitSet::from_indices(nbits, scatter(nbits, 8));
            for elems in [sparse, dense] {
                let s = BitSet::from_indices(nbits, elems);
                let count = s.count();
                let exact = s.intersection_count(&other);
                for t in [0, 1, exact, exact + 1, count, count + 1] {
                    assert_eq!(
                        s.intersection_count_at_least_hinted(&other, t, count),
                        exact >= t,
                        "nbits={nbits} t={t} exact={exact} count={count}"
                    );
                }
            }
        }
    }

    #[test]
    fn hinted_zero_threshold_is_true_even_for_empty_sets() {
        let a = BitSet::new(100);
        let b = BitSet::new(100);
        assert!(a.intersection_count_at_least_hinted(&b, 0, 0));
        assert!(!a.intersection_count_at_least_hinted(&b, 1, 0));
    }

    #[test]
    fn from_sorted_range_indices_matches_from_indices() {
        for nbits in [1usize, 64, 65, 300] {
            let idx: Vec<usize> = (0..nbits).step_by(3).collect();
            assert_eq!(
                BitSet::from_sorted_range_indices(nbits, idx.iter().copied()),
                BitSet::from_indices(nbits, idx),
                "nbits={nbits}"
            );
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn from_sorted_range_indices_debug_checks_bounds() {
        BitSet::from_sorted_range_indices(10, [10usize]);
    }

    #[test]
    fn eq_and_hash_consistent() {
        use std::collections::HashSet;
        let a = BitSet::from_indices(100, [5, 6]);
        let b = BitSet::from_indices(100, [5, 6]);
        let c = BitSet::from_indices(100, [5, 7]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }
}
