//! A free-list of block buffers backing short-lived gene-sets.
//!
//! The range-multigraph build materializes one [`BitSet`] per candidate
//! range, and most of those sets die within the same pair (deduped away or
//! absorbed into the graph and dropped at end of slice). Allocating and
//! freeing each through the global allocator dominates the build's
//! allocator traffic. [`BitSetPool`] keeps the retired `Vec<u64>` block
//! storage on a per-worker free list so the next `alloc` is a pop + zero
//! fill instead of a malloc.
//!
//! The pool is *not* an unsafe bump arena: pooled buffers are ordinary
//! `Vec<u64>`s, so a `TrackingAlloc`-style global allocator still sees
//! every byte the pool retains — `memory.phase_bytes` attribution stays
//! honest, it just stops seeing a free/alloc round-trip per gene-set.
//!
//! Recycling is cooperative: a `BitSet` that is never handed back simply
//! drops through the global allocator as usual, so the pool is safe to use
//! for sets whose ownership escapes (e.g. graph edges that outlive the
//! pair that built them).

use crate::{block_count, BitSet};

/// A free-list of `u64` block buffers for recycling [`BitSet`] storage.
///
/// Typical use is one pool per worker thread, living as long as the
/// worker's scratch state:
///
/// ```
/// use tricluster_bitset::BitSetPool;
///
/// let mut pool = BitSetPool::new();
/// let a = pool.alloc(100);
/// assert!(a.is_empty() && a.capacity() == 100);
/// pool.recycle(a); // storage returns to the pool
/// let b = pool.alloc(70); // reuses the same buffer, re-zeroed
/// assert!(b.is_empty() && b.capacity() == 70);
/// ```
#[derive(Debug, Default)]
pub struct BitSetPool {
    free: Vec<Vec<u64>>,
}

impl BitSetPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BitSetPool::default()
    }

    /// Returns an empty set over `0..nbits`, reusing pooled block storage
    /// when available. The returned set is indistinguishable from
    /// `BitSet::new(nbits)` (its spare `Vec` capacity may differ, which no
    /// `BitSet` operation observes).
    pub fn alloc(&mut self, nbits: usize) -> BitSet {
        let want = block_count(nbits);
        let mut blocks = self.free.pop().unwrap_or_default();
        blocks.clear();
        blocks.resize(want, 0);
        BitSet::from_raw_parts(blocks, nbits)
    }

    /// Like [`BitSetPool::alloc`] followed by setting every yielded index.
    /// All indices must be `< nbits` (debug-asserted; release builds panic
    /// on the block bound rather than wrapping).
    pub fn alloc_from_indices<I: IntoIterator<Item = usize>>(
        &mut self,
        nbits: usize,
        indices: I,
    ) -> BitSet {
        let mut s = self.alloc(nbits);
        s.set_bits_unchecked(indices);
        s
    }

    /// Reclaims a set's block storage for future `alloc` calls. The set's
    /// contents are discarded.
    pub fn recycle(&mut self, set: BitSet) {
        self.free.push(set.into_raw_blocks());
    }

    /// Number of buffers currently held on the free list (diagnostics /
    /// tests only — do **not** surface this as a report counter: pool
    /// occupancy depends on work interleaving and is not deterministic
    /// across thread counts).
    pub fn free_len(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_matches_new() {
        let mut pool = BitSetPool::new();
        for nbits in [0, 1, 63, 64, 65, 100, 128, 1000] {
            let s = pool.alloc(nbits);
            assert_eq!(s, BitSet::new(nbits), "nbits={nbits}");
            assert_eq!(s.capacity(), nbits);
            pool.recycle(s);
        }
    }

    #[test]
    fn recycled_buffer_is_reused_and_rezeroed() {
        let mut pool = BitSetPool::new();
        let mut a = pool.alloc(200);
        a.insert(0);
        a.insert(199);
        pool.recycle(a);
        assert_eq!(pool.free_len(), 1);
        // Smaller universe: the larger buffer shrinks (len-wise) and every
        // surviving block is zeroed.
        let b = pool.alloc(70);
        assert_eq!(pool.free_len(), 0);
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 70);
        assert_eq!(b.as_blocks(), BitSet::new(70).as_blocks());
        pool.recycle(b);
        // Larger universe: the buffer grows back with zeroed new blocks.
        let c = pool.alloc(500);
        assert!(c.is_empty());
        assert_eq!(c.as_blocks().len(), 500usize.div_ceil(64));
    }

    #[test]
    fn alloc_from_indices_matches_from_indices() {
        let mut pool = BitSetPool::new();
        let idx = [0usize, 3, 63, 64, 65, 99];
        let a = pool.alloc_from_indices(100, idx.iter().copied());
        assert_eq!(a, BitSet::from_indices(100, idx));
        pool.recycle(a);
        // Reused buffer must not leak previous bits.
        let b = pool.alloc_from_indices(100, [7usize]);
        assert_eq!(b.to_vec(), vec![7]);
    }

    #[test]
    fn pool_is_optional() {
        // Sets that never come back simply drop; the pool holds nothing.
        let mut pool = BitSetPool::new();
        let _escaped = pool.alloc(64);
        assert_eq!(pool.free_len(), 0);
    }
}
