//! Iterator over the set bits of a block slice.

/// Iterator over the elements of a [`BitSet`](crate::BitSet) in ascending
/// order.
///
/// Produced by [`BitSet::iter`](crate::BitSet::iter). Internally walks the
/// `u64` blocks, peeling the lowest set bit of the current block with
/// `trailing_zeros` — O(population + blocks) total.
pub struct Ones<'a> {
    blocks: &'a [u64],
    /// Remaining bits of the block currently being drained.
    current: u64,
    /// Index of the block `current` was loaded from.
    block_idx: usize,
}

impl<'a> Ones<'a> {
    pub(crate) fn new(blocks: &'a [u64]) -> Self {
        Ones {
            blocks,
            current: blocks.first().copied().unwrap_or(0),
            block_idx: 0,
        }
    }
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.block_idx * 64 + bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.current.count_ones() as usize
            + self.blocks[(self.block_idx + 1).min(self.blocks.len())..]
                .iter()
                .map(|b| b.count_ones() as usize)
                .sum::<usize>();
        (n, Some(n))
    }
}

impl ExactSizeIterator for Ones<'_> {}

impl std::iter::FusedIterator for Ones<'_> {}

#[cfg(test)]
mod tests {
    use crate::BitSet;

    #[test]
    fn size_hint_is_exact() {
        let s = BitSet::from_indices(200, [0, 64, 65, 130, 199]);
        let mut it = s.iter();
        assert_eq!(it.size_hint(), (5, Some(5)));
        it.next();
        assert_eq!(it.size_hint(), (4, Some(4)));
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn fused_after_exhaustion() {
        let s = BitSet::from_indices(70, [69]);
        let mut it = s.iter();
        assert_eq!(it.next(), Some(69));
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn empty_blocks() {
        let s = BitSet::new(0);
        assert_eq!(s.iter().next(), None);
    }
}
