//! Dense row-major 2D matrix.

/// A dense `rows × cols` matrix of `f64` values, stored row-major.
///
/// Used for single time-slice (gene × sample) views of a
/// [`Matrix3`](crate::Matrix3) and as the input type for the 2D baseline
/// algorithms.
#[derive(Clone, PartialEq)]
pub struct Matrix2 {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for Matrix2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix2 {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:8.3} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 12 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix2 {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix2 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix2 { rows, cols, data }
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "row {i} has length {} != {ncols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix2 {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    /// Value at `(r, c)`.
    ///
    /// # Panics
    /// Panics (in debug) or returns an arbitrary element (in release) when
    /// out of bounds; use [`Matrix2::try_get`] for checked access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[self.idx(r, c)]
    }

    /// Checked access returning `None` when out of bounds.
    pub fn try_get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Sets the value at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        let i = self.idx(r, c);
        self.data[i] = v;
    }

    /// The `r`-th row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over the `c`-th column.
    pub fn col(&self, c: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(c < self.cols, "column {c} out of bounds ({})", self.cols);
        (0..self.rows).map(move |r| self.data[r * self.cols + c])
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the raw row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Matrix2 {
        let mut out = Matrix2::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Extracts the submatrix selected by `row_idx × col_idx` (in the given
    /// order, duplicates allowed).
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix2 {
        let mut out = Matrix2::zeros(row_idx.len(), col_idx.len());
        for (i, &r) in row_idx.iter().enumerate() {
            for (j, &c) in col_idx.iter().enumerate() {
                out.set(i, j, self.get(r, c));
            }
        }
        out
    }

    /// Mean of all elements (`NaN` for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return f64::NAN;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Population variance of all elements (`NaN` for an empty matrix).
    pub fn variance(&self) -> f64 {
        if self.data.is_empty() {
            return f64::NAN;
        }
        let mu = self.mean();
        self.data.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_dims() {
        let m = Matrix2::zeros(3, 4);
        assert_eq!(m.dims(), (3, 4));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix2::zeros(2, 2);
        m.set(1, 0, 7.5);
        assert_eq!(m.get(1, 0), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn try_get_bounds() {
        let m = Matrix2::zeros(2, 3);
        assert_eq!(m.try_get(1, 2), Some(0.0));
        assert_eq!(m.try_get(2, 0), None);
        assert_eq!(m.try_get(0, 3), None);
    }

    #[test]
    fn from_rows_layout() {
        let m = Matrix2::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_ragged_panics() {
        Matrix2::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        Matrix2::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix2::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transposed();
        assert_eq!(t.dims(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn submatrix_selects() {
        let m = Matrix2::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let s = m.submatrix(&[2, 0], &[1]);
        assert_eq!(s.dims(), (2, 1));
        assert_eq!(s.get(0, 0), 8.0);
        assert_eq!(s.get(1, 0), 2.0);
    }

    #[test]
    fn map_in_place_applies() {
        let mut m = Matrix2::from_rows(&[vec![1.0, 2.0]]);
        m.map_in_place(|v| v * 10.0);
        assert_eq!(m.as_slice(), &[10.0, 20.0]);
    }

    #[test]
    fn mean_variance() {
        let m = Matrix2::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!((m.mean() - 2.5).abs() < 1e-12);
        assert!((m.variance() - 1.25).abs() < 1e-12);
        assert!(Matrix2::zeros(0, 0).mean().is_nan());
        assert!(Matrix2::zeros(0, 5).variance().is_nan());
    }

    #[test]
    fn debug_does_not_panic_on_large() {
        let m = Matrix2::zeros(100, 100);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix2 100x100"));
    }
}
