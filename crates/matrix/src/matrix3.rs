//! Dense time-major 3D matrix.

use crate::Matrix2;

/// The three axes of a [`Matrix3`].
///
/// The paper's convention: axis 0 = genes (G), axis 1 = samples (S),
/// axis 2 = times (T).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Genes (rows), usually the largest dimension.
    Gene,
    /// Biological samples (columns).
    Sample,
    /// Time points (or spatial regions) — the third dimension.
    Time,
}

impl Axis {
    /// All three axes in canonical (G, S, T) order.
    pub const ALL: [Axis; 3] = [Axis::Gene, Axis::Sample, Axis::Time];

    /// Canonical index of the axis: G=0, S=1, T=2.
    pub fn index(self) -> usize {
        match self {
            Axis::Gene => 0,
            Axis::Sample => 1,
            Axis::Time => 2,
        }
    }
}

/// A dense `genes × samples × times` matrix of expression values.
///
/// Storage is *time-major*: each `genes × samples` time slice is contiguous,
/// because the range-multigraph construction (the first TriCluster phase)
/// processes one time slice at a time.
///
/// TriCluster's symmetry property (paper Lemma 1) means the miner is free to
/// put the largest dimension on the gene axis; [`Matrix3::permuted`] performs
/// that transposition.
#[derive(Clone, PartialEq)]
pub struct Matrix3 {
    n_genes: usize,
    n_samples: usize,
    n_times: usize,
    /// `data[t * n_genes * n_samples + g * n_samples + s]`
    data: Vec<f64>,
}

impl std::fmt::Debug for Matrix3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Matrix3 {}x{}x{} (genes x samples x times)",
            self.n_genes, self.n_samples, self.n_times
        )
    }
}

impl Matrix3 {
    /// Creates a matrix of the given dimensions filled with zeros.
    pub fn zeros(n_genes: usize, n_samples: usize, n_times: usize) -> Self {
        Matrix3 {
            n_genes,
            n_samples,
            n_times,
            data: vec![0.0; n_genes * n_samples * n_times],
        }
    }

    /// Builds a 3D matrix from per-time 2D slices (each `genes × samples`).
    ///
    /// # Panics
    /// Panics if the slices have inconsistent dimensions or none are given.
    pub fn from_time_slices(slices: &[Matrix2]) -> Self {
        assert!(!slices.is_empty(), "at least one time slice required");
        let (n_genes, n_samples) = slices[0].dims();
        let mut m = Matrix3::zeros(n_genes, n_samples, slices.len());
        for (t, s) in slices.iter().enumerate() {
            assert_eq!(
                s.dims(),
                (n_genes, n_samples),
                "slice {t} has inconsistent dimensions"
            );
            let base = t * n_genes * n_samples;
            m.data[base..base + n_genes * n_samples].copy_from_slice(s.as_slice());
        }
        m
    }

    /// Number of genes (axis 0).
    #[inline]
    pub fn n_genes(&self) -> usize {
        self.n_genes
    }

    /// Number of samples (axis 1).
    #[inline]
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of time points (axis 2).
    #[inline]
    pub fn n_times(&self) -> usize {
        self.n_times
    }

    /// `(genes, samples, times)` triple.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.n_genes, self.n_samples, self.n_times)
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the matrix has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn idx(&self, g: usize, s: usize, t: usize) -> usize {
        debug_assert!(
            g < self.n_genes && s < self.n_samples && t < self.n_times,
            "index ({g},{s},{t}) out of bounds for {:?}",
            self.dims()
        );
        t * self.n_genes * self.n_samples + g * self.n_samples + s
    }

    /// Value at `(gene, sample, time)`.
    #[inline]
    pub fn get(&self, g: usize, s: usize, t: usize) -> f64 {
        self.data[self.idx(g, s, t)]
    }

    /// Sets the value at `(gene, sample, time)`.
    #[inline]
    pub fn set(&mut self, g: usize, s: usize, t: usize, v: f64) {
        let i = self.idx(g, s, t);
        self.data[i] = v;
    }

    /// Copies out the `genes × samples` slice at time `t`.
    pub fn time_slice(&self, t: usize) -> Matrix2 {
        assert!(
            t < self.n_times,
            "time {t} out of bounds ({})",
            self.n_times
        );
        let base = t * self.n_genes * self.n_samples;
        Matrix2::from_vec(
            self.n_genes,
            self.n_samples,
            self.data[base..base + self.n_genes * self.n_samples].to_vec(),
        )
    }

    /// Borrowed view of the raw `genes × samples` buffer at time `t`
    /// (row-major by gene). Zero-copy alternative to [`Matrix3::time_slice`].
    pub fn time_slice_raw(&self, t: usize) -> &[f64] {
        assert!(
            t < self.n_times,
            "time {t} out of bounds ({})",
            self.n_times
        );
        let base = t * self.n_genes * self.n_samples;
        &self.data[base..base + self.n_genes * self.n_samples]
    }

    /// Applies `f` to every cell in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with the axes permuted so that the axis given
    /// first becomes the gene axis, the second the sample axis, and the third
    /// the time axis.
    ///
    /// TriCluster transposes the input so that the largest-cardinality
    /// dimension is mined as "genes" (paper §4); use
    /// [`Matrix3::canonical_permutation`] to compute that ordering.
    ///
    /// # Panics
    /// Panics unless `order` is a permutation of the three axes.
    pub fn permuted(&self, order: [Axis; 3]) -> Matrix3 {
        let mut seen = [false; 3];
        for a in order {
            assert!(!seen[a.index()], "axis {a:?} repeated in permutation");
            seen[a.index()] = true;
        }
        let old_dims = [self.n_genes, self.n_samples, self.n_times];
        let new_dims = [
            old_dims[order[0].index()],
            old_dims[order[1].index()],
            old_dims[order[2].index()],
        ];
        let mut out = Matrix3::zeros(new_dims[0], new_dims[1], new_dims[2]);
        for g in 0..self.n_genes {
            for s in 0..self.n_samples {
                for t in 0..self.n_times {
                    let coords = [g, s, t];
                    let ng = coords[order[0].index()];
                    let ns = coords[order[1].index()];
                    let nt = coords[order[2].index()];
                    out.set(ng, ns, nt, self.get(g, s, t));
                }
            }
        }
        out
    }

    /// The axis ordering that puts the largest dimension first (as genes),
    /// then the next largest as samples, with ties broken in (G, S, T) order.
    pub fn canonical_permutation(&self) -> [Axis; 3] {
        let mut axes = [
            (Axis::Gene, self.n_genes),
            (Axis::Sample, self.n_samples),
            (Axis::Time, self.n_times),
        ];
        // stable sort keeps (G,S,T) order among equals
        axes.sort_by_key(|&(_, size)| std::cmp::Reverse(size));
        [axes[0].0, axes[1].0, axes[2].0]
    }

    /// Whether the matrix is already in canonical (largest-first) order.
    pub fn is_canonical(&self) -> bool {
        self.n_genes >= self.n_samples && self.n_genes >= self.n_times
    }

    /// The raw buffer (time-major, then gene-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the raw buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting(ng: usize, ns: usize, nt: usize) -> Matrix3 {
        let mut m = Matrix3::zeros(ng, ns, nt);
        for g in 0..ng {
            for s in 0..ns {
                for t in 0..nt {
                    m.set(g, s, t, (g * 100 + s * 10 + t) as f64);
                }
            }
        }
        m
    }

    #[test]
    fn dims_and_len() {
        let m = Matrix3::zeros(4, 3, 2);
        assert_eq!(m.dims(), (4, 3, 2));
        assert_eq!(m.len(), 24);
        assert!(!m.is_empty());
        assert!(Matrix3::zeros(0, 3, 2).is_empty());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix3::zeros(2, 2, 2);
        m.set(1, 0, 1, 3.25);
        assert_eq!(m.get(1, 0, 1), 3.25);
        assert_eq!(m.get(0, 0, 0), 0.0);
    }

    #[test]
    fn time_slice_matches_gets() {
        let m = counting(3, 4, 2);
        let s1 = m.time_slice(1);
        for g in 0..3 {
            for s in 0..4 {
                assert_eq!(s1.get(g, s), m.get(g, s, 1));
            }
        }
        assert_eq!(m.time_slice_raw(1), s1.as_slice());
    }

    #[test]
    fn from_time_slices_roundtrip() {
        let m = counting(3, 4, 3);
        let slices: Vec<Matrix2> = (0..3).map(|t| m.time_slice(t)).collect();
        let back = Matrix3::from_time_slices(&slices);
        assert_eq!(back, m);
    }

    #[test]
    #[should_panic(expected = "inconsistent dimensions")]
    fn from_time_slices_mismatched_panics() {
        Matrix3::from_time_slices(&[Matrix2::zeros(2, 2), Matrix2::zeros(3, 2)]);
    }

    #[test]
    fn identity_permutation_is_noop() {
        let m = counting(2, 3, 4);
        let p = m.permuted([Axis::Gene, Axis::Sample, Axis::Time]);
        assert_eq!(p, m);
    }

    #[test]
    fn permutation_moves_values() {
        let m = counting(2, 3, 4);
        // make Time the gene axis: new (g,s,t) = old (t_axis val...)
        let p = m.permuted([Axis::Time, Axis::Sample, Axis::Gene]);
        assert_eq!(p.dims(), (4, 3, 2));
        for g in 0..2 {
            for s in 0..3 {
                for t in 0..4 {
                    assert_eq!(p.get(t, s, g), m.get(g, s, t));
                }
            }
        }
    }

    #[test]
    fn double_permutation_roundtrips() {
        let m = counting(2, 3, 4);
        let p = m.permuted([Axis::Sample, Axis::Time, Axis::Gene]);
        // inverse of (S,T,G) is (T,G,S): new axes hold S,T,G; to restore,
        // gene comes from new time axis, sample from new gene, time from new sample.
        let back = p.permuted([Axis::Time, Axis::Gene, Axis::Sample]);
        assert_eq!(back, m);
    }

    #[test]
    #[should_panic(expected = "repeated in permutation")]
    fn repeated_axis_panics() {
        counting(2, 2, 2).permuted([Axis::Gene, Axis::Gene, Axis::Time]);
    }

    #[test]
    fn canonical_permutation_largest_first() {
        let m = Matrix3::zeros(5, 10, 7);
        assert_eq!(
            m.canonical_permutation(),
            [Axis::Sample, Axis::Time, Axis::Gene]
        );
        assert!(!m.is_canonical());
        let c = m.permuted(m.canonical_permutation());
        assert_eq!(c.dims(), (10, 7, 5));
        assert!(c.is_canonical());
    }

    #[test]
    fn canonical_permutation_tie_keeps_order() {
        let m = Matrix3::zeros(4, 4, 4);
        assert_eq!(
            m.canonical_permutation(),
            [Axis::Gene, Axis::Sample, Axis::Time]
        );
        assert!(m.is_canonical());
    }

    #[test]
    fn map_in_place_applies() {
        let mut m = counting(2, 2, 1);
        m.map_in_place(|v| v + 1.0);
        assert_eq!(m.get(1, 1, 0), 111.0);
    }
}
