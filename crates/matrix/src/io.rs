//! Tab-separated I/O for 2D slices and stacked 3D matrices.
//!
//! Two on-disk formats are supported:
//!
//! **2D slice** — a header row of sample names, then one row per gene with
//! the gene name in the first field:
//!
//! ```text
//! gene\ts0\ts1\ts2
//! g0\t1.0\t2.0\t3.0
//! g1\t4.0\t5.0\t6.0
//! ```
//!
//! **Stacked 3D** — one 2D slice per time point, each preceded by a line
//! `# time <name>`, slices separated by blank lines. Missing values (empty
//! fields or `NA`) become `NaN` and should be handled by
//! [`preprocess`](crate::preprocess) before mining.

use crate::{Labels, Matrix2, Matrix3};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while parsing expression matrices.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a number.
    BadNumber {
        /// 1-based line number of the offending row.
        line: usize,
        /// 1-based data-column number (the gene-name field is column 0).
        col: usize,
        /// The raw token.
        token: String,
    },
    /// A cell parsed to an infinite value. Explicit `inf`/`-inf` (and
    /// overflow spellings like `1e999`) are rejected up front — the miner's
    /// ratio tests cannot produce meaningful ranges from them — while `NA`,
    /// `nan`, and empty cells stay legal as missing values.
    NonFinite {
        /// 1-based line number of the offending row.
        line: usize,
        /// 1-based data-column number.
        col: usize,
        /// The raw token.
        token: String,
    },
    /// Row has a different number of columns than the header.
    RaggedRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// Expected field count (header).
        expected: usize,
        /// Actual field count.
        got: usize,
    },
    /// The file has no data rows / slices.
    Empty,
    /// Time slices with inconsistent gene/sample sets.
    InconsistentSlices(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::BadNumber { line, col, token } => {
                write!(
                    f,
                    "line {line}, column {col}: cannot parse {token:?} as a number"
                )
            }
            IoError::NonFinite { line, col, token } => write!(
                f,
                "line {line}, column {col}: non-finite value {token:?} \
                 (use NA or an empty field for missing values)"
            ),
            IoError::RaggedRow {
                line,
                expected,
                got,
            } => write!(f, "line {line}: expected {expected} columns, found {got}"),
            IoError::Empty => write!(f, "no data rows found"),
            IoError::InconsistentSlices(msg) => write!(f, "inconsistent time slices: {msg}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_cell(tok: &str, line: usize, col: usize) -> Result<f64, IoError> {
    let t = tok.trim();
    if t.is_empty() || t.eq_ignore_ascii_case("na") || t.eq_ignore_ascii_case("nan") {
        return Ok(f64::NAN);
    }
    let v = t.parse::<f64>().map_err(|_| IoError::BadNumber {
        line,
        col,
        token: tok.to_string(),
    })?;
    // `parse` accepts "inf"/"-infinity" and overflows "1e999" to infinity;
    // both poison ratio mining, so surface them with their position instead.
    // NaN spellings stay legal above: NaN is the missing-value convention.
    if v.is_infinite() {
        return Err(IoError::NonFinite {
            line,
            col,
            token: tok.to_string(),
        });
    }
    Ok(v)
}

/// Reads a single 2D slice (gene × sample) in the header+rows TSV format.
///
/// Returns the matrix plus the gene and sample names.
pub fn read_slice_tsv<R: BufRead>(
    reader: R,
) -> Result<(Matrix2, Vec<String>, Vec<String>), IoError> {
    read_slice_tsv_from(reader, 0)
}

/// [`read_slice_tsv`] with reported line numbers offset by `first_line`
/// (0-based); lets the stacked reader report file-global positions for
/// errors inside embedded slices.
fn read_slice_tsv_from<R: BufRead>(
    reader: R,
    first_line: usize,
) -> Result<(Matrix2, Vec<String>, Vec<String>), IoError> {
    let mut lines = reader.lines().enumerate().map(|(i, l)| (first_line + i, l));
    let (_, header) = loop {
        match lines.next() {
            Some((i, l)) => {
                let l = l?;
                if !l.trim().is_empty() && !l.starts_with('#') {
                    break (i, l);
                }
            }
            None => return Err(IoError::Empty),
        }
    };
    let samples: Vec<String> = header
        .split('\t')
        .skip(1)
        .map(|s| s.trim().to_string())
        .collect();
    let ncols = samples.len();
    let mut genes = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (i, line) in lines {
        let line = line?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let name = fields.next().unwrap_or("").trim().to_string();
        let vals: Vec<&str> = fields.collect();
        if vals.len() != ncols {
            return Err(IoError::RaggedRow {
                line: i + 1,
                expected: ncols,
                got: vals.len(),
            });
        }
        let mut row = Vec::with_capacity(ncols);
        for (j, v) in vals.iter().enumerate() {
            row.push(parse_cell(v, i + 1, j + 1)?);
        }
        genes.push(name);
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(IoError::Empty);
    }
    Ok((Matrix2::from_rows(&rows), genes, samples))
}

/// Reads a stacked 3D matrix: repeated `# time <name>` headers, each followed
/// by a 2D slice in the slice format. All slices must agree on genes and
/// samples (names and order).
#[allow(clippy::type_complexity)]
pub fn read_stacked_tsv<R: BufRead>(reader: R) -> Result<(Matrix3, Labels), IoError> {
    let mut slices: Vec<Matrix2> = Vec::new();
    let mut times: Vec<String> = Vec::new();
    let mut genes: Option<Vec<String>> = None;
    let mut samples: Option<Vec<String>> = None;

    let mut current: Vec<String> = Vec::new();
    let mut current_start = 0usize; // 0-based file line where the slice body begins
    let mut current_time = String::new();
    let mut in_slice = false;

    // parses the buffered slice body, reporting errors at file-global lines
    let finish = |buf: &mut Vec<String>,
                  start: usize|
     -> Result<Option<(Matrix2, Vec<String>, Vec<String>)>, IoError> {
        if buf.is_empty() {
            return Ok(None);
        }
        let joined = buf.join("\n");
        buf.clear();
        let (m, g, s) = read_slice_tsv_from(std::io::Cursor::new(joined), start)?;
        Ok(Some((m, g, s)))
    };

    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some(rest) = line.strip_prefix("# time") {
            if in_slice {
                if let Some((m, g, s)) = finish(&mut current, current_start)? {
                    check_consistent(&mut genes, &mut samples, &g, &s)?;
                    slices.push(m);
                    times.push(current_time.clone());
                }
            }
            current_time = rest.trim().to_string();
            if current_time.is_empty() {
                current_time = format!("t{}", times.len());
            }
            current_start = i + 1;
            in_slice = true;
        } else if in_slice {
            current.push(line);
        }
        // lines before the first `# time` header are ignored (file preamble)
    }
    if in_slice {
        if let Some((m, g, s)) = finish(&mut current, current_start)? {
            check_consistent(&mut genes, &mut samples, &g, &s)?;
            slices.push(m);
            times.push(current_time);
        }
    }
    if slices.is_empty() {
        return Err(IoError::Empty);
    }
    let labels = Labels::new(
        genes.unwrap_or_default(),
        samples.unwrap_or_default(),
        times,
    );
    Ok((Matrix3::from_time_slices(&slices), labels))
}

fn check_consistent(
    genes: &mut Option<Vec<String>>,
    samples: &mut Option<Vec<String>>,
    g: &[String],
    s: &[String],
) -> Result<(), IoError> {
    match genes {
        None => *genes = Some(g.to_vec()),
        Some(prev) if prev.as_slice() != g => {
            return Err(IoError::InconsistentSlices(
                "gene names differ between slices".into(),
            ))
        }
        _ => {}
    }
    match samples {
        None => *samples = Some(s.to_vec()),
        Some(prev) if prev.as_slice() != s => {
            return Err(IoError::InconsistentSlices(
                "sample names differ between slices".into(),
            ))
        }
        _ => {}
    }
    Ok(())
}

/// Writes a single 2D slice in the slice TSV format.
pub fn write_slice_tsv<W: Write>(
    w: &mut W,
    m: &Matrix2,
    genes: &[String],
    samples: &[String],
) -> std::io::Result<()> {
    write!(w, "gene")?;
    for j in 0..m.cols() {
        let name = samples.get(j).cloned().unwrap_or_else(|| format!("s{j}"));
        write!(w, "\t{name}")?;
    }
    writeln!(w)?;
    for i in 0..m.rows() {
        let name = genes.get(i).cloned().unwrap_or_else(|| format!("g{i}"));
        write!(w, "{name}")?;
        for j in 0..m.cols() {
            write!(w, "\t{}", m.get(i, j))?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Writes a stacked 3D matrix in the `# time` format read by
/// [`read_stacked_tsv`].
pub fn write_stacked_tsv<W: Write>(w: &mut W, m: &Matrix3, labels: &Labels) -> std::io::Result<()> {
    for t in 0..m.n_times() {
        writeln!(w, "# time {}", labels.time(t))?;
        let slice = m.time_slice(t);
        write_slice_tsv(w, &slice, labels.genes(), labels.samples())?;
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLICE: &str = "gene\ts0\ts1\ns_a\t1.0\t2.5\ns_b\t-3\t4e1\n";

    #[test]
    fn read_slice_basic() {
        let (m, genes, samples) = read_slice_tsv(SLICE.as_bytes()).unwrap();
        assert_eq!(m.dims(), (2, 2));
        assert_eq!(genes, vec!["s_a", "s_b"]);
        assert_eq!(samples, vec!["s0", "s1"]);
        assert_eq!(m.get(0, 1), 2.5);
        assert_eq!(m.get(1, 0), -3.0);
        assert_eq!(m.get(1, 1), 40.0);
    }

    #[test]
    fn read_slice_skips_comments_and_blanks() {
        let text = "# preamble\n\ngene\ts0\n# note\ng0\t7\n\n";
        let (m, genes, _) = read_slice_tsv(text.as_bytes()).unwrap();
        assert_eq!(m.dims(), (1, 1));
        assert_eq!(genes, vec!["g0"]);
        assert_eq!(m.get(0, 0), 7.0);
    }

    #[test]
    fn read_slice_na_becomes_nan() {
        let text = "gene\ts0\ts1\ng0\tNA\t\n";
        let (m, _, _) = read_slice_tsv(text.as_bytes()).unwrap();
        assert!(m.get(0, 0).is_nan());
        assert!(m.get(0, 1).is_nan());
    }

    #[test]
    fn read_slice_bad_number_reports_line_and_column() {
        let text = "gene\ts0\ts1\ng0\t1.5\toops\n";
        match read_slice_tsv(text.as_bytes()) {
            Err(IoError::BadNumber { line, col, token }) => {
                assert_eq!((line, col), (2, 2));
                assert_eq!(token, "oops");
            }
            other => panic!("expected BadNumber, got {other:?}"),
        }
    }

    #[test]
    fn parse_cell_token_conventions() {
        // missing-value spellings become NaN
        for missing in ["", "  ", "NA", "na", "NaN", "nan"] {
            assert!(parse_cell(missing, 1, 1).unwrap().is_nan(), "{missing:?}");
        }
        // ordinary numbers parse (with surrounding whitespace)
        assert_eq!(parse_cell(" -3.5e2 ", 1, 1).unwrap(), -350.0);
        assert_eq!(parse_cell("0", 1, 1).unwrap(), 0.0);
        // explicit infinities and overflow spellings are rejected in place
        for inf in ["inf", "-inf", "Infinity", "-INF", "1e999", "-1e999"] {
            match parse_cell(inf, 7, 3) {
                Err(IoError::NonFinite { line, col, token }) => {
                    assert_eq!((line, col), (7, 3), "{inf:?}");
                    assert_eq!(token, inf);
                }
                other => panic!("expected NonFinite for {inf:?}, got {other:?}"),
            }
        }
        // garbage is a parse error carrying the position
        match parse_cell("12..5", 4, 9) {
            Err(IoError::BadNumber { line, col, .. }) => assert_eq!((line, col), (4, 9)),
            other => panic!("expected BadNumber, got {other:?}"),
        }
    }

    #[test]
    fn read_slice_rejects_non_finite_cells() {
        let text = "gene\ts0\ts1\ng0\t1\t2\ng1\t3\tinf\n";
        match read_slice_tsv(text.as_bytes()) {
            Err(IoError::NonFinite { line, col, token }) => {
                assert_eq!((line, col), (3, 2));
                assert_eq!(token, "inf");
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn stacked_errors_report_file_global_lines() {
        // the bad cell sits in the SECOND slice; its reported line must be
        // its position in the whole file, not within the embedded slice
        let text = "# time t0\n\
                    gene\ts0\n\
                    ga\t1\n\
                    \n\
                    # time t1\n\
                    gene\ts0\n\
                    ga\toops\n";
        match read_stacked_tsv(text.as_bytes()) {
            Err(IoError::BadNumber { line, col, token }) => {
                assert_eq!((line, col), (7, 1), "token {token:?}");
            }
            other => panic!("expected BadNumber, got {other:?}"),
        }
        let ragged = "# time t0\ngene\ts0\ts1\nga\t1\t2\n\n# time t1\ngene\ts0\ts1\nga\t1\n";
        match read_stacked_tsv(ragged.as_bytes()) {
            Err(IoError::RaggedRow {
                line,
                expected,
                got,
            }) => {
                assert_eq!((line, expected, got), (7, 2, 1));
            }
            other => panic!("expected RaggedRow, got {other:?}"),
        }
    }

    #[test]
    fn read_slice_ragged_reports_shape() {
        let text = "gene\ts0\ts1\ng0\t1\n";
        match read_slice_tsv(text.as_bytes()) {
            Err(IoError::RaggedRow { expected, got, .. }) => {
                assert_eq!((expected, got), (2, 1));
            }
            other => panic!("expected RaggedRow, got {other:?}"),
        }
    }

    #[test]
    fn read_slice_empty_errors() {
        assert!(matches!(read_slice_tsv("".as_bytes()), Err(IoError::Empty)));
        assert!(matches!(
            read_slice_tsv("gene\ts0\n".as_bytes()),
            Err(IoError::Empty)
        ));
    }

    #[test]
    fn stacked_roundtrip() {
        let mut m = Matrix3::zeros(2, 2, 2);
        for g in 0..2 {
            for s in 0..2 {
                for t in 0..2 {
                    m.set(g, s, t, (g * 4 + s * 2 + t) as f64 + 0.5);
                }
            }
        }
        let labels = Labels::new(
            vec!["ga".into(), "gb".into()],
            vec!["sa".into(), "sb".into()],
            vec!["0m".into(), "30m".into()],
        );
        let mut buf = Vec::new();
        write_stacked_tsv(&mut buf, &m, &labels).unwrap();
        let (back, back_labels) = read_stacked_tsv(buf.as_slice()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back_labels, labels);
    }

    #[test]
    fn stacked_inconsistent_genes_errors() {
        let text = "# time t0\ngene\ts0\nga\t1\n\n# time t1\ngene\ts0\ngb\t1\n";
        assert!(matches!(
            read_stacked_tsv(text.as_bytes()),
            Err(IoError::InconsistentSlices(_))
        ));
    }

    #[test]
    fn stacked_unnamed_time_gets_default() {
        let text = "# time\ngene\ts0\nga\t1\n";
        let (m, labels) = read_stacked_tsv(text.as_bytes()).unwrap();
        assert_eq!(m.dims(), (1, 1, 1));
        assert_eq!(labels.times(), &["t0"]);
    }

    #[test]
    fn stacked_empty_errors() {
        assert!(matches!(
            read_stacked_tsv("".as_bytes()),
            Err(IoError::Empty)
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = IoError::BadNumber {
            line: 3,
            col: 2,
            token: "x".into(),
        };
        assert!(e.to_string().contains("line 3, column 2"));
        let e = IoError::NonFinite {
            line: 5,
            col: 1,
            token: "inf".into(),
        };
        assert!(e.to_string().contains("line 5, column 1"));
        assert!(e.to_string().contains("missing"));
        let e = IoError::RaggedRow {
            line: 1,
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("expected 4"));
    }
}
