//! Dense labeled 2D/3D expression matrices with TSV I/O and preprocessing.
//!
//! This crate is the data substrate for TriCluster mining:
//!
//! * [`Matrix2`] — a dense row-major `rows × cols` matrix of `f64` values,
//!   used for single time-slice (gene × sample) views,
//! * [`Matrix3`] — a dense `genes × samples × times` matrix stored
//!   time-major so each time slice is contiguous (the per-slice range-graph
//!   construction walks slices),
//! * [`Labels`] — axis labels (gene/sample/time names) carried alongside a
//!   matrix so mined clusters can be reported in terms of the input names,
//! * [`io`] — tab-separated reading/writing of 2D slices and stacked 3D
//!   matrices,
//! * [`preprocess`] — the paper's preprocessing step (replacing zero
//!   expression values with a small random positive correction) plus the
//!   `exp`/`ln` transforms used to mine *shifting* clusters via Lemma 2.
//!
//! # Example
//!
//! ```
//! use tricluster_matrix::Matrix3;
//!
//! let mut m = Matrix3::zeros(2, 3, 2);
//! m.set(0, 1, 1, 42.0);
//! assert_eq!(m.get(0, 1, 1), 42.0);
//! assert_eq!(m.dims(), (2, 3, 2));
//! let slice = m.time_slice(1); // gene × sample matrix at t=1
//! assert_eq!(slice.get(0, 1), 42.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod labels;
mod matrix2;
mod matrix3;

pub mod io;
pub mod normalize;
pub mod preprocess;

pub use labels::Labels;
pub use matrix2::Matrix2;
pub use matrix3::{Axis, Matrix3};
