//! Preprocessing steps applied before mining.
//!
//! The paper (§2, condition 2) replaces expression values of **zero** with a
//! small random positive correction in a preprocessing step, so that ratios
//! are always defined and sign logic is well-behaved. We extend the same
//! treatment to missing values (`NaN`), which appear in real microarray
//! exports.
//!
//! This module also provides the `exp`/`ln` transforms used to mine
//! *shifting* clusters via the paper's Lemma 2: a shifting cluster in `D` is
//! a scaling cluster in `exp(D)`.

use crate::Matrix3;
use rand::Rng;

/// Options for [`replace_zeros`].
#[derive(Debug, Clone, Copy)]
pub struct ZeroReplacement {
    /// Values with `|v| <= tolerance` are treated as zero (default `0.0`,
    /// i.e. only exact zeros).
    pub tolerance: f64,
    /// Replacements are drawn uniformly from `(min_value, max_value)`.
    pub min_value: f64,
    /// Upper bound of the replacement range.
    pub max_value: f64,
    /// Whether `NaN` cells are also replaced (default `true`).
    pub replace_nan: bool,
}

impl Default for ZeroReplacement {
    fn default() -> Self {
        ZeroReplacement {
            tolerance: 0.0,
            min_value: 1e-6,
            max_value: 1e-4,
            replace_nan: true,
        }
    }
}

/// Replaces zero (and optionally `NaN`) cells with small random positive
/// values, per the paper's preprocessing step. Returns the number of cells
/// replaced.
pub fn replace_zeros<R: Rng>(m: &mut Matrix3, opts: ZeroReplacement, rng: &mut R) -> usize {
    assert!(
        opts.min_value > 0.0 && opts.max_value > opts.min_value,
        "replacement range must be positive and non-empty"
    );
    let mut replaced = 0;
    for v in m.as_mut_slice() {
        let is_zero = v.abs() <= opts.tolerance;
        let is_nan = v.is_nan();
        if is_zero || (opts.replace_nan && is_nan) {
            *v = rng.gen_range(opts.min_value..opts.max_value);
            replaced += 1;
        }
    }
    replaced
}

/// Applies `exp` to every cell, producing the matrix `e^D` of Lemma 2.
///
/// Mining scaling clusters in the result finds shifting clusters in `m`.
pub fn exp_transform(m: &Matrix3) -> Matrix3 {
    let mut out = m.clone();
    out.map_in_place(f64::exp);
    out
}

/// Applies natural log to every cell. Inverse of [`exp_transform`] for
/// positive data; cells `<= 0` become `NaN` and must be cleaned with
/// [`replace_zeros`] first.
pub fn ln_transform(m: &Matrix3) -> Matrix3 {
    let mut out = m.clone();
    out.map_in_place(f64::ln);
    out
}

/// Summary statistics of a matrix, used for sanity checks and reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Minimum finite value.
    pub min: f64,
    /// Maximum finite value.
    pub max: f64,
    /// Mean of finite values.
    pub mean: f64,
    /// Number of `NaN`/infinite cells.
    pub non_finite: usize,
    /// Number of exactly-zero cells.
    pub zeros: usize,
}

/// Computes summary statistics over all cells.
pub fn summarize(m: &Matrix3) -> Summary {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut n = 0usize;
    let mut non_finite = 0usize;
    let mut zeros = 0usize;
    for &v in m.as_slice() {
        if !v.is_finite() {
            non_finite += 1;
            continue;
        }
        if v == 0.0 {
            zeros += 1;
        }
        min = min.min(v);
        max = max.max(v);
        sum += v;
        n += 1;
    }
    Summary {
        min,
        max,
        mean: if n > 0 { sum / n as f64 } else { f64::NAN },
        non_finite,
        zeros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn replaces_exact_zeros() {
        let mut m = Matrix3::zeros(2, 2, 1);
        m.set(0, 0, 0, 5.0);
        let n = replace_zeros(&mut m, ZeroReplacement::default(), &mut rng());
        assert_eq!(n, 3);
        assert_eq!(m.get(0, 0, 0), 5.0, "non-zero untouched");
        for (g, s) in [(0, 1), (1, 0), (1, 1)] {
            let v = m.get(g, s, 0);
            assert!(v > 0.0 && v < 1e-4, "replacement {v} in range");
        }
    }

    #[test]
    fn replaces_nan_when_asked() {
        let mut m = Matrix3::zeros(1, 2, 1);
        m.set(0, 0, 0, f64::NAN);
        m.set(0, 1, 0, 1.0);
        let n = replace_zeros(&mut m, ZeroReplacement::default(), &mut rng());
        assert_eq!(n, 1);
        assert!(m.get(0, 0, 0).is_finite());
    }

    #[test]
    fn keeps_nan_when_disabled() {
        let mut m = Matrix3::zeros(1, 1, 1);
        m.set(0, 0, 0, f64::NAN);
        let opts = ZeroReplacement {
            replace_nan: false,
            ..Default::default()
        };
        let n = replace_zeros(&mut m, opts, &mut rng());
        assert_eq!(n, 0);
        assert!(m.get(0, 0, 0).is_nan());
    }

    #[test]
    fn tolerance_sweeps_small_values() {
        let mut m = Matrix3::zeros(1, 2, 1);
        m.set(0, 0, 0, 1e-9);
        m.set(0, 1, 0, 0.5);
        let opts = ZeroReplacement {
            tolerance: 1e-8,
            ..Default::default()
        };
        let n = replace_zeros(&mut m, opts, &mut rng());
        assert_eq!(n, 1);
        assert_eq!(m.get(0, 1, 0), 0.5);
    }

    #[test]
    #[should_panic(expected = "replacement range")]
    fn bad_range_panics() {
        let mut m = Matrix3::zeros(1, 1, 1);
        let opts = ZeroReplacement {
            min_value: 1.0,
            max_value: 0.5,
            ..Default::default()
        };
        replace_zeros(&mut m, opts, &mut rng());
    }

    #[test]
    fn exp_ln_roundtrip() {
        let mut m = Matrix3::zeros(2, 2, 2);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = 0.1 + i as f64;
        }
        let back = ln_transform(&exp_transform(&m));
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn lemma2_shift_becomes_scale() {
        // rows differ by an additive offset; after exp they differ by a
        // multiplicative factor (this is exactly Lemma 2).
        let mut m = Matrix3::zeros(2, 3, 1);
        for s in 0..3 {
            m.set(0, s, 0, s as f64);
            m.set(1, s, 0, s as f64 + 2.0); // shift by beta = 2
        }
        let e = exp_transform(&m);
        let alpha = e.get(1, 0, 0) / e.get(0, 0, 0);
        for s in 0..3 {
            let r = e.get(1, s, 0) / e.get(0, s, 0);
            assert!((r - alpha).abs() < 1e-12, "constant ratio after exp");
        }
        assert!((alpha.ln() - 2.0).abs() < 1e-12, "beta = ln(alpha)");
    }

    #[test]
    fn summary_counts() {
        let mut m = Matrix3::zeros(1, 4, 1);
        m.set(0, 0, 0, -1.0);
        m.set(0, 1, 0, 3.0);
        m.set(0, 2, 0, f64::NAN);
        // (0,3,0) stays 0.0
        let s = summarize(&m);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.non_finite, 1);
        assert_eq!(s.zeros, 1);
        assert!((s.mean - (2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn summary_all_nan() {
        let mut m = Matrix3::zeros(1, 1, 1);
        m.set(0, 0, 0, f64::NAN);
        let s = summarize(&m);
        assert!(s.mean.is_nan());
        assert_eq!(s.non_finite, 1);
    }
}
