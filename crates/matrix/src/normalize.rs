//! Normalization transforms common in microarray preprocessing.
//!
//! These run *before* mining: TriCluster's ratio coherence is
//! scale-invariant per column pair, but cross-slice comparability and
//! shifting-cluster mining (log space) benefit from standard normalization.
//!
//! * [`log2_transform`] — the conventional expression-ratio transform;
//!   non-positive cells become `NaN` (clean them with
//!   [`preprocess::replace_zeros`](crate::preprocess::replace_zeros)).
//! * [`quantile_normalize_slices`] — forces every time slice's *column* to
//!   a common value distribution (the Bolstad et al. procedure), removing
//!   per-chip intensity effects.
//! * [`standardize_genes`] — per-gene z-scoring across all cells of the
//!   gene (mean 0, variance 1), the transform used by distance-based
//!   clustering baselines.

use crate::Matrix3;

/// Applies `log2` to every cell. Non-positive values become `NaN`.
pub fn log2_transform(m: &Matrix3) -> Matrix3 {
    let mut out = m.clone();
    out.map_in_place(f64::log2);
    out
}

/// Quantile-normalizes the sample columns within each time slice: after the
/// transform, every column of a slice has exactly the same sorted value
/// distribution (the mean of the original per-rank values).
///
/// `NaN` cells are left untouched and excluded from rank computation only
/// if *all* columns have them at matching positions; for simplicity this
/// implementation requires finite input and panics otherwise — run zero/NaN
/// replacement first.
pub fn quantile_normalize_slices(m: &Matrix3) -> Matrix3 {
    let (ng, ns, nt) = m.dims();
    assert!(
        m.as_slice().iter().all(|v| v.is_finite()),
        "quantile normalization requires finite values; preprocess first"
    );
    let mut out = m.clone();
    for t in 0..nt {
        // rank each column
        let mut per_column_order: Vec<Vec<usize>> = Vec::with_capacity(ns);
        for s in 0..ns {
            let mut idx: Vec<usize> = (0..ng).collect();
            idx.sort_by(|&a, &b| m.get(a, s, t).total_cmp(&m.get(b, s, t)));
            per_column_order.push(idx);
        }
        // mean value per rank across columns
        let mut rank_means = vec![0.0f64; ng];
        for (s, order) in per_column_order.iter().enumerate() {
            for (rank, &g) in order.iter().enumerate() {
                rank_means[rank] += m.get(g, s, t);
            }
        }
        for rm in &mut rank_means {
            *rm /= ns as f64;
        }
        // substitute
        for (s, order) in per_column_order.iter().enumerate() {
            for (rank, &g) in order.iter().enumerate() {
                out.set(g, s, t, rank_means[rank]);
            }
        }
    }
    out
}

/// Standardizes each gene to mean 0 and (population) variance 1 across all
/// its cells. Genes with zero variance become all-zero.
pub fn standardize_genes(m: &Matrix3) -> Matrix3 {
    let (ng, ns, nt) = m.dims();
    let mut out = m.clone();
    let cells = (ns * nt) as f64;
    for g in 0..ng {
        let mut sum = 0.0;
        for s in 0..ns {
            for t in 0..nt {
                sum += m.get(g, s, t);
            }
        }
        let mean = sum / cells;
        let mut var = 0.0;
        for s in 0..ns {
            for t in 0..nt {
                let d = m.get(g, s, t) - mean;
                var += d * d;
            }
        }
        var /= cells;
        let sd = var.sqrt();
        for s in 0..ns {
            for t in 0..nt {
                let v = if sd == 0.0 {
                    0.0
                } else {
                    (m.get(g, s, t) - mean) / sd
                };
                out.set(g, s, t, v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix3 {
        let mut m = Matrix3::zeros(4, 3, 2);
        let mut v = 1.0;
        m.map_in_place(|_| {
            v = (v * 7.3) % 19.0 + 1.0;
            v
        });
        m
    }

    #[test]
    fn log2_matches_values() {
        let mut m = Matrix3::zeros(1, 2, 1);
        m.set(0, 0, 0, 8.0);
        m.set(0, 1, 0, 0.5);
        let l = log2_transform(&m);
        assert_eq!(l.get(0, 0, 0), 3.0);
        assert_eq!(l.get(0, 1, 0), -1.0);
    }

    #[test]
    fn log2_nonpositive_is_nan() {
        let mut m = Matrix3::zeros(1, 1, 1);
        m.set(0, 0, 0, -1.0);
        assert!(log2_transform(&m).get(0, 0, 0).is_nan());
    }

    #[test]
    fn quantile_makes_column_distributions_identical() {
        let m = sample_matrix();
        let q = quantile_normalize_slices(&m);
        for t in 0..2 {
            let mut reference: Vec<f64> = (0..4).map(|g| q.get(g, 0, t)).collect();
            reference.sort_by(f64::total_cmp);
            for s in 1..3 {
                let mut col: Vec<f64> = (0..4).map(|g| q.get(g, s, t)).collect();
                col.sort_by(f64::total_cmp);
                for (a, b) in reference.iter().zip(&col) {
                    assert!((a - b).abs() < 1e-12, "columns differ after normalization");
                }
            }
        }
    }

    #[test]
    fn quantile_preserves_within_column_order() {
        let m = sample_matrix();
        let q = quantile_normalize_slices(&m);
        for t in 0..2 {
            for s in 0..3 {
                for g1 in 0..4 {
                    for g2 in 0..4 {
                        if m.get(g1, s, t) < m.get(g2, s, t) {
                            assert!(
                                q.get(g1, s, t) <= q.get(g2, s, t),
                                "rank order broken at ({g1},{g2},{s},{t})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn quantile_identity_on_identical_columns() {
        let mut m = Matrix3::zeros(3, 2, 1);
        for g in 0..3 {
            for s in 0..2 {
                m.set(g, s, 0, (g + 1) as f64);
            }
        }
        let q = quantile_normalize_slices(&m);
        assert_eq!(q, m);
    }

    #[test]
    #[should_panic(expected = "finite values")]
    fn quantile_rejects_nan() {
        let mut m = Matrix3::zeros(2, 2, 1);
        m.set(0, 0, 0, f64::NAN);
        quantile_normalize_slices(&m);
    }

    #[test]
    fn standardize_zero_mean_unit_variance() {
        let m = sample_matrix();
        let z = standardize_genes(&m);
        for g in 0..4 {
            let vals: Vec<f64> = (0..3)
                .flat_map(|s| (0..2).map(move |t| (s, t)))
                .map(|(s, t)| z.get(g, s, t))
                .collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-12, "gene {g} mean {mean}");
            assert!((var - 1.0).abs() < 1e-12, "gene {g} var {var}");
        }
    }

    #[test]
    fn standardize_constant_gene_is_zero() {
        let mut m = Matrix3::zeros(1, 2, 2);
        m.map_in_place(|_| 5.0);
        let z = standardize_genes(&m);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }
}
