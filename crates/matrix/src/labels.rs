//! Axis labels (gene/sample/time names).

/// Names for the three axes of a 3D expression matrix.
///
/// Mined clusters are internally index sets; `Labels` lets callers map them
/// back to gene/sample/time names from the input file (or the defaults
/// `g0, g1, …` / `s0, …` / `t0, …`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labels {
    genes: Vec<String>,
    samples: Vec<String>,
    times: Vec<String>,
}

fn default_names(prefix: &str, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}{i}")).collect()
}

impl Labels {
    /// Default labels `g0…`, `s0…`, `t0…` for the given dimensions.
    pub fn default_for(n_genes: usize, n_samples: usize, n_times: usize) -> Self {
        Labels {
            genes: default_names("g", n_genes),
            samples: default_names("s", n_samples),
            times: default_names("t", n_times),
        }
    }

    /// Builds labels from explicit name vectors.
    pub fn new(genes: Vec<String>, samples: Vec<String>, times: Vec<String>) -> Self {
        Labels {
            genes,
            samples,
            times,
        }
    }

    /// Gene names.
    pub fn genes(&self) -> &[String] {
        &self.genes
    }

    /// Sample names.
    pub fn samples(&self) -> &[String] {
        &self.samples
    }

    /// Time-point names.
    pub fn times(&self) -> &[String] {
        &self.times
    }

    /// Name of gene `i`, or a generated default when out of range.
    pub fn gene(&self, i: usize) -> String {
        self.genes
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("g{i}"))
    }

    /// Name of sample `j`, or a generated default when out of range.
    pub fn sample(&self, j: usize) -> String {
        self.samples
            .get(j)
            .cloned()
            .unwrap_or_else(|| format!("s{j}"))
    }

    /// Name of time point `k`, or a generated default when out of range.
    pub fn time(&self, k: usize) -> String {
        self.times
            .get(k)
            .cloned()
            .unwrap_or_else(|| format!("t{k}"))
    }

    /// Index of the gene with the given name.
    pub fn gene_index(&self, name: &str) -> Option<usize> {
        self.genes.iter().position(|g| g == name)
    }

    /// Index of the sample with the given name.
    pub fn sample_index(&self, name: &str) -> Option<usize> {
        self.samples.iter().position(|s| s == name)
    }

    /// Index of the time point with the given name.
    pub fn time_index(&self, name: &str) -> Option<usize> {
        self.times.iter().position(|t| t == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sequential() {
        let l = Labels::default_for(3, 2, 1);
        assert_eq!(l.genes(), &["g0", "g1", "g2"]);
        assert_eq!(l.samples(), &["s0", "s1"]);
        assert_eq!(l.times(), &["t0"]);
    }

    #[test]
    fn lookup_by_name() {
        let l = Labels::new(
            vec!["YAL001C".into(), "YAL002W".into()],
            vec!["cy5".into()],
            vec!["0min".into(), "30min".into()],
        );
        assert_eq!(l.gene_index("YAL002W"), Some(1));
        assert_eq!(l.gene_index("nope"), None);
        assert_eq!(l.sample_index("cy5"), Some(0));
        assert_eq!(l.time_index("30min"), Some(1));
    }

    #[test]
    fn out_of_range_falls_back_to_default() {
        let l = Labels::default_for(1, 1, 1);
        assert_eq!(l.gene(5), "g5");
        assert_eq!(l.sample(9), "s9");
        assert_eq!(l.time(2), "t2");
    }
}
