//! Property tests for the matrix substrate: permutation round-trips, TSV
//! round-trips, and normalization invariants.

use proptest::prelude::*;
use tricluster_matrix::{io, normalize, Axis, Labels, Matrix3};

fn arb_matrix() -> impl Strategy<Value = Matrix3> {
    (1usize..6, 1usize..5, 1usize..4).prop_flat_map(|(g, s, t)| {
        proptest::collection::vec(-100.0f64..100.0, g * s * t).prop_map(move |vals| {
            let mut m = Matrix3::zeros(g, s, t);
            m.as_mut_slice().copy_from_slice(&vals);
            m
        })
    })
}

/// All 6 axis orders.
fn permutations() -> Vec<[Axis; 3]> {
    let a = [Axis::Gene, Axis::Sample, Axis::Time];
    let mut out = Vec::new();
    for i in 0..3 {
        for j in 0..3 {
            if j == i {
                continue;
            }
            let k = 3 - i - j;
            out.push([a[i], a[j], a[k]]);
        }
    }
    out
}

/// The inverse of a permutation `order`.
fn inverse(order: [Axis; 3]) -> [Axis; 3] {
    let axes = [Axis::Gene, Axis::Sample, Axis::Time];
    let mut inv = [Axis::Gene; 3];
    for (new_pos, &src_axis) in order.iter().enumerate() {
        inv[src_axis.index()] = axes[new_pos];
    }
    inv
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn permutation_preserves_multiset(m in arb_matrix()) {
        for order in permutations() {
            let p = m.permuted(order);
            let mut a: Vec<f64> = m.as_slice().to_vec();
            let mut b: Vec<f64> = p.as_slice().to_vec();
            a.sort_by(f64::total_cmp);
            b.sort_by(f64::total_cmp);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn permutation_inverse_roundtrips(m in arb_matrix()) {
        for order in permutations() {
            let p = m.permuted(order);
            let back = p.permuted(inverse(order));
            prop_assert_eq!(&back, &m, "order {:?}", order);
        }
    }

    #[test]
    fn canonical_permutation_puts_largest_first(m in arb_matrix()) {
        let c = m.permuted(m.canonical_permutation());
        prop_assert!(c.is_canonical());
        prop_assert_eq!(c.len(), m.len());
    }

    #[test]
    fn stacked_tsv_roundtrip(m in arb_matrix()) {
        let labels = Labels::default_for(m.n_genes(), m.n_samples(), m.n_times());
        let mut buf = Vec::new();
        io::write_stacked_tsv(&mut buf, &m, &labels).unwrap();
        let (back, back_labels) = io::read_stacked_tsv(buf.as_slice()).unwrap();
        prop_assert_eq!(back_labels, labels);
        // values round-trip through decimal text exactly for f64 Display
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn quantile_normalization_is_idempotent(m in arb_matrix()) {
        let q1 = normalize::quantile_normalize_slices(&m);
        let q2 = normalize::quantile_normalize_slices(&q1);
        for (a, b) in q1.as_slice().iter().zip(q2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn standardize_bounds(m in arb_matrix()) {
        let z = normalize::standardize_genes(&m);
        // all standardized values lie within sqrt(cells) of zero
        let bound = ((m.n_samples() * m.n_times()) as f64).sqrt() + 1e-9;
        for &v in z.as_slice() {
            prop_assert!(v.abs() <= bound, "{v} beyond {bound}");
        }
    }

    #[test]
    fn time_slices_partition_the_matrix(m in arb_matrix()) {
        let slices: Vec<_> = (0..m.n_times()).map(|t| m.time_slice(t)).collect();
        let back = Matrix3::from_time_slices(&slices);
        prop_assert_eq!(back, m);
    }
}
