//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this in-tree crate
//! implements the API subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, implemented for
//!   numeric ranges, tuples, and [`Just`],
//! * [`collection::vec`] and [`collection::btree_set`],
//! * [`bool::ANY`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! its deterministic case seed so it can be replayed by re-running the
//! test (generation is seeded from the test name and case index, so
//! failures are stable across runs and machines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;

// ---------------------------------------------------------------- runner --

/// Runner configuration. Only the case count is configurable.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator (SplitMix64 stream).
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling domain");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives `f` until `config.cases` cases pass. Rejected cases
/// (`prop_assume!`) are retried with fresh inputs, bounded by a global
/// reject budget. Panics on the first failing case, reporting its seed.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv1a(name.as_bytes());
    let mut passed = 0u32;
    let mut attempt = 0u64;
    let max_attempts = config.cases as u64 * 16 + 1024;
    while passed < config.cases {
        assert!(
            attempt < max_attempts,
            "{name}: gave up after {attempt} attempts with only {passed}/{} passes \
             (too many prop_assume! rejections)",
            config.cases
        );
        let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        attempt += 1;
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {passed} (seed {seed:#x}) failed: {msg}")
            }
        }
    }
}

// ------------------------------------------------------------- strategy --

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Generates `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ----------------------------------------------------------- collections --

/// Collection strategies.
pub mod collection {
    use super::{BTreeSet, Strategy, TestRng};

    /// A count or range of counts for collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s of values from `element`, with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s from `element`, attempting a size drawn from
    /// `size` (duplicates collapse, as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------- macros --

/// Defines property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(config, stringify!($name), |__rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    let __result: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    __result
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                l == r,
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                l == r,
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            ),
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                l != r,
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ),
        }
    };
}

/// Skips (rejects) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The usual glob import for tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (0usize..10).prop_flat_map(|a| (Just(a), a..a + 5))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn flat_map_respects_dependency((a, b) in pair()) {
            prop_assert!(b >= a && b < a + 5, "a={a} b={b}");
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0usize..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn btree_set_within_universe(s in crate::collection::btree_set(0usize..50, 0..20)) {
            prop_assert!(s.len() < 20);
            prop_assert!(s.iter().all(|&x| x < 50));
        }

        #[test]
        fn assume_rejects_odd(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn bool_any_generates(b in crate::bool::ANY) {
            prop_assert!((b as u8) <= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0usize..1000, 0..50);
        let a: Vec<Vec<usize>> = (0..10)
            .map(|i| strat.generate(&mut crate::TestRng::new(i)))
            .collect();
        let b: Vec<Vec<usize>> = (0..10)
            .map(|i| strat.generate(&mut crate::TestRng::new(i)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        crate::run_cases(ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope".into()))
        });
    }

    #[test]
    #[should_panic(expected = "prop_assume")]
    fn unsatisfiable_assume_gives_up() {
        crate::run_cases(ProptestConfig::with_cases(8), "always_rejects", |_rng| {
            Err(TestCaseError::Reject)
        });
    }
}
