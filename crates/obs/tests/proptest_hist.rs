//! Property-based tests for `Histogram`: merging must behave like a
//! multiset union — associative, commutative, order-independent — because
//! the miner merges per-worker histograms in slice order and the report
//! must come out identical for any thread count.

use proptest::prelude::*;
use tricluster_obs::Histogram;

/// Values spanning the exact buckets, the log range, and u64 extremes.
fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..u64::MAX, 0..=200)
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_equals_recording_the_concatenation((a, b) in (values(), values())) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        prop_assert_eq!(merged.to_json().render(), hist_of(&concat).to_json().render());
    }

    #[test]
    fn merge_is_commutative((a, b) in (values(), values())) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.to_json().render(), ba.to_json().render());
    }

    #[test]
    fn merge_is_associative((a, b, c) in (values(), values(), values())) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ∪ b) ∪ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ∪ (b ∪ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left.to_json().render(), right.to_json().render());
    }

    #[test]
    fn split_point_does_not_matter(
        (vals, cut_seed) in (values(), 0usize..=200)
    ) {
        // any partition of the same stream merges to the same histogram —
        // this is exactly the single- vs multi-threaded mining situation
        let cut = if vals.is_empty() { 0 } else { cut_seed % (vals.len() + 1) };
        let mut split = hist_of(&vals[..cut]);
        split.merge(&hist_of(&vals[cut..]));
        prop_assert_eq!(split.to_json().render(), hist_of(&vals).to_json().render());
    }

    #[test]
    fn quantiles_are_ordered_and_bounded(vals in values()) {
        let h = hist_of(&vals);
        if vals.is_empty() {
            prop_assert_eq!(h.count(), 0);
        } else {
            let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
            prop_assert!(p50 <= p95 && p95 <= p99);
            prop_assert!(h.min() <= p50);
            prop_assert!(p99 <= h.max());
            prop_assert_eq!(h.count(), vals.len() as u64);
        }
    }
}
