//! Daemon-lifetime service metrics for `tricluster serve`.
//!
//! A [`ServiceRegistry`] outlives every job: where [`crate::metrics::Registry`]
//! aggregates one run's counter/span stream through the [`crate::EventSink`]
//! fan-out, this registry is written to directly by the daemon's admission,
//! queue, worker, and archive paths, and keeps accumulating across jobs for
//! the life of the process. [`render_openmetrics`] serializes job-lifecycle
//! counters and queue-wait/run/archive latency histograms together with
//! caller-sampled gauges (queue depth, admitted bytes, worker occupancy,
//! cache effectiveness) as the daemon's `GET /metrics` body.
//!
//! Like the per-run registry, this layer only observes. Nothing here feeds
//! back into admission or mining decisions, and none of it enters the
//! report's deterministic sections — a served job's clusters stay
//! byte-identical to a one-shot `mine` whether or not anyone scrapes.
//!
//! [`render_openmetrics`]: ServiceRegistry::render_openmetrics

use crate::metrics::{gauge, metric_name, nanos_le, render_histogram};
use crate::SpanStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Duration;

/// Process-lifetime aggregation of service telemetry.
///
/// Counters are relaxed atomics behind a read lock (the submission path is
/// latency-sensitive); latency observations take a short mutex per finished
/// job, far off any hot path. Gauges are intentionally *not* stored here:
/// they are instantaneous views of daemon state (queue depth, admitted
/// bytes), so the daemon samples them under its own lock at scrape time and
/// passes them to [`ServiceRegistry::render_openmetrics`].
#[derive(Default)]
pub struct ServiceRegistry {
    counters: RwLock<BTreeMap<&'static str, AtomicU64>>,
    latencies: Mutex<BTreeMap<&'static str, SpanStats>>,
}

impl ServiceRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to a lifecycle counter (see the `serve.*` names in
    /// [`crate::names`]).
    pub fn incr(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `delta` to a lifecycle counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        {
            let counters = read_lock(&self.counters);
            if let Some(c) = counters.get(name) {
                c.fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
        write_lock(&self.counters)
            .entry(name)
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of one counter (JSON surfaces and tests).
    pub fn counter_value(&self, name: &str) -> u64 {
        read_lock(&self.counters)
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Records one latency observation into the named family
    /// (log-bucketed; rendered as a `_seconds` histogram).
    pub fn observe(&self, name: &'static str, elapsed: Duration) {
        lock(&self.latencies)
            .entry(name)
            .or_default()
            .record(elapsed);
    }

    /// `(count, total)` of one latency family, `(0, 0)` if never observed
    /// (JSON surfaces and tests).
    pub fn latency_totals(&self, name: &str) -> (u64, Duration) {
        lock(&self.latencies)
            .get(name)
            .map(|s| (s.count, s.total))
            .unwrap_or((0, Duration::ZERO))
    }

    /// Renders the OpenMetrics text exposition: every counter as a
    /// `_total`, every latency family as a cumulative-bucket `_seconds`
    /// histogram, then the caller-sampled `gauges` (dotted names from
    /// [`crate::names`], instantaneous values). Terminated by `# EOF`.
    pub fn render_openmetrics(&self, gauges: &[(&'static str, f64)]) -> String {
        let mut out = String::new();
        for (name, value) in read_lock(&self.counters).iter() {
            let fam = metric_name(name);
            use std::fmt::Write as _;
            let _ = writeln!(out, "# TYPE {fam} counter");
            let _ = writeln!(out, "{fam}_total {}", value.load(Ordering::Relaxed));
        }
        for (name, stats) in lock(&self.latencies).iter() {
            let fam = format!("{}_seconds", metric_name(name));
            render_histogram(
                &mut out,
                &fam,
                stats.hist.buckets().map(|(_, hi, c)| (nanos_le(hi), c)),
                stats.count,
                stats.total.as_secs_f64(),
            );
        }
        for (name, value) in gauges {
            gauge(&mut out, &name.replace('.', "_"), *value);
        }
        out.push_str("# EOF\n");
        out
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn read_lock<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockReadGuard<'a, T> {
    l.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write_lock<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockWriteGuard<'a, T> {
    l.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::exposition::{parse_sample, Sample};
    use crate::names;

    #[test]
    fn registry_accumulates_counters_and_latencies() {
        let reg = ServiceRegistry::new();
        reg.incr(names::SV_JOBS_ACCEPTED);
        reg.incr(names::SV_JOBS_ACCEPTED);
        reg.add(names::SV_HTTP_REQUESTS, 7);
        reg.observe(names::SV_QUEUE_WAIT, Duration::from_millis(4));
        reg.observe(names::SV_QUEUE_WAIT, Duration::from_millis(12));
        assert_eq!(reg.counter_value(names::SV_JOBS_ACCEPTED), 2);
        assert_eq!(reg.counter_value(names::SV_HTTP_REQUESTS), 7);
        assert_eq!(reg.counter_value(names::SV_JOBS_FAILED), 0);
        let (count, total) = reg.latency_totals(names::SV_QUEUE_WAIT);
        assert_eq!(count, 2);
        assert_eq!(total, Duration::from_millis(16));
        assert_eq!(reg.latency_totals(names::SV_RUN), (0, Duration::ZERO));
    }

    // ---- satellite: golden exposition test for tricluster_serve_* -------
    //
    // Same structural checks as the per-run registry's golden test, run on
    // the service families: counters exactly once with exact values,
    // histogram buckets cumulative/monotone with +Inf == _count, gauges
    // present, `# EOF`-terminated — all through the shared hand-rolled
    // parser in `metrics::exposition`.
    #[test]
    fn serve_exposition_is_valid_openmetrics() {
        let reg = ServiceRegistry::new();
        for (name, delta) in [
            (names::SV_JOBS_ACCEPTED, 5u64),
            (names::SV_JOBS_REJECTED_QUEUE_FULL, 2),
            (names::SV_JOBS_COMPLETED, 4),
            (names::SV_JOBS_FAILED, 1),
            (names::SV_HTTP_REQUESTS, 31),
        ] {
            reg.add(name, delta);
        }
        for ms in [1u64, 3, 3, 40, 600] {
            reg.observe(names::SV_QUEUE_WAIT, Duration::from_millis(ms));
        }
        for ms in [20u64, 90, 90, 250] {
            reg.observe(names::SV_RUN, Duration::from_millis(ms));
        }
        let gauges = [
            (names::SV_QUEUE_DEPTH, 3.0),
            (names::SV_ADMITTED_BYTES, 1_048_576.0),
            (names::SV_WORKERS_BUSY, 2.0),
            (names::SV_CACHE_HITS, 9.0),
        ];
        let text = reg.render_openmetrics(&gauges);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(*lines.last().unwrap(), "# EOF", "EOF-terminated");

        let mut types: BTreeMap<String, String> = BTreeMap::new();
        let mut samples: Vec<Sample> = Vec::new();
        for line in &lines[..lines.len() - 1] {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (fam, ty) = rest.split_once(' ').expect("TYPE has family and kind");
                assert!(
                    matches!(ty, "counter" | "gauge" | "histogram"),
                    "unknown type {ty:?}"
                );
                assert!(
                    types.insert(fam.to_string(), ty.to_string()).is_none(),
                    "family {fam} typed twice"
                );
                continue;
            }
            assert!(!line.starts_with('#'), "unexpected comment {line:?}");
            samples.push(parse_sample(line, &types));
        }
        for s in &samples {
            assert!(
                s.family.starts_with("tricluster_serve_"),
                "service family {:?} carries the serve prefix",
                s.family
            );
            assert!(
                types.contains_key(&s.family),
                "sample for untyped family {:?}",
                s.family
            );
            assert!(s.value.is_finite());
        }
        // Counters: exactly one sample each, with the exact value.
        for (name, want) in [
            (names::SV_JOBS_ACCEPTED, 5.0),
            (names::SV_JOBS_REJECTED_QUEUE_FULL, 2.0),
            (names::SV_HTTP_REQUESTS, 31.0),
        ] {
            let fam = metric_name(name);
            let hits: Vec<&Sample> = samples.iter().filter(|s| s.family == fam).collect();
            assert_eq!(hits.len(), 1, "{fam} appears once");
            assert_eq!(hits[0].value, want, "{fam} value");
        }
        for (fam, ty) in &types {
            if ty == "counter" {
                let hits = samples.iter().filter(|s| s.family == *fam).count();
                assert_eq!(hits, 1, "counter {fam} appears exactly once");
            }
        }
        // Histograms: cumulative/monotone buckets ending at +Inf == _count.
        let mut histogram_families = 0;
        for (fam, ty) in &types {
            if ty != "histogram" {
                continue;
            }
            histogram_families += 1;
            let buckets: Vec<&Sample> = samples
                .iter()
                .filter(|s| s.family == *fam && s.labels.iter().any(|(k, _)| k == "le"))
                .collect();
            assert!(!buckets.is_empty(), "{fam} has buckets");
            let mut prev = 0.0;
            for b in &buckets {
                assert!(
                    b.value >= prev,
                    "{fam} bucket counts must be cumulative/monotone"
                );
                prev = b.value;
            }
            let (_, last_le) = buckets
                .last()
                .unwrap()
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .unwrap()
                .clone();
            assert_eq!(last_le, "+Inf", "{fam} ends with the +Inf bucket");
            let count = samples
                .iter()
                .filter(|s| s.family == *fam && s.labels.is_empty())
                .count();
            assert_eq!(count, 2, "{fam} has exactly _sum and _count");
            let count_needle = format!("{fam}_count ");
            let count = lines
                .iter()
                .find(|l| l.starts_with(&count_needle))
                .and_then(|l| l.rsplit_once(' '))
                .map(|(_, v)| v.parse::<f64>().unwrap())
                .expect("histogram _count present");
            assert_eq!(
                buckets.last().unwrap().value,
                count,
                "{fam} +Inf bucket equals _count"
            );
        }
        assert_eq!(histogram_families, 2, "queue_wait and run families");
        assert_eq!(
            types.get("tricluster_serve_job_queue_wait_seconds"),
            Some(&"histogram".to_string())
        );
        // Gauges render once each with the sampled value.
        for (name, want) in gauges {
            let fam = metric_name(name);
            assert_eq!(types.get(&fam), Some(&"gauge".to_string()), "{fam} typed");
            let hits: Vec<&Sample> = samples.iter().filter(|s| s.family == fam).collect();
            assert_eq!(hits.len(), 1, "{fam} appears once");
            assert_eq!(hits[0].value, want, "{fam} value");
        }
    }
}
