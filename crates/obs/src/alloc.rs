//! Global-allocator instrumentation: bytes allocated, live bytes, peak
//! live bytes, and allocation counts.
//!
//! [`TrackingAlloc`] wraps the system allocator and maintains process-wide
//! atomic counters. It is *not* installed by this crate — binaries opt in
//! behind their own `track-alloc` cargo feature:
//!
//! ```ignore
//! #[cfg(feature = "track-alloc")]
//! #[global_allocator]
//! static ALLOC: tricluster_obs::alloc::TrackingAlloc = TrackingAlloc::new();
//! ```
//!
//! Code that *reads* the counters (the miner's per-phase memory
//! accounting, the fig7 bench) calls [`snapshot`] unconditionally: it
//! returns `None` until the tracking allocator has observed at least one
//! allocation, so builds without the feature — where the statics never
//! move — behave exactly as before. All counter updates use relaxed
//! ordering; the numbers are statistics, not synchronization.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] wrapper around [`System`] that counts allocations.
pub struct TrackingAlloc;

impl TrackingAlloc {
    /// The allocator value to place in a `#[global_allocator]` static.
    pub const fn new() -> Self {
        TrackingAlloc
    }
}

impl Default for TrackingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn on_alloc(size: u64) {
    TOTAL_BYTES.fetch_add(size, Relaxed);
    TOTAL_ALLOCS.fetch_add(1, Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Relaxed) + size;
    PEAK_LIVE_BYTES.fetch_max(live, Relaxed);
}

#[inline]
fn on_dealloc(size: u64) {
    LIVE_BYTES.fetch_sub(size, Relaxed);
}

// SAFETY: delegates every allocation verbatim to `System`; the counter
// updates have no effect on the returned memory.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size() as u64);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // counted as one allocation of the new size plus a free of the
            // old block, which keeps LIVE_BYTES exact
            on_alloc(new_size as u64);
            on_dealloc(layout.size() as u64);
        }
        new_ptr
    }
}

/// A point-in-time copy of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Cumulative bytes handed out since process start.
    pub total_bytes: u64,
    /// Cumulative allocation calls since process start.
    pub total_allocs: u64,
    /// Bytes currently live (allocated and not yet freed).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` (since start or the last
    /// [`reset_peak`]).
    pub peak_live_bytes: u64,
}

impl MemSnapshot {
    /// Bytes allocated between `earlier` and `self`.
    pub fn bytes_since(&self, earlier: &MemSnapshot) -> u64 {
        self.total_bytes.saturating_sub(earlier.total_bytes)
    }

    /// Allocation calls between `earlier` and `self`.
    pub fn allocs_since(&self, earlier: &MemSnapshot) -> u64 {
        self.total_allocs.saturating_sub(earlier.total_allocs)
    }
}

/// Reads the tracking counters, or `None` when no tracking allocator is
/// installed (the counters have never moved).
pub fn snapshot() -> Option<MemSnapshot> {
    if TOTAL_ALLOCS.load(Relaxed) == 0 {
        return None;
    }
    Some(MemSnapshot {
        total_bytes: TOTAL_BYTES.load(Relaxed),
        total_allocs: TOTAL_ALLOCS.load(Relaxed),
        live_bytes: LIVE_BYTES.load(Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Relaxed),
    })
}

/// Restarts peak tracking from the current live size, so a caller can
/// measure the peak of one phase in isolation. No-op when tracking is not
/// installed.
pub fn reset_peak() {
    PEAK_LIVE_BYTES.store(LIVE_BYTES.load(Relaxed), Relaxed);
}

/// Allocator delta attributed to one pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseDelta {
    pub phase: &'static str,
    /// Bytes allocated while the phase ran.
    pub bytes: u64,
    /// Allocation calls while the phase ran.
    pub allocs: u64,
}

/// Whole-run allocator totals returned by [`PhaseAlloc::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunTotals {
    pub bytes: u64,
    pub allocs: u64,
    pub peak_live_bytes: u64,
}

/// Attributes allocator traffic to pipeline phases by sampling the
/// tracking counters at phase boundaries.
///
/// The caller marks each boundary with [`phase_end`](Self::phase_end); the
/// delta since the previous mark is credited to the named phase. When no
/// tracking allocator is installed every snapshot is `None`, no deltas are
/// recorded, and [`finish`](Self::finish) returns `None` — callers need no
/// feature gates.
#[derive(Debug, Default)]
pub struct PhaseAlloc {
    start: Option<MemSnapshot>,
    last: Option<MemSnapshot>,
    phases: Vec<PhaseDelta>,
}

impl PhaseAlloc {
    /// Starts attribution at the current counter values.
    pub fn begin() -> PhaseAlloc {
        let start = snapshot();
        PhaseAlloc {
            start,
            last: start,
            phases: Vec::new(),
        }
    }

    /// Closes the phase that ran since the previous boundary, crediting it
    /// with the allocator delta.
    pub fn phase_end(&mut self, phase: &'static str) {
        let (Some(prev), Some(now)) = (self.last, snapshot()) else {
            return;
        };
        self.phases.push(PhaseDelta {
            phase,
            bytes: now.bytes_since(&prev),
            allocs: now.allocs_since(&prev),
        });
        self.last = Some(now);
    }

    /// Closes the final phase and returns whole-run totals, or `None` when
    /// no tracking allocator is installed.
    pub fn finish(&mut self, final_phase: &'static str) -> Option<RunTotals> {
        self.phase_end(final_phase);
        let (start, end) = (self.start?, snapshot()?);
        Some(RunTotals {
            bytes: end.bytes_since(&start),
            allocs: end.allocs_since(&start),
            peak_live_bytes: end.peak_live_bytes,
        })
    }

    /// The recorded per-phase deltas, in boundary order.
    pub fn phases(&self) -> &[PhaseDelta] {
        &self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the allocator directly (it is not installed globally in
    /// tests) and checks the counter arithmetic.
    #[test]
    fn counters_track_alloc_and_free() {
        let a = TrackingAlloc::new();
        let layout = Layout::from_size_align(256, 8).unwrap();
        // SAFETY: paired alloc/dealloc with a valid layout.
        unsafe {
            let before = (
                TOTAL_BYTES.load(Relaxed),
                TOTAL_ALLOCS.load(Relaxed),
                LIVE_BYTES.load(Relaxed),
            );
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(TOTAL_BYTES.load(Relaxed), before.0 + 256);
            assert_eq!(TOTAL_ALLOCS.load(Relaxed), before.1 + 1);
            assert_eq!(LIVE_BYTES.load(Relaxed), before.2 + 256);
            assert!(PEAK_LIVE_BYTES.load(Relaxed) >= before.2 + 256);

            let snap = snapshot().expect("counters moved");
            assert!(snap.total_allocs >= 1);

            let p2 = a.realloc(p, layout, 512);
            assert!(!p2.is_null());
            assert_eq!(LIVE_BYTES.load(Relaxed), before.2 + 512);

            a.dealloc(p2, Layout::from_size_align(512, 8).unwrap());
            assert_eq!(LIVE_BYTES.load(Relaxed), before.2);

            let after = snapshot().unwrap();
            assert_eq!(after.bytes_since(&snap), 512);
            assert_eq!(after.allocs_since(&snap), 1);

            reset_peak();
            assert_eq!(PEAK_LIVE_BYTES.load(Relaxed), LIVE_BYTES.load(Relaxed));
        }
    }

    /// Phase attribution credits each boundary-to-boundary delta to the
    /// named phase. Allocations are driven through the allocator directly
    /// (other tests may run concurrently, so deltas are lower bounds).
    #[test]
    fn phase_alloc_attributes_deltas_to_phases() {
        let a = TrackingAlloc::new();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        // SAFETY: paired alloc/dealloc with a valid layout.
        unsafe {
            // move the counters so snapshot() is Some
            let warm = a.alloc(layout);
            assert!(!warm.is_null());
            a.dealloc(warm, layout);

            let mut pa = PhaseAlloc::begin();
            let p1 = a.alloc(layout);
            pa.phase_end("slices");
            let p2 = a.alloc(layout);
            let totals = pa.finish("prune").expect("tracking counters moved");
            a.dealloc(p1, layout);
            a.dealloc(p2, layout);

            let phases = pa.phases();
            assert_eq!(phases.len(), 2);
            assert_eq!(phases[0].phase, "slices");
            assert_eq!(phases[1].phase, "prune");
            assert!(phases[0].bytes >= 4096 && phases[0].allocs >= 1);
            assert!(phases[1].bytes >= 4096 && phases[1].allocs >= 1);
            assert!(totals.bytes >= phases[0].bytes + phases[1].bytes);
            assert!(totals.allocs >= 2);
            assert!(totals.peak_live_bytes > 0);
        }
    }

    /// Without an installed tracking allocator the whole API is inert. The
    /// counters are process-global, so this is only observable before any
    /// other test moves them — emulate by checking the None plumbing.
    #[test]
    fn phase_alloc_is_inert_without_snapshots() {
        let mut pa = PhaseAlloc {
            start: None,
            last: None,
            phases: Vec::new(),
        };
        pa.phase_end("slices");
        assert!(pa.finish("prune").is_none());
        assert!(pa.phases().is_empty());
    }
}
