//! Log-bucketed `u64` histograms (HDR-lite).
//!
//! A [`Histogram`] records value *distributions* where the existing
//! counters record totals: range widths, gene-set sizes, DFS depth and
//! fan-out, span durations. The design goals, in order:
//!
//! 1. **Determinism** — bucket boundaries are fixed (no adaptive
//!    resizing), every accumulator is an integer, and [`Histogram::merge`]
//!    is associative and commutative. Merging per-slice histograms in any
//!    order — or recording the same values from any thread schedule —
//!    yields bit-identical state, which is what lets run reports stay
//!    byte-stable across `--threads` settings.
//! 2. **Cheap recording** — one branch plus two or three array/word
//!    updates per value; no allocation after the bucket table has grown to
//!    cover the largest magnitude seen.
//! 3. **Bounded size** — values 0..16 get exact buckets; above that, each
//!    power-of-two octave is split into 8 sub-buckets, so the relative
//!    quantile error is at most 12.5% and the whole table never exceeds
//!    [`MAX_BUCKETS`] entries.

use crate::json::Json;

/// Exact buckets for values below this threshold (must be `2 * SUB`).
const EXACT: u64 = 16;
/// Sub-buckets per octave above the exact region.
const SUB: u64 = 8;
/// log2(SUB).
const SUB_BITS: u32 = 3;
/// Upper bound on the bucket table length (`u64::MAX` lands just below).
pub const MAX_BUCKETS: usize = (EXACT + (60 * SUB) + SUB) as usize;

/// Bucket index for a value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= 4
        let shift = msb - SUB_BITS;
        let sub = (v >> shift) & (SUB - 1);
        (EXACT + (msb as u64 - 4) * SUB + sub) as usize
    }
}

/// Inclusive `(lo, hi)` value bounds of a bucket.
fn bucket_bounds(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < EXACT {
        (index, index)
    } else {
        let msb = 4 + (index - EXACT) / SUB;
        let sub = (index - EXACT) % SUB;
        let shift = msb as u32 - SUB_BITS;
        let lo = (SUB + sub) << shift;
        let width = 1u64 << shift;
        (lo, lo + (width - 1))
    }
}

/// A mergeable log-bucketed histogram of `u64` values.
///
/// Tracks exact `count`, `sum`, `min`, and `max` alongside the bucket
/// table, so means are exact and quantiles are only as coarse as the
/// bucket resolution (≤ 12.5% relative error, exact below 16).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts, indexed by [`bucket_index`]; grown on demand and
    /// never larger than [`MAX_BUCKETS`].
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += n;
        self.sum += value as u128 * n as u128;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the `ceil(q·count)`-th smallest value, clamped to the
    /// exact `[min, max]` envelope. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(idx);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`. Associative and commutative: merging any
    /// permutation or grouping of the same histograms yields identical
    /// state.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Iterates non-empty buckets as `(lo, hi, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(|(idx, &c)| {
            if c == 0 {
                None
            } else {
                let (lo, hi) = bucket_bounds(idx);
                Some((lo, hi, c))
            }
        })
    }

    /// One-line human summary: `count` plus the min/p50/p95/p99/max/mean
    /// envelope.
    pub fn render_summary(&self) -> String {
        if self.count == 0 {
            return "empty".to_string();
        }
        format!(
            "n={} min={} p50={} p95={} p99={} max={} mean={:.1}",
            self.count,
            self.min(),
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max(),
            self.mean(),
        )
    }

    /// JSON object: exact summary statistics plus the sparse bucket table
    /// (`[lo, hi, count]` triples). All fields are integers except `mean`,
    /// so rendering is byte-stable for identical state.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets()
            .map(|(lo, hi, c)| Json::Arr(vec![Json::U64(lo), Json::U64(hi), Json::U64(c)]))
            .collect();
        Json::obj()
            .with("count", Json::U64(self.count))
            .with("sum", Json::U64(self.sum.min(u64::MAX as u128) as u64))
            .with("min", Json::U64(self.min()))
            .with("max", Json::U64(self.max()))
            .with("mean", Json::F64(self.mean()))
            .with("p50", Json::U64(self.quantile(0.50)))
            .with("p95", Json::U64(self.quantile(0.95)))
            .with("p99", Json::U64(self.quantile(0.99)))
            .with("buckets", Json::Arr(buckets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16u64 {
            let idx = bucket_index(v);
            assert_eq!(bucket_bounds(idx), (v, v));
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn buckets_partition_the_domain() {
        // consecutive bucket indices tile u64 without gaps or overlaps
        let mut expected_lo = 0u64;
        for idx in 0..MAX_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "bucket {idx} starts at its lo");
            assert!(hi >= lo);
            // every value in [lo, hi] maps back to idx
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            if hi == u64::MAX {
                return; // covered the whole domain
            }
            expected_lo = hi + 1;
        }
        panic!("bucket table exhausted before covering u64::MAX");
    }

    #[test]
    fn extreme_values_fit() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.counts.len() <= MAX_BUCKETS);
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // upper bucket bound: overshoots by at most 12.5%
        assert!((500..=563).contains(&p50), "p50={p50}");
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(0.0) >= 1);
        assert_eq!(h.mean(), 500.5);
    }

    #[test]
    fn merge_equals_bulk_recording() {
        let values = [0u64, 1, 7, 16, 17, 100, 1000, 65_536, u64::MAX];
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let (mut a, mut b) = (Histogram::new(), Histogram::new());
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
        // merging an empty histogram is the identity, both ways
        let mut id = whole.clone();
        id.merge(&Histogram::new());
        assert_eq!(id, whole);
        let mut from_empty = Histogram::new();
        from_empty.merge(&whole);
        assert_eq!(from_empty, whole);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        a.record_n(42, 5);
        let mut b = Histogram::new();
        for _ in 0..5 {
            b.record(42);
        }
        assert_eq!(a, b);
        a.record_n(7, 0); // no-op
        assert_eq!(a, b);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!((h.min(), h.max(), h.count()), (0, 0, 0));
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.render_summary(), "empty");
    }

    #[test]
    fn json_rendering_is_stable_and_sparse() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(200);
        let j = h.to_json().render();
        assert!(j.contains("\"count\":3"), "{j}");
        assert!(j.contains("\"min\":3"), "{j}");
        assert!(j.contains("\"max\":200"), "{j}");
        assert!(j.contains("[3,3,2]"), "{j}");
        // identical state renders identically
        let mut h2 = Histogram::new();
        h2.record(200);
        h2.record_n(3, 2);
        assert_eq!(h2.to_json().render(), j);
    }

    #[test]
    fn summary_line_contains_percentiles() {
        let mut h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let s = h.render_summary();
        for needle in ["n=100", "p50=", "p95=", "p99=", "max=99"] {
            assert!(s.contains(needle), "{s}");
        }
    }
}
