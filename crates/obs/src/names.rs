//! The counter and span taxonomy used across the pipeline.
//!
//! Names are dotted paths, grouped by phase. Keeping them in one place
//! makes the `--report-json` schema discoverable and greppable; the same
//! constants are referenced by the instrumented phases, the CLI renderer,
//! and the tests that pin determinism.

// ---- spans -------------------------------------------------------------

/// Wall-clock of the parallel per-slice fan-out (range graphs + biclusters).
pub const SPAN_SLICES_WALL: &str = "phase.slices.wall";
/// Summed per-slice range-graph construction time (CPU view; count = slices).
pub const SPAN_RANGE_GRAPH: &str = "phase.range_graph";
/// Summed per-slice bicluster DFS time (CPU view; count = slices).
pub const SPAN_BICLUSTER: &str = "phase.bicluster";
/// Tricluster DFS over time points.
pub const SPAN_TRICLUSTER: &str = "phase.tricluster";
/// Merge/delete post-processing.
pub const SPAN_PRUNE: &str = "phase.prune";
/// Quality-metric computation (only when metrics are requested).
pub const SPAN_METRICS: &str = "phase.metrics";

// ---- range graph -------------------------------------------------------

pub const RG_PAIRS: &str = "rangegraph.pairs";
pub const RG_RATIOS: &str = "rangegraph.ratios";
pub const RG_EDGES: &str = "rangegraph.edges";
pub const RG_RANGES_VALID: &str = "rangegraph.ranges.valid";
pub const RG_RANGES_EXTENDED: &str = "rangegraph.ranges.extended";
pub const RG_RANGES_SPLIT: &str = "rangegraph.ranges.split";
pub const RG_RANGES_PATCHED: &str = "rangegraph.ranges.patched";

// ---- bicluster DFS ------------------------------------------------------

pub const BC_NODES: &str = "bicluster.dfs.nodes";
/// DFS states skipped because an identical sample-set was already expanded.
pub const BC_DEDUP_HITS: &str = "bicluster.dfs.dedup_hits";
pub const BC_BUDGET_SPENT: &str = "bicluster.dfs.budget_spent";
pub const BC_COMBOS: &str = "bicluster.dfs.gene_combos";
pub const BC_RECORDED: &str = "bicluster.recorded";
pub const BC_REJECTED_DELTA: &str = "bicluster.rejected.delta";
pub const BC_REJECTED_SUBSUMED: &str = "bicluster.rejected.subsumed";
pub const BC_REPLACED: &str = "bicluster.replaced";
/// Branch-local survivors dropped at the cross-branch maximality merge
/// (subsumed by a cluster mined from an earlier sample-seed branch).
pub const BC_MERGE_SUBSUMED: &str = "bicluster.merge.subsumed";

// ---- tricluster DFS -----------------------------------------------------

pub const TC_NODES: &str = "tricluster.dfs.nodes";
/// DFS states skipped because an identical time-set was already expanded.
pub const TC_DEDUP_HITS: &str = "tricluster.dfs.dedup_hits";
pub const TC_BUDGET_SPENT: &str = "tricluster.dfs.budget_spent";
pub const TC_EXTENSIONS: &str = "tricluster.extensions";
pub const TC_COHERENCE_CHECKS: &str = "tricluster.coherence.checks";
pub const TC_REJECTED_INCOHERENT: &str = "tricluster.rejected.incoherent";
pub const TC_REJECTED_SMALL: &str = "tricluster.rejected.small";
pub const TC_RECORDED: &str = "tricluster.recorded";
pub const TC_REJECTED_SUBSUMED: &str = "tricluster.rejected.subsumed";
pub const TC_REPLACED: &str = "tricluster.replaced";

// ---- prune --------------------------------------------------------------

pub const PR_MERGED: &str = "prune.merged";
pub const PR_DELETED_PAIRWISE: &str = "prune.deleted.pairwise";
pub const PR_DELETED_MULTICOVER: &str = "prune.deleted.multicover";

// ---- metrics ------------------------------------------------------------

pub const MX_CELLS: &str = "metrics.cells";
pub const MX_COVERED: &str = "metrics.cells_distinct";

// ---- value histograms ---------------------------------------------------
//
// All histogram values are input-determined (never wall-clock), so the
// `histograms` report section is byte-identical across thread counts.

/// Ratio-range width as parts-per-million of the range's lower bound.
pub const H_RG_RANGE_WIDTH_PPM: &str = "rangegraph.range_width_ppm";
/// Gene-set size per retained range-graph edge.
pub const H_RG_EDGE_GENESET: &str = "rangegraph.edge_geneset_size";
/// Candidate sample-set size at each bicluster DFS expansion.
pub const H_BC_CANDIDATES: &str = "bicluster.dfs.candidate_set_size";
/// Bicluster DFS depth (|sample set|) at each expanded node.
pub const H_BC_DEPTH: &str = "bicluster.dfs.depth";
/// Children actually recursed into from each expanded bicluster node.
pub const H_BC_FANOUT: &str = "bicluster.dfs.fanout";
/// Candidate time-set size at each tricluster DFS expansion.
pub const H_TC_CANDIDATES: &str = "tricluster.dfs.candidate_set_size";
/// Tricluster DFS depth (|time set|) at each expanded node.
pub const H_TC_DEPTH: &str = "tricluster.dfs.depth";
/// Children actually recursed into from each expanded tricluster node.
pub const H_TC_FANOUT: &str = "tricluster.dfs.fanout";
/// Extra-cell percentage of the bounding box, for every cluster pair the
/// merge pass compared (low percentages are near-merges).
pub const H_PR_BOUNDING_EXTRA_PCT: &str = "prune.pair_bounding_extra_pct";
/// Biclusters found per slice (distribution over time slices).
pub const H_SLICE_BICLUSTERS: &str = "slice.biclusters";
/// Range-graph edges per slice (distribution over time slices).
pub const H_SLICE_EDGES: &str = "slice.edges";

// ---- logical memory accounting (deterministic, data-structure sizes) ----

/// Bytes of the loaded expression matrix (`n_genes * n_samples * n_times * 8`).
pub const M_MATRIX_BYTES: &str = "memory.matrix.bytes";
/// Peak bytes across per-slice range multigraphs (ranges + gene sets).
pub const M_RANGEGRAPH_BYTES: &str = "memory.rangegraph.bytes";
/// Bytes held by the final bicluster store across all slices.
pub const M_BICLUSTER_BYTES: &str = "memory.biclusters.bytes";
/// Bytes held by the final tricluster set.
pub const M_TRICLUSTER_BYTES: &str = "memory.triclusters.bytes";

// ---- measured allocator counters (only with a tracking allocator) -------

/// Cumulative bytes allocated during the whole mine.
pub const M_ALLOC_TOTAL_BYTES: &str = "memory.alloc.total_bytes";
/// Cumulative allocation calls during the whole mine.
pub const M_ALLOC_TOTAL_CALLS: &str = "memory.alloc.total_calls";
/// Peak live heap bytes observed during the mine.
pub const M_ALLOC_PEAK_BYTES: &str = "memory.alloc.peak_live_bytes";
/// Bytes allocated during the parallel per-slice phases (1+2).
pub const M_ALLOC_SLICES_BYTES: &str = "memory.alloc.slices.bytes";
/// Allocation calls during the parallel per-slice phases (1+2).
pub const M_ALLOC_SLICES_CALLS: &str = "memory.alloc.slices.calls";
/// Bytes allocated during the tricluster DFS phase.
pub const M_ALLOC_TRICLUSTERS_BYTES: &str = "memory.alloc.triclusters.bytes";
/// Allocation calls during the tricluster DFS phase.
pub const M_ALLOC_TRICLUSTERS_CALLS: &str = "memory.alloc.triclusters.calls";
/// Bytes allocated during merge/prune and final accounting.
pub const M_ALLOC_PRUNE_BYTES: &str = "memory.alloc.prune.bytes";
/// Allocation calls during merge/prune and final accounting.
pub const M_ALLOC_PRUNE_CALLS: &str = "memory.alloc.prune.calls";

// ---- timeline event names (Chrome trace export; never in the report) ----
//
// Phase spans on the timeline reuse the `SPAN_*` names above so the trace
// and the aggregate report speak the same vocabulary; the names below are
// timeline-only (fine-grained work units and degradation instants).

/// One time slice's range-graph + bicluster work (span; detail `t=<idx>`).
pub const T_SLICE: &str = "miner.slice";
/// One range-graph sample-pair computation (span).
pub const T_RG_PAIR: &str = "rangegraph.pair";
/// One bicluster DFS root branch (span).
pub const T_BC_BRANCH: &str = "bicluster.branch";
/// Merge-to-fixpoint pass of the prune phase (span).
pub const T_PR_MERGE: &str = "prune.merge_fixpoint";
/// Deletion passes (rules 1+2) of the prune phase (span).
pub const T_PR_DELETE: &str = "prune.delete";
/// Run ended truncated (instant; detail names the reason).
pub const T_TRUNCATED: &str = "miner.truncated";
/// Deadline budget tripped (instant, emitted once).
pub const T_DEADLINE: &str = "cancel.deadline";
/// Memory budget tripped (instant, emitted once).
pub const T_MEMORY: &str = "cancel.max_memory";
/// External cancellation request observed (instant, emitted once).
pub const T_CANCELLED: &str = "cancel.cancelled";
/// An isolated work unit panicked and was dropped (instant; detail names
/// the unit).
pub const T_WORKER_FAILURE: &str = "fault.worker_failure";
/// An armed failpoint fired (instant; detail carries the message).
pub const T_FAILPOINT: &str = "fault.failpoint";

// ---- service layer (daemon-lifetime ServiceRegistry; never in reports) --
//
// Counters, latency families, and gauges published by `tricluster serve`
// and exposed on the daemon's `GET /metrics`. These aggregate across jobs
// for the life of the process, unlike the per-run taxonomy above, and are
// kept strictly outside the deterministic report sections.

/// Jobs admitted past every admission check and enqueued.
pub const SV_JOBS_ACCEPTED: &str = "serve.jobs.accepted";
/// Submissions shed with 429 `queue_full`.
pub const SV_JOBS_REJECTED_QUEUE_FULL: &str = "serve.jobs.rejected_queue_full";
/// Submissions shed with 429 `memory_budget`.
pub const SV_JOBS_REJECTED_MEMORY: &str = "serve.jobs.rejected_memory";
/// Admitted jobs whose params were clamped under the tenant caps.
pub const SV_JOBS_CLAMPED: &str = "serve.jobs.clamped";
/// Jobs that finished with a report (possibly truncated).
pub const SV_JOBS_COMPLETED: &str = "serve.jobs.completed";
/// Jobs that finished with a structured error (panic or mine failure).
pub const SV_JOBS_FAILED: &str = "serve.jobs.failed";
/// Jobs cancelled while queued or running.
pub const SV_JOBS_CANCELLED: &str = "serve.jobs.cancelled";
/// HTTP requests answered by the daemon (any route, any status).
pub const SV_HTTP_REQUESTS: &str = "serve.http.requests";

// Latency families: rendered as `_seconds` histograms like the phase spans.

/// Time a job spent queued before a worker picked it up.
pub const SV_QUEUE_WAIT: &str = "serve.job.queue_wait";
/// Time a worker spent mining the job (including its report build).
pub const SV_RUN: &str = "serve.job.run";
/// Time spent archiving a finished job into the run ledger.
pub const SV_ARCHIVE: &str = "serve.job.archive";

// Gauges: sampled under the daemon lock at scrape time.

/// Jobs currently queued.
pub const SV_QUEUE_DEPTH: &str = "serve.queue.depth";
/// Dataset bytes currently admitted (queued + running).
pub const SV_ADMITTED_BYTES: &str = "serve.admitted.bytes";
/// Workers currently running a job.
pub const SV_WORKERS_BUSY: &str = "serve.workers.busy";
/// Finished job records currently retained for `GET /jobs/<id>`.
pub const SV_JOBS_RETAINED: &str = "serve.jobs.retained";
/// Engine dataset-cache hits since daemon start.
pub const SV_CACHE_HITS: &str = "serve.cache.hits";
/// Engine dataset-cache misses since daemon start.
pub const SV_CACHE_MISSES: &str = "serve.cache.misses";
/// Engine dataset-cache entries evicted by MRU truncation.
pub const SV_CACHE_EVICTIONS: &str = "serve.cache.evictions";

// Job-lifecycle timeline instants (Chrome trace; never in the report).

/// Job admitted and pushed onto the queue (instant; on the HTTP thread).
pub const T_SV_ENQUEUED: &str = "serve.job.enqueued";
/// Worker dequeued the job and started mining (instant).
pub const T_SV_STARTED: &str = "serve.job.started";
/// Job reached a terminal state (instant; detail names it).
pub const T_SV_FINISHED: &str = "serve.job.finished";
/// Cancellation observed for the job (instant).
pub const T_SV_CANCELLED: &str = "serve.job.cancelled";

// ---- fault accounting (only emitted when a run degrades) ----------------

/// Isolated worker units (slices, column pairs, DFS branches, phases) that
/// panicked and were dropped from the run. Absent from clean runs, so their
/// reports stay byte-identical to builds without the fault layer.
pub const F_WORKER_FAILURES: &str = "fault.worker_failures";

/// Every registered name, in declaration order. New constants must be
/// added here too — the uniqueness/charset test below guards the whole
/// taxonomy, and the metrics exposition derives its family names from
/// these strings (`.` → `_`), so a stray character or a collision would
/// corrupt scrapes silently.
pub const ALL: &[&str] = &[
    SPAN_SLICES_WALL,
    SPAN_RANGE_GRAPH,
    SPAN_BICLUSTER,
    SPAN_TRICLUSTER,
    SPAN_PRUNE,
    SPAN_METRICS,
    RG_PAIRS,
    RG_RATIOS,
    RG_EDGES,
    RG_RANGES_VALID,
    RG_RANGES_EXTENDED,
    RG_RANGES_SPLIT,
    RG_RANGES_PATCHED,
    BC_NODES,
    BC_DEDUP_HITS,
    BC_BUDGET_SPENT,
    BC_COMBOS,
    BC_RECORDED,
    BC_REJECTED_DELTA,
    BC_REJECTED_SUBSUMED,
    BC_REPLACED,
    BC_MERGE_SUBSUMED,
    TC_NODES,
    TC_DEDUP_HITS,
    TC_BUDGET_SPENT,
    TC_EXTENSIONS,
    TC_COHERENCE_CHECKS,
    TC_REJECTED_INCOHERENT,
    TC_REJECTED_SMALL,
    TC_RECORDED,
    TC_REJECTED_SUBSUMED,
    TC_REPLACED,
    PR_MERGED,
    PR_DELETED_PAIRWISE,
    PR_DELETED_MULTICOVER,
    MX_CELLS,
    MX_COVERED,
    H_RG_RANGE_WIDTH_PPM,
    H_RG_EDGE_GENESET,
    H_BC_CANDIDATES,
    H_BC_DEPTH,
    H_BC_FANOUT,
    H_TC_CANDIDATES,
    H_TC_DEPTH,
    H_TC_FANOUT,
    H_PR_BOUNDING_EXTRA_PCT,
    H_SLICE_BICLUSTERS,
    H_SLICE_EDGES,
    M_MATRIX_BYTES,
    M_RANGEGRAPH_BYTES,
    M_BICLUSTER_BYTES,
    M_TRICLUSTER_BYTES,
    M_ALLOC_TOTAL_BYTES,
    M_ALLOC_TOTAL_CALLS,
    M_ALLOC_PEAK_BYTES,
    M_ALLOC_SLICES_BYTES,
    M_ALLOC_SLICES_CALLS,
    M_ALLOC_TRICLUSTERS_BYTES,
    M_ALLOC_TRICLUSTERS_CALLS,
    M_ALLOC_PRUNE_BYTES,
    M_ALLOC_PRUNE_CALLS,
    T_SLICE,
    T_RG_PAIR,
    T_BC_BRANCH,
    T_PR_MERGE,
    T_PR_DELETE,
    T_TRUNCATED,
    T_DEADLINE,
    T_MEMORY,
    T_CANCELLED,
    T_WORKER_FAILURE,
    T_FAILPOINT,
    SV_JOBS_ACCEPTED,
    SV_JOBS_REJECTED_QUEUE_FULL,
    SV_JOBS_REJECTED_MEMORY,
    SV_JOBS_CLAMPED,
    SV_JOBS_COMPLETED,
    SV_JOBS_FAILED,
    SV_JOBS_CANCELLED,
    SV_HTTP_REQUESTS,
    SV_QUEUE_WAIT,
    SV_RUN,
    SV_ARCHIVE,
    SV_QUEUE_DEPTH,
    SV_ADMITTED_BYTES,
    SV_WORKERS_BUSY,
    SV_JOBS_RETAINED,
    SV_CACHE_HITS,
    SV_CACHE_MISSES,
    SV_CACHE_EVICTIONS,
    T_SV_ENQUEUED,
    T_SV_STARTED,
    T_SV_FINISHED,
    T_SV_CANCELLED,
    F_WORKER_FAILURES,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    /// Names are unique and `[a-z0-9._]+` with `.`-separated non-empty
    /// segments: uniqueness keeps report keys and metric families from
    /// colliding; the charset keeps the OpenMetrics exposition's
    /// `.` → `_` mapping injective-enough and escape-free.
    #[test]
    fn names_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        let mut sanitized = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate name {name:?}");
            assert!(
                sanitized.insert(name.replace('.', "_")),
                "{name:?} collides with another name after `.` → `_`"
            );
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "{name:?} strays outside [a-z0-9._]"
            );
            assert!(
                name.split('.').all(|segment| !segment.is_empty()),
                "{name:?} has an empty dotted segment"
            );
        }
    }
}
