//! The counter and span taxonomy used across the pipeline.
//!
//! Names are dotted paths, grouped by phase. Keeping them in one place
//! makes the `--report-json` schema discoverable and greppable; the same
//! constants are referenced by the instrumented phases, the CLI renderer,
//! and the tests that pin determinism.

// ---- spans -------------------------------------------------------------

/// Wall-clock of the parallel per-slice fan-out (range graphs + biclusters).
pub const SPAN_SLICES_WALL: &str = "phase.slices.wall";
/// Summed per-slice range-graph construction time (CPU view; count = slices).
pub const SPAN_RANGE_GRAPH: &str = "phase.range_graph";
/// Summed per-slice bicluster DFS time (CPU view; count = slices).
pub const SPAN_BICLUSTER: &str = "phase.bicluster";
/// Tricluster DFS over time points.
pub const SPAN_TRICLUSTER: &str = "phase.tricluster";
/// Merge/delete post-processing.
pub const SPAN_PRUNE: &str = "phase.prune";
/// Quality-metric computation (only when metrics are requested).
pub const SPAN_METRICS: &str = "phase.metrics";

// ---- range graph -------------------------------------------------------

pub const RG_PAIRS: &str = "rangegraph.pairs";
pub const RG_RATIOS: &str = "rangegraph.ratios";
pub const RG_EDGES: &str = "rangegraph.edges";
pub const RG_RANGES_VALID: &str = "rangegraph.ranges.valid";
pub const RG_RANGES_EXTENDED: &str = "rangegraph.ranges.extended";
pub const RG_RANGES_SPLIT: &str = "rangegraph.ranges.split";
pub const RG_RANGES_PATCHED: &str = "rangegraph.ranges.patched";

// ---- bicluster DFS ------------------------------------------------------

pub const BC_NODES: &str = "bicluster.dfs.nodes";
pub const BC_BUDGET_SPENT: &str = "bicluster.dfs.budget_spent";
pub const BC_COMBOS: &str = "bicluster.dfs.gene_combos";
pub const BC_RECORDED: &str = "bicluster.recorded";
pub const BC_REJECTED_DELTA: &str = "bicluster.rejected.delta";
pub const BC_REJECTED_SUBSUMED: &str = "bicluster.rejected.subsumed";
pub const BC_REPLACED: &str = "bicluster.replaced";

// ---- tricluster DFS -----------------------------------------------------

pub const TC_NODES: &str = "tricluster.dfs.nodes";
pub const TC_BUDGET_SPENT: &str = "tricluster.dfs.budget_spent";
pub const TC_EXTENSIONS: &str = "tricluster.extensions";
pub const TC_COHERENCE_CHECKS: &str = "tricluster.coherence.checks";
pub const TC_REJECTED_INCOHERENT: &str = "tricluster.rejected.incoherent";
pub const TC_REJECTED_SMALL: &str = "tricluster.rejected.small";
pub const TC_RECORDED: &str = "tricluster.recorded";
pub const TC_REJECTED_SUBSUMED: &str = "tricluster.rejected.subsumed";
pub const TC_REPLACED: &str = "tricluster.replaced";

// ---- prune --------------------------------------------------------------

pub const PR_MERGED: &str = "prune.merged";
pub const PR_DELETED_PAIRWISE: &str = "prune.deleted.pairwise";
pub const PR_DELETED_MULTICOVER: &str = "prune.deleted.multicover";

// ---- metrics ------------------------------------------------------------

pub const MX_CELLS: &str = "metrics.cells";
pub const MX_COVERED: &str = "metrics.cells_distinct";
