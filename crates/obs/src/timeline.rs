//! Per-worker timeline journals and Chrome Trace Event export.
//!
//! A [`Timeline`] collects *when* work ran and *on which worker* — the
//! information the aggregate [`RunReport`](crate::RunReport) deliberately
//! throws away. Each participating thread [`attach`](Timeline::attach)es
//! once and then records span begin/end and instant events into a
//! **thread-local ring buffer** (no locks, no cross-thread traffic on the
//! record path). When the attach guard drops, the buffer is flushed into
//! the timeline as one [`WorkerJournal`]; [`Timeline::to_chrome_json`]
//! merges the journals deterministically (sorted by worker id, events in
//! recorded order) into the Chrome Trace Event format that Perfetto and
//! `chrome://tracing` load directly.
//!
//! Recording goes through ambient free functions ([`begin`], [`end`],
//! [`instant`], [`span`]) rather than a sink reference, so deep layers with
//! no sink access (cancellation latches, fault isolation boundaries) can
//! drop instant events onto the timeline of whatever run their thread is
//! working for. When the current thread is not attached every ambient call
//! is a thread-local read plus one branch — the timeline costs nothing
//! unless a run opted in.
//!
//! Timeline data is wall-clock and scheduling dependent by nature, so none
//! of it may ever feed the byte-deterministic report sections; it is
//! exported only through [`Timeline::to_chrome_json`] /
//! [`Timeline::journals`].

use crate::json::Json;
use crate::{Event, EventSink, Histogram};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default per-worker journal capacity (events). At two events per span a
/// worker keeps the most recent ~32k spans; older entries are overwritten
/// ring-buffer style and surface as a `timeline.dropped` instant.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// What one recorded timeline entry marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (Chrome `ph:"B"`).
    Begin,
    /// The most recently opened span closed (Chrome `ph:"E"`).
    End,
    /// A point-in-time marker (Chrome `ph:"i"`): truncation, worker
    /// failure, fail-point hit.
    Instant,
}

/// One journal entry: kind, stable name, and nanoseconds since the
/// timeline's epoch. `detail` carries free-form context (e.g. `t=3`) and is
/// only materialized when the thread is attached.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    pub kind: EventKind,
    pub name: &'static str,
    pub ts_ns: u64,
    pub detail: Option<String>,
}

/// Everything one worker recorded, flushed when its attach guard dropped.
#[derive(Debug, Clone)]
pub struct WorkerJournal {
    /// Attach-order worker id (0 is the first thread to attach).
    pub worker: u32,
    /// Role label passed to [`Timeline::attach`] (`main`, `slice`, ...).
    pub label: &'static str,
    /// Events in recording order (oldest first after ring eviction).
    pub events: Vec<TimelineEvent>,
    /// Events evicted because the ring buffer was full.
    pub dropped: u64,
}

struct Inner {
    epoch: Instant,
    capacity: usize,
    next_worker: AtomicU32,
    journals: Mutex<Vec<WorkerJournal>>,
}

/// Shared collector of per-worker event journals for one mining run.
///
/// Cloning is shallow (`Arc`); all clones feed the same journal set. The
/// type implements [`EventSink`] as a discovery vehicle only — it records
/// nothing through the sink methods ([`EventSink::enabled`] stays `false`)
/// but answers [`EventSink::timeline`] with itself, so the miner finds it
/// through any `Tee`/[`Fanout`](crate::Fanout) composition.
#[derive(Clone)]
pub struct Timeline {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Timeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timeline")
            .field("capacity", &self.inner.capacity)
            .field("workers", &self.inner.next_worker.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    /// A timeline with the [`DEFAULT_CAPACITY`] per-worker ring size.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A timeline whose per-worker ring buffers hold at most `capacity`
    /// events (minimum 2, so a span's begin/end can coexist).
    pub fn with_capacity(capacity: usize) -> Self {
        Timeline {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                capacity: capacity.max(2),
                next_worker: AtomicU32::new(0),
                journals: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Registers the current thread as a worker of this timeline and makes
    /// it the target of the ambient record functions until the returned
    /// guard drops (which flushes the thread's ring buffer into the
    /// journal set). Re-attaching a thread that is already recording for
    /// this timeline returns an inert guard, so nested scopes are safe.
    pub fn attach(&self, label: &'static str) -> AttachGuard {
        CURRENT.with(|current| {
            let mut stack = current.borrow_mut();
            if stack.iter().any(|a| Arc::ptr_eq(&a.inner, &self.inner)) {
                return AttachGuard {
                    active: false,
                    _not_send: PhantomData,
                };
            }
            let worker = self.inner.next_worker.fetch_add(1, Ordering::Relaxed);
            stack.push(Active {
                inner: self.inner.clone(),
                worker,
                label,
                buf: VecDeque::new(),
                dropped: 0,
            });
            AttachGuard {
                active: true,
                _not_send: PhantomData,
            }
        })
    }

    /// Time elapsed since the timeline was created (its `ts` origin).
    pub fn elapsed(&self) -> Duration {
        self.inner.epoch.elapsed()
    }

    /// Snapshot of the flushed journals, sorted by worker id. Journals of
    /// still-attached threads are not included until their guards drop.
    pub fn journals(&self) -> Vec<WorkerJournal> {
        let mut journals = self
            .inner
            .journals
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        journals.sort_by_key(|j| j.worker);
        journals
    }

    /// Merges the journals into a Chrome Trace Event document
    /// (`{"traceEvents": [...]}`), loadable in Perfetto and
    /// `chrome://tracing`.
    ///
    /// The merge is deterministic given the journal set: journals are
    /// ordered by worker id and events stay in recorded order. Per journal
    /// it emits a `thread_name` metadata event, `B`/`E` span events
    /// (sanitized: an `E` with no open `B` is dropped, spans left open by
    /// ring eviction or a panic are closed at the journal's horizon), `i`
    /// instants, and — when the ring evicted anything — a trailing
    /// `timeline.dropped` instant carrying the count.
    pub fn to_chrome_json(&self) -> Json {
        let mut events = Vec::new();
        for journal in self.journals() {
            let tid = u64::from(journal.worker);
            events.push(
                Json::obj()
                    .with("ph", Json::Str("M".into()))
                    .with("ts", Json::U64(0))
                    .with("pid", Json::U64(TRACE_PID))
                    .with("tid", Json::U64(tid))
                    .with("name", Json::Str("thread_name".into()))
                    .with(
                        "args",
                        Json::obj().with(
                            "name",
                            Json::Str(format!("w{} {}", journal.worker, journal.label)),
                        ),
                    ),
            );
            let mut open: Vec<&'static str> = Vec::new();
            let mut horizon = 0u64;
            for e in &journal.events {
                horizon = horizon.max(e.ts_ns);
                let base = |ph: &str, e: &TimelineEvent| {
                    Json::obj()
                        .with("ph", Json::Str(ph.into()))
                        .with("ts", Json::F64(e.ts_ns as f64 / 1e3))
                        .with("pid", Json::U64(TRACE_PID))
                        .with("tid", Json::U64(tid))
                        .with("name", Json::Str(e.name.into()))
                };
                match e.kind {
                    EventKind::Begin => {
                        open.push(e.name);
                        let mut obj = base("B", e);
                        if let Some(d) = &e.detail {
                            obj =
                                obj.with("args", Json::obj().with("detail", Json::Str(d.clone())));
                        }
                        events.push(obj);
                    }
                    EventKind::End => {
                        // An end whose begin was evicted from the ring has
                        // no matching B on this tid: drop it.
                        if open.pop().is_none() {
                            continue;
                        }
                        events.push(base("E", e));
                    }
                    EventKind::Instant => {
                        let mut obj = base("i", e).with("s", Json::Str("t".into()));
                        if let Some(d) = &e.detail {
                            obj =
                                obj.with("args", Json::obj().with("detail", Json::Str(d.clone())));
                        }
                        events.push(obj);
                    }
                }
            }
            // Close spans left open (ring eviction of their E, or a worker
            // that died mid-span) at the journal's horizon.
            while let Some(name) = open.pop() {
                events.push(
                    Json::obj()
                        .with("ph", Json::Str("E".into()))
                        .with("ts", Json::F64(horizon as f64 / 1e3))
                        .with("pid", Json::U64(TRACE_PID))
                        .with("tid", Json::U64(tid))
                        .with("name", Json::Str(name.into())),
                );
            }
            if journal.dropped > 0 {
                events.push(
                    Json::obj()
                        .with("ph", Json::Str("i".into()))
                        .with("ts", Json::F64(horizon as f64 / 1e3))
                        .with("pid", Json::U64(TRACE_PID))
                        .with("tid", Json::U64(tid))
                        .with("name", Json::Str("timeline.dropped".into()))
                        .with("s", Json::Str("t".into()))
                        .with(
                            "args",
                            Json::obj().with("count", Json::U64(journal.dropped)),
                        ),
                );
            }
        }
        Json::obj()
            .with("displayTimeUnit", Json::Str("ms".into()))
            .with("traceEvents", Json::Arr(events))
    }

    /// Aggregates the journals bottom-up into folded flamegraph stacks —
    /// the `stack;parts N` line format consumed by inferno, speedscope,
    /// and `flamegraph.pl`. See [`fold_journals`] for the semantics.
    pub fn to_folded(&self) -> String {
        fold_journals(&self.journals())
    }
}

/// Folds a journal set into flamegraph stacks.
///
/// Each output line is `name;name;... N` where the stack path is the span
/// nesting at some point of the run and `N` is the stack's **self time** in
/// microseconds — time spent in the leaf frame with none of its children
/// open. A frame's *total* time is therefore its own line plus every line
/// below it, which is exactly the self/total separation flamegraph tools
/// reconstruct when they render widths.
///
/// Worker journals are re-rooted under the coordinating thread's phase
/// spans: a `main`-labeled journal's top-level frames define phase windows
/// (all journals share the timeline epoch, so timestamps are comparable),
/// and any other journal's top-level frames are prefixed with the window
/// containing their begin instant. Stack roots thus stay the pipeline
/// phases even for work recorded on pool threads. On multi-threaded runs
/// the folded totals are CPU time summed across workers, so a phase's total
/// can legitimately exceed its wall-clock span.
///
/// Sanitization mirrors [`Timeline::to_chrome_json`]: an `End` with no open
/// `Begin` (ring eviction) is dropped, and frames left open are closed at
/// the journal's horizon. Instants carry no duration and are ignored. The
/// output is deterministic given the journal set: journals are folded in
/// worker order and lines are emitted in lexicographic stack order.
pub fn fold_journals(journals: &[WorkerJournal]) -> String {
    use std::collections::BTreeMap;

    struct Frame {
        name: &'static str,
        start: u64,
        child_ns: u64,
    }

    /// Closes the top frame at `end_ts`, crediting self time to `agg` and
    /// total time to the parent's child accumulator.
    fn pop_frame(
        stack: &mut Vec<Frame>,
        end_ts: u64,
        root: Option<&'static str>,
        agg: &mut BTreeMap<String, u64>,
    ) {
        let Some(f) = stack.pop() else {
            return;
        };
        let total = end_ts.saturating_sub(f.start);
        let self_ns = total.saturating_sub(f.child_ns);
        let mut parts: Vec<&str> = Vec::with_capacity(stack.len() + 2);
        parts.extend(root);
        parts.extend(stack.iter().map(|fr| fr.name));
        parts.push(f.name);
        *agg.entry(parts.join(";")).or_insert(0) += self_ns;
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += total;
        }
    }

    // Pass 1: the coordinating thread's top-level frames become the phase
    // windows worker journals re-root under.
    let mut windows: Vec<(u64, u64, &'static str)> = Vec::new();
    for journal in journals.iter().filter(|j| j.label == "main") {
        let mut open: Vec<(&'static str, u64)> = Vec::new();
        let mut horizon = 0u64;
        for e in &journal.events {
            horizon = horizon.max(e.ts_ns);
            match e.kind {
                EventKind::Begin => open.push((e.name, e.ts_ns)),
                EventKind::End => {
                    if let Some((name, start)) = open.pop() {
                        if open.is_empty() {
                            windows.push((start, e.ts_ns, name));
                        }
                    }
                }
                EventKind::Instant => {}
            }
        }
        while let Some((name, start)) = open.pop() {
            if open.is_empty() {
                windows.push((start, horizon, name));
            }
        }
    }

    // Pass 2: fold every journal, re-rooting non-main top-level frames into
    // the phase window containing their begin instant (frames outside every
    // window — e.g. work recorded before the phases opened — root as-is).
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for journal in journals {
        let reroot = journal.label != "main";
        let root_of = |start: u64| -> Option<&'static str> {
            if !reroot {
                return None;
            }
            windows
                .iter()
                .find(|&&(s, e, _)| s <= start && start <= e)
                .map(|&(_, _, name)| name)
        };
        let mut stack: Vec<Frame> = Vec::new();
        let mut root: Option<&'static str> = None;
        let mut horizon = 0u64;
        for e in &journal.events {
            horizon = horizon.max(e.ts_ns);
            match e.kind {
                EventKind::Begin => {
                    if stack.is_empty() {
                        root = root_of(e.ts_ns);
                    }
                    stack.push(Frame {
                        name: e.name,
                        start: e.ts_ns,
                        child_ns: 0,
                    });
                }
                EventKind::End => pop_frame(&mut stack, e.ts_ns, root, &mut agg),
                EventKind::Instant => {}
            }
        }
        while !stack.is_empty() {
            pop_frame(&mut stack, horizon, root, &mut agg);
        }
    }

    let mut out = String::new();
    for (stack, ns) in agg {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&(ns / 1_000).to_string());
        out.push('\n');
    }
    out
}

/// The single `pid` all timeline events share (one process, many workers).
const TRACE_PID: u64 = 1;

impl EventSink for Timeline {
    fn enabled(&self) -> bool {
        false
    }
    fn event(&self, _event: Event) {}
    fn histogram(&self, _name: &'static str, _hist: &Histogram) {}
    fn timeline(&self) -> Option<&Timeline> {
        Some(self)
    }
}

/// The current thread's ring buffer for one timeline.
struct Active {
    inner: Arc<Inner>,
    worker: u32,
    label: &'static str,
    buf: VecDeque<TimelineEvent>,
    dropped: u64,
}

thread_local! {
    /// Stack of timelines this thread records for; ambient calls hit the
    /// top. Depth is 1 in practice (2 transiently under nested mines).
    static CURRENT: RefCell<Vec<Active>> = const { RefCell::new(Vec::new()) };
}

/// RAII registration of a thread with a [`Timeline`] (see
/// [`Timeline::attach`]). Dropping flushes the thread's ring buffer into
/// the timeline's journal set.
#[must_use = "dropping the guard immediately detaches the thread again"]
pub struct AttachGuard {
    active: bool,
    /// Attach/detach manipulate a thread-local stack, so the guard must be
    /// dropped on the thread that created it.
    _not_send: PhantomData<*const ()>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        CURRENT.with(|current| {
            let Some(active) = current.borrow_mut().pop() else {
                return;
            };
            let journal = WorkerJournal {
                worker: active.worker,
                label: active.label,
                events: active.buf.into_iter().collect(),
                dropped: active.dropped,
            };
            active
                .inner
                .journals
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push(journal);
        });
    }
}

/// Whether the current thread is attached to any timeline. Lets callers
/// skip building expensive details; the record functions check anyway.
pub fn is_attached() -> bool {
    CURRENT.with(|current| match current.try_borrow() {
        Ok(stack) => !stack.is_empty(),
        Err(_) => false,
    })
}

fn record(kind: EventKind, name: &'static str, detail: Option<&mut dyn FnMut() -> String>) {
    CURRENT.with(|current| {
        // try_borrow_mut: a detail closure that itself records (re-entry)
        // must degrade to a no-op, not a panic.
        let Ok(mut stack) = current.try_borrow_mut() else {
            return;
        };
        let Some(active) = stack.last_mut() else {
            return;
        };
        let ts_ns = active.inner.epoch.elapsed().as_nanos() as u64;
        if active.buf.len() >= active.inner.capacity {
            active.buf.pop_front();
            active.dropped += 1;
        }
        active.buf.push_back(TimelineEvent {
            kind,
            name,
            ts_ns,
            detail: detail.map(|f| f()),
        });
    });
}

/// Opens a span on the current thread's timeline (no-op when detached).
#[inline]
pub fn begin(name: &'static str) {
    record(EventKind::Begin, name, None);
}

/// Like [`begin`], attaching a lazily built detail string (only evaluated
/// when the thread is attached).
#[inline]
pub fn begin_with(name: &'static str, detail: impl FnOnce() -> String) {
    if is_attached() {
        let mut detail = Some(detail);
        record(
            EventKind::Begin,
            name,
            Some(&mut move || (detail.take().expect("called once"))()),
        );
    }
}

/// Closes the most recently opened span (no-op when detached).
#[inline]
pub fn end(name: &'static str) {
    record(EventKind::End, name, None);
}

/// Records an instant event (no-op when detached).
#[inline]
pub fn instant(name: &'static str) {
    record(EventKind::Instant, name, None);
}

/// Like [`instant`], attaching a lazily built detail string.
#[inline]
pub fn instant_with(name: &'static str, detail: impl FnOnce() -> String) {
    if is_attached() {
        let mut detail = Some(detail);
        record(
            EventKind::Instant,
            name,
            Some(&mut move || (detail.take().expect("called once"))()),
        );
    }
}

/// RAII span: [`begin`] now, [`end`] on drop. Zero-cost when detached.
#[must_use = "dropping the guard ends the span immediately"]
pub struct SpanGuard {
    name: &'static str,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        end(self.name);
    }
}

/// Opens a span closed when the returned guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    begin(name);
    SpanGuard {
        name,
        _not_send: PhantomData,
    }
}

/// Like [`span`], with a lazily built detail string on the begin event.
#[inline]
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    begin_with(name, detail);
    SpanGuard {
        name,
        _not_send: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(j: &WorkerJournal) -> Vec<&'static str> {
        j.events.iter().map(|e| e.name).collect()
    }

    #[test]
    fn detached_thread_records_nothing() {
        assert!(!is_attached());
        begin("x");
        end("x");
        instant("y");
        let _s = span("z");
    }

    #[test]
    fn attach_records_and_flushes_on_drop() {
        let tl = Timeline::new();
        {
            let _g = tl.attach("main");
            assert!(is_attached());
            assert!(tl.journals().is_empty(), "flushed only on detach");
            let _s = span_with("phase", || "t=0".into());
            instant("tick");
        }
        assert!(!is_attached());
        let journals = tl.journals();
        assert_eq!(journals.len(), 1);
        assert_eq!(journals[0].worker, 0);
        assert_eq!(journals[0].label, "main");
        assert_eq!(names(&journals[0]), ["phase", "tick", "phase"]);
        assert_eq!(journals[0].events[0].kind, EventKind::Begin);
        assert_eq!(journals[0].events[0].detail.as_deref(), Some("t=0"));
        assert_eq!(journals[0].events[2].kind, EventKind::End);
        assert_eq!(journals[0].dropped, 0);
    }

    #[test]
    fn nested_attach_to_same_timeline_is_inert() {
        let tl = Timeline::new();
        let _outer = tl.attach("main");
        {
            let _inner = tl.attach("again");
            instant("once");
        }
        // the inner guard must not have flushed or popped the journal
        assert!(is_attached());
        drop(_outer);
        let journals = tl.journals();
        assert_eq!(journals.len(), 1);
        assert_eq!(names(&journals[0]), ["once"]);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let tl = Timeline::with_capacity(4);
        {
            let _g = tl.attach("w");
            for _ in 0..6 {
                instant("e");
            }
        }
        let j = &tl.journals()[0];
        assert_eq!(j.events.len(), 4);
        assert_eq!(j.dropped, 2);
    }

    #[test]
    fn workers_get_distinct_ids_across_threads() {
        let tl = Timeline::new();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _g = tl.attach("worker");
                    let _s = span("work");
                });
            }
        });
        let journals = tl.journals();
        assert_eq!(journals.len(), 3);
        let ids: Vec<u32> = journals.iter().map(|j| j.worker).collect();
        assert_eq!(ids, [0, 1, 2], "journals() sorts by worker id");
    }

    #[test]
    fn chrome_export_has_required_fields_and_balanced_spans() {
        let tl = Timeline::new();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _g = tl.attach("worker");
                    let _outer = span("outer");
                    let _inner = span("inner");
                    instant_with("mark", || "detail".into());
                });
            }
        });
        let doc = tl.to_chrome_json();
        let text = doc.render();
        let parsed = Json::parse(&text).expect("trace renders as valid JSON");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        let mut balance = std::collections::HashMap::new();
        for e in events {
            let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph");
            assert!(e.get("ts").and_then(|v| v.as_f64()).is_some(), "ts");
            assert!(e.get("pid").and_then(|v| v.as_u64()).is_some(), "pid");
            let tid = e.get("tid").and_then(|v| v.as_u64()).expect("tid");
            assert!(e.get("name").and_then(|v| v.as_str()).is_some(), "name");
            match ph {
                "B" => *balance.entry(tid).or_insert(0i64) += 1,
                "E" => *balance.entry(tid).or_insert(0i64) -= 1,
                "i" | "M" => {}
                other => panic!("unexpected ph {other:?}"),
            }
        }
        assert!(balance.values().all(|&v| v == 0), "unbalanced: {balance:?}");
        // two workers -> two thread_name metadata events
        let metas = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
            .count();
        assert_eq!(metas, 2);
    }

    #[test]
    fn export_sanitizes_orphaned_ends_and_open_begins() {
        let tl = Timeline::new();
        {
            let _g = tl.attach("w");
            end("orphan"); // no matching begin
            begin("left_open"); // never ended
            instant("tick");
        }
        let doc = tl.to_chrome_json();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let phs: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|v| v.as_str()))
            .collect();
        // M, B(left_open), i(tick), synthetic E — the orphan E is gone
        assert_eq!(phs, ["M", "B", "i", "E"]);
    }

    fn fold_map(folded: &str) -> std::collections::BTreeMap<String, u64> {
        folded
            .lines()
            .map(|l| {
                let (stack, n) = l.rsplit_once(' ').expect("stack<space>count");
                (stack.to_string(), n.parse().expect("count is a number"))
            })
            .collect()
    }

    fn ev(kind: EventKind, name: &'static str, ts_ns: u64) -> TimelineEvent {
        TimelineEvent {
            kind,
            name,
            ts_ns,
            detail: None,
        }
    }

    #[test]
    fn folding_computes_self_times_and_reroots_workers() {
        let main = WorkerJournal {
            worker: 0,
            label: "main",
            events: vec![
                ev(EventKind::Begin, "phase.slices.wall", 0),
                ev(EventKind::End, "phase.slices.wall", 100_000),
                ev(EventKind::Begin, "phase.tricluster", 100_000),
                ev(EventKind::Begin, "tricluster.dfs", 120_000),
                ev(EventKind::Instant, "miner.truncated", 150_000),
                ev(EventKind::End, "tricluster.dfs", 180_000),
                ev(EventKind::End, "phase.tricluster", 200_000),
            ],
            dropped: 0,
        };
        // a pool worker whose frames began inside the slices window
        let slice = WorkerJournal {
            worker: 1,
            label: "slice",
            events: vec![
                ev(EventKind::Begin, "miner.slice", 10_000),
                ev(EventKind::Begin, "rangegraph.pair", 20_000),
                ev(EventKind::End, "rangegraph.pair", 40_000),
                ev(EventKind::End, "miner.slice", 60_000),
            ],
            dropped: 0,
        };
        let folded = fold_journals(&[main, slice]);
        let map = fold_map(&folded);
        // main: slices self = 100 µs; tricluster total 100 µs minus the
        // 60 µs dfs child = 40 µs self; dfs self = 60 µs
        assert_eq!(map["phase.slices.wall"], 100);
        assert_eq!(map["phase.tricluster"], 40);
        assert_eq!(map["phase.tricluster;tricluster.dfs"], 60);
        // worker frames re-rooted under the containing phase window
        assert_eq!(map["phase.slices.wall;miner.slice"], 30);
        assert_eq!(map["phase.slices.wall;miner.slice;rangegraph.pair"], 20);
        assert_eq!(map.len(), 5, "instants fold to nothing: {folded}");
        // lexicographic line order (deterministic output)
        let stacks: Vec<&str> = folded
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().0)
            .collect();
        let mut sorted = stacks.clone();
        sorted.sort_unstable();
        assert_eq!(stacks, sorted);
    }

    #[test]
    fn folding_sanitizes_orphans_and_closes_open_frames_at_horizon() {
        let j = WorkerJournal {
            worker: 0,
            label: "main",
            events: vec![
                ev(EventKind::End, "orphan", 5_000),
                ev(EventKind::Begin, "a", 10_000),
                ev(EventKind::Begin, "b", 20_000),
                ev(EventKind::Instant, "tick", 25_000),
            ],
            dropped: 0,
        };
        let map = fold_map(&fold_journals(&[j]));
        assert!(!map.contains_key("orphan"));
        // both frames closed at the 25 µs horizon
        assert_eq!(map["a;b"], 5);
        assert_eq!(map["a"], 10);
    }

    #[test]
    fn folding_roots_uncovered_worker_frames_as_is() {
        // no main journal at all: worker stacks keep their own roots
        let j = WorkerJournal {
            worker: 3,
            label: "slice",
            events: vec![
                ev(EventKind::Begin, "miner.slice", 0),
                ev(EventKind::End, "miner.slice", 7_000),
            ],
            dropped: 0,
        };
        let map = fold_map(&fold_journals(&[j]));
        assert_eq!(map["miner.slice"], 7);
    }

    #[test]
    fn to_folded_on_a_live_timeline_matches_its_journals() {
        let tl = Timeline::new();
        {
            let _g = tl.attach("main");
            let _s = span("phase.prune");
            std::thread::sleep(Duration::from_millis(2));
        }
        let folded = tl.to_folded();
        assert_eq!(folded, fold_journals(&tl.journals()));
        let map = fold_map(&folded);
        assert!(map["phase.prune"] >= 2_000, "{folded}");
    }

    #[test]
    fn timeline_is_discoverable_as_a_sink() {
        let tl = Timeline::new();
        let sink: &dyn EventSink = &tl;
        assert!(!sink.enabled());
        assert!(!sink.wants_histograms());
        assert!(sink.timeline().is_some());
        assert!(crate::NullSink.timeline().is_none());
    }
}
