//! Live progress telemetry for long mining runs.
//!
//! A [`Progress`] is a bag of relaxed atomic gauges the pipeline bumps as
//! it discovers and completes work (slices, range-graph pairs, DFS
//! branches, recorded candidates, charged logical bytes). Nothing ever
//! reads the gauges on the mining path, and bumping a relaxed atomic
//! cannot influence scheduling-visible state — so progress reporting can
//! never perturb the byte-deterministic report sections.
//!
//! A [`ProgressTicker`] owns a background thread that snapshots the gauges
//! every `interval` and writes one JSON line per tick (plus a final line
//! when stopped), giving `tricluster mine --progress` its heartbeat
//! without any coordination with the mining threads.
//!
//! Discovery: the miner asks its sink for [`EventSink::progress`]; wrap a
//! `Progress` in a [`ProgressSink`] and compose it into the run's sink
//! (e.g. via [`Fanout`](crate::Fanout)) to opt a run in. When no sink
//! answers, the pipeline's `Option<Arc<Progress>>` stays `None` and every
//! update site is a branch on a `None` — the feature costs nothing when
//! disabled.

use crate::json::Json;
use crate::EventSink;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Coarse pipeline phase, for the `"phase"` field of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Before the slice fan-out starts.
    Init,
    /// Per-time-slice range-graph construction + bicluster mining.
    Slices,
    /// Cross-time tricluster DFS.
    Tricluster,
    /// Merge/prune post-processing.
    Prune,
    /// Pipeline finished (the final snapshot reports this).
    Done,
}

impl Phase {
    /// Every phase, in pipeline order (used by the metrics exposition's
    /// one-hot phase gauge).
    pub const ALL: [Phase; 5] = [
        Phase::Init,
        Phase::Slices,
        Phase::Tricluster,
        Phase::Prune,
        Phase::Done,
    ];

    /// Stable lowercase name used in progress JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Init => "init",
            Phase::Slices => "slices",
            Phase::Tricluster => "tricluster",
            Phase::Prune => "prune",
            Phase::Done => "done",
        }
    }

    fn from_index(i: usize) -> Phase {
        match i {
            0 => Phase::Init,
            1 => Phase::Slices,
            2 => Phase::Tricluster,
            3 => Phase::Prune,
            _ => Phase::Done,
        }
    }
}

/// Budget limits mirrored from the run's `CancelToken` configuration, so
/// snapshots can report proximity to each ceiling.
#[derive(Debug, Clone, Copy, Default)]
struct Budgets {
    deadline: Option<Duration>,
    max_memory: Option<u64>,
    max_candidates: Option<u64>,
}

/// Shared, lock-free-on-the-update-path progress gauges for one run.
///
/// All counters are monotone except [`set_logical_bytes`]
/// (a high-water gauge) and [`set_phase`]. Updates use relaxed atomics;
/// readers (the ticker thread) only ever observe, never steer.
///
/// [`set_logical_bytes`]: Progress::set_logical_bytes
/// [`set_phase`]: Progress::set_phase
#[derive(Debug)]
pub struct Progress {
    started: Instant,
    phase: AtomicUsize,
    slices_total: AtomicU64,
    slices_done: AtomicU64,
    pairs_total: AtomicU64,
    pairs_done: AtomicU64,
    branches_total: AtomicU64,
    branches_done: AtomicU64,
    candidates: AtomicU64,
    budget_spent: AtomicU64,
    logical_bytes: AtomicU64,
    budgets: Mutex<Budgets>,
}

impl Default for Progress {
    fn default() -> Self {
        Self::new()
    }
}

impl Progress {
    pub fn new() -> Self {
        Progress {
            started: Instant::now(),
            phase: AtomicUsize::new(0),
            slices_total: AtomicU64::new(0),
            slices_done: AtomicU64::new(0),
            pairs_total: AtomicU64::new(0),
            pairs_done: AtomicU64::new(0),
            branches_total: AtomicU64::new(0),
            branches_done: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            budget_spent: AtomicU64::new(0),
            logical_bytes: AtomicU64::new(0),
            budgets: Mutex::new(Budgets::default()),
        }
    }

    /// Mirrors the run's budget configuration into snapshots (called once
    /// by the miner before work starts).
    pub fn set_budgets(
        &self,
        deadline: Option<Duration>,
        max_memory: Option<u64>,
        max_candidates: Option<u64>,
    ) {
        *self
            .budgets
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Budgets {
            deadline,
            max_memory,
            max_candidates,
        };
    }

    /// Enters a pipeline phase.
    pub fn set_phase(&self, phase: Phase) {
        self.phase.store(phase as usize, Ordering::Relaxed);
    }

    /// Current phase (as last set).
    pub fn phase(&self) -> Phase {
        Phase::from_index(self.phase.load(Ordering::Relaxed))
    }

    /// `n` more time slices were discovered.
    pub fn add_slices_total(&self, n: u64) {
        self.slices_total.fetch_add(n, Ordering::Relaxed);
    }

    /// One time slice finished (range graph + biclusters).
    pub fn slice_done(&self) {
        self.slices_done.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` more range-graph sample pairs were discovered.
    pub fn add_pairs_total(&self, n: u64) {
        self.pairs_total.fetch_add(n, Ordering::Relaxed);
    }

    /// One range-graph pair was computed.
    pub fn pair_done(&self) {
        self.pairs_done.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` more DFS root branches were discovered.
    pub fn add_branches_total(&self, n: u64) {
        self.branches_total.fetch_add(n, Ordering::Relaxed);
    }

    /// One DFS root branch completed.
    pub fn branch_done(&self) {
        self.branches_done.fetch_add(1, Ordering::Relaxed);
    }

    /// A candidate cluster was recorded into a maximal store.
    pub fn candidate_recorded(&self) {
        self.candidates.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` units of the candidate budget were consumed.
    pub fn add_budget_spent(&self, n: u64) {
        self.budget_spent.fetch_add(n, Ordering::Relaxed);
    }

    /// Updates the logical-bytes gauge to the latest charged total.
    pub fn set_logical_bytes(&self, bytes: u64) {
        self.logical_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Candidates recorded so far (test hook).
    pub fn candidates(&self) -> u64 {
        self.candidates.load(Ordering::Relaxed)
    }

    /// One coherent-enough point-in-time read of every gauge (each gauge
    /// is read once, relaxed — values from a racing update may be one
    /// bump apart, which is fine for telemetry). Both the JSON heartbeat
    /// and the OpenMetrics exposition render from this.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let elapsed_secs = self.started.elapsed().as_secs_f64();
        let logical_bytes = load(&self.logical_bytes);
        let budget_spent = load(&self.budget_spent);
        let budgets = *self
            .budgets
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let frac = |used: f64, limit: f64| {
            if limit > 0.0 {
                (used / limit).min(1.0)
            } else {
                1.0
            }
        };
        let mut gauges = Vec::new();
        if let Some(deadline) = budgets.deadline {
            let limit = deadline.as_secs_f64();
            gauges.push(BudgetGauge {
                name: "deadline",
                limit,
                used: elapsed_secs,
                used_frac: frac(elapsed_secs, limit),
            });
        }
        if let Some(limit) = budgets.max_memory {
            gauges.push(BudgetGauge {
                name: "memory",
                limit: limit as f64,
                used: logical_bytes as f64,
                used_frac: frac(logical_bytes as f64, limit as f64),
            });
        }
        if let Some(limit) = budgets.max_candidates {
            gauges.push(BudgetGauge {
                name: "candidates",
                limit: limit as f64,
                used: budget_spent as f64,
                used_frac: frac(budget_spent as f64, limit as f64),
            });
        }
        ProgressSnapshot {
            elapsed_secs,
            phase: self.phase(),
            slices_done: load(&self.slices_done),
            slices_total: load(&self.slices_total),
            pairs_done: load(&self.pairs_done),
            pairs_total: load(&self.pairs_total),
            branches_done: load(&self.branches_done),
            branches_total: load(&self.branches_total),
            candidates: load(&self.candidates),
            budget_spent,
            logical_bytes,
            budgets: gauges,
        }
    }

    /// One progress snapshot as a JSON object:
    ///
    /// ```json
    /// {"progress":{"elapsed_secs":…,"phase":"slices",
    ///   "slices":{"done":…,"total":…},"pairs":{…},"branches":{…},
    ///   "candidates":…,"logical_bytes":…,
    ///   "budgets":{"deadline":{"limit_secs":…,"used_secs":…,"used_frac":…},…}}}
    /// ```
    ///
    /// Budget entries appear only for budgets the run configured; the
    /// `budgets` key is omitted when the run is unbounded.
    pub fn snapshot_json(&self) -> Json {
        let snap = self.snapshot();
        let pair = |done: u64, total: u64| {
            Json::obj()
                .with("done", Json::U64(done))
                .with("total", Json::U64(total))
        };
        let mut body = Json::obj()
            .with("elapsed_secs", Json::F64(snap.elapsed_secs))
            .with("phase", Json::Str(snap.phase.as_str().into()))
            .with("slices", pair(snap.slices_done, snap.slices_total))
            .with("pairs", pair(snap.pairs_done, snap.pairs_total))
            .with("branches", pair(snap.branches_done, snap.branches_total))
            .with("candidates", Json::U64(snap.candidates))
            .with("logical_bytes", Json::U64(snap.logical_bytes));

        let mut budget_obj = Json::obj();
        for b in &snap.budgets {
            // Budget kinds keep their historical key spellings (secs vs
            // bytes vs raw counts) so heartbeat consumers see no change.
            let entry = match b.name {
                "deadline" => Json::obj()
                    .with("limit_secs", Json::F64(b.limit))
                    .with("used_secs", Json::F64(b.used)),
                "memory" => Json::obj()
                    .with("limit_bytes", Json::U64(b.limit as u64))
                    .with("used_bytes", Json::U64(b.used as u64)),
                _ => Json::obj()
                    .with("limit", Json::U64(b.limit as u64))
                    .with("spent", Json::U64(b.used as u64)),
            };
            budget_obj = budget_obj.with(b.name, entry.with("used_frac", Json::F64(b.used_frac)));
        }
        if !snap.budgets.is_empty() {
            body = body.with("budgets", budget_obj);
        }
        Json::obj().with("progress", body)
    }
}

/// Point-in-time values of every [`Progress`] gauge, plus one
/// [`BudgetGauge`] per configured budget.
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    pub elapsed_secs: f64,
    pub phase: Phase,
    pub slices_done: u64,
    pub slices_total: u64,
    pub pairs_done: u64,
    pub pairs_total: u64,
    pub branches_done: u64,
    pub branches_total: u64,
    pub candidates: u64,
    pub budget_spent: u64,
    pub logical_bytes: u64,
    pub budgets: Vec<BudgetGauge>,
}

/// Proximity to one configured budget ceiling. Units depend on the budget
/// (`deadline` in seconds, `memory` in bytes, `candidates` in budget
/// units); `used_frac` is always the saturating ratio in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct BudgetGauge {
    pub name: &'static str,
    pub limit: f64,
    pub used: f64,
    pub used_frac: f64,
}

/// Sink wrapper that opts a run into progress telemetry: contributes
/// nothing to events/counters (`enabled` stays `false`) but answers
/// [`EventSink::progress`] with its gauges.
pub struct ProgressSink(pub Arc<Progress>);

impl EventSink for ProgressSink {
    fn enabled(&self) -> bool {
        false
    }
    fn progress(&self) -> Option<Arc<Progress>> {
        Some(self.0.clone())
    }
}

/// Background heartbeat: snapshots a [`Progress`] every `interval` and
/// writes one JSON line per tick, plus exactly one final line when
/// dropped.
///
/// The final line is emitted by the *dropping* thread, after the tick
/// thread has been stopped and joined — so it is ordered after every
/// gauge update the run made before dropping the ticker (the log's last
/// line always reflects the terminal phase and counters), and it is
/// still attempted when the tick thread died early on a transient write
/// failure.
pub struct ProgressTicker {
    progress: Arc<Progress>,
    out: Arc<Mutex<Box<dyn Write + Send>>>,
    stop: Option<mpsc::Sender<()>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// One snapshot line: rendered in full, written atomically, flushed.
fn emit_snapshot(progress: &Progress, out: &Mutex<Box<dyn Write + Send>>) -> bool {
    let mut line = progress.snapshot_json().render();
    line.push('\n');
    let mut out = out.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    out.write_all(line.as_bytes()).is_ok() && out.flush().is_ok()
}

impl ProgressTicker {
    /// Starts the heartbeat thread. Lines go to `out` as
    /// `snapshot_json().render()` + `'\n'`, written atomically per line
    /// and flushed; the tick thread stops on write failure (e.g. closed
    /// pipe) but the final drop-time snapshot is attempted regardless.
    pub fn start(progress: Arc<Progress>, interval: Duration, out: Box<dyn Write + Send>) -> Self {
        let out = Arc::new(Mutex::new(out));
        let (stop, ticks) = mpsc::channel::<()>();
        let handle = {
            let progress = progress.clone();
            let out = out.clone();
            std::thread::spawn(move || loop {
                match ticks.recv_timeout(interval) {
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if !emit_snapshot(&progress, &out) {
                            return;
                        }
                    }
                    // Stop requested (the final line is the dropper's job)
                    // or the ticker struct was leaked without running Drop.
                    Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            })
        };
        ProgressTicker {
            progress,
            out,
            stop: Some(stop),
            handle: Some(handle),
        }
    }
}

impl Drop for ProgressTicker {
    fn drop(&mut self) {
        if let Some(stop) = self.stop.take() {
            let _ = stop.send(());
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let _ = emit_snapshot(&self.progress, &self.out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_phase_and_gauges() {
        let p = Progress::new();
        p.set_phase(Phase::Slices);
        p.add_slices_total(7);
        p.slice_done();
        p.slice_done();
        p.add_pairs_total(45);
        p.pair_done();
        p.add_branches_total(10);
        p.branch_done();
        p.candidate_recorded();
        p.set_logical_bytes(1234);
        let snap = p.snapshot_json();
        let body = snap.get("progress").expect("progress key");
        assert_eq!(body.get("phase").and_then(|v| v.as_str()), Some("slices"));
        assert_eq!(
            body.get_path(&["slices", "done"]).and_then(|v| v.as_u64()),
            Some(2)
        );
        assert_eq!(
            body.get_path(&["slices", "total"]).and_then(|v| v.as_u64()),
            Some(7)
        );
        assert_eq!(
            body.get_path(&["pairs", "done"]).and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(body.get("candidates").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            body.get("logical_bytes").and_then(|v| v.as_u64()),
            Some(1234)
        );
        assert!(body.get("budgets").is_none(), "unbounded run: no budgets");
        // snapshots render as parseable single-line JSON
        let text = snap.render();
        assert!(!text.contains('\n'));
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn snapshot_reports_budget_proximity() {
        let p = Progress::new();
        p.set_budgets(Some(Duration::from_secs(100)), Some(1000), Some(50));
        p.set_logical_bytes(250);
        p.add_budget_spent(25);
        let snap = p.snapshot_json();
        let body = snap.get("progress").unwrap();
        let mem_frac = body
            .get_path(&["budgets", "memory", "used_frac"])
            .and_then(|v| v.as_f64())
            .unwrap();
        assert!((mem_frac - 0.25).abs() < 1e-9, "{mem_frac}");
        let cand_frac = body
            .get_path(&["budgets", "candidates", "used_frac"])
            .and_then(|v| v.as_f64())
            .unwrap();
        assert!((cand_frac - 0.5).abs() < 1e-9, "{cand_frac}");
        assert!(body
            .get_path(&["budgets", "deadline", "limit_secs"])
            .is_some());
    }

    #[test]
    fn used_frac_saturates_at_one() {
        let p = Progress::new();
        p.set_budgets(None, Some(100), None);
        p.set_logical_bytes(5000);
        let frac = p
            .snapshot_json()
            .get_path(&["progress", "budgets", "memory", "used_frac"])
            .and_then(|v| v.as_f64())
            .unwrap();
        assert_eq!(frac, 1.0);
    }

    #[test]
    fn progress_sink_is_discoverable_and_silent() {
        let p = Arc::new(Progress::new());
        let sink = ProgressSink(p.clone());
        let dyn_sink: &dyn EventSink = &sink;
        assert!(!dyn_sink.enabled());
        let found = dyn_sink.progress().expect("discoverable");
        found.candidate_recorded();
        assert_eq!(p.candidates(), 1);
        assert!(crate::NullSink.progress().is_none());
    }

    #[test]
    fn ticker_emits_final_snapshot_on_drop() {
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let p = Arc::new(Progress::new());
        {
            let ticker = ProgressTicker::start(
                p.clone(),
                Duration::from_secs(3600), // never ticks on its own
                Box::new(Shared(buf.clone())),
            );
            p.set_phase(Phase::Done);
            drop(ticker);
        }
        let text = String::from_utf8(
            buf.lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .clone(),
        )
        .unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "exactly the final snapshot: {text:?}");
        let parsed = Json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(
            parsed
                .get_path(&["progress", "phase"])
                .and_then(|v| v.as_str()),
            Some("done")
        );
    }

    #[test]
    fn ticker_emits_periodic_snapshots() {
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let p = Arc::new(Progress::new());
        let ticker = ProgressTicker::start(
            p.clone(),
            Duration::from_millis(5),
            Box::new(Shared(buf.clone())),
        );
        std::thread::sleep(Duration::from_millis(60));
        drop(ticker);
        let text = String::from_utf8(
            buf.lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .clone(),
        )
        .unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "expected several ticks, got {lines:?}");
        for line in lines {
            assert!(Json::parse(line).is_ok(), "torn line: {line:?}");
        }
    }

    #[test]
    fn ticker_final_line_reflects_terminal_counters() {
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let p = Arc::new(Progress::new());
        let ticker = ProgressTicker::start(
            p.clone(),
            Duration::from_secs(3600), // never ticks on its own
            Box::new(Shared(buf.clone())),
        );
        // Every update lands before the drop — the final line must carry
        // all of them, not a snapshot from an earlier tick.
        p.add_slices_total(3);
        p.slice_done();
        p.slice_done();
        p.slice_done();
        p.candidate_recorded();
        p.set_phase(Phase::Done);
        drop(ticker);
        let text = String::from_utf8(
            buf.lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .clone(),
        )
        .unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "exactly the final snapshot: {text:?}");
        let last = Json::parse(lines[0]).expect("valid JSON line");
        let body = last.get("progress").unwrap();
        assert_eq!(body.get("phase").and_then(|v| v.as_str()), Some("done"));
        assert_eq!(
            body.get_path(&["slices", "done"]).and_then(|v| v.as_u64()),
            Some(3)
        );
        assert_eq!(body.get("candidates").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn ticker_emits_final_snapshot_even_after_tick_thread_write_failure() {
        // A writer that fails while `failing` is set: the periodic tick
        // thread hits the failure and exits early. The drop-time snapshot
        // comes from the dropping thread, so once the writer recovers the
        // terminal line still appears.
        struct Flaky {
            failing: Arc<std::sync::atomic::AtomicBool>,
            buf: Arc<Mutex<Vec<u8>>>,
        }
        impl Write for Flaky {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.failing.load(Ordering::SeqCst) {
                    return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "flaky"));
                }
                self.buf
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let failing = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let buf = Arc::new(Mutex::new(Vec::new()));
        let p = Arc::new(Progress::new());
        let ticker = ProgressTicker::start(
            p.clone(),
            Duration::from_millis(2),
            Box::new(Flaky {
                failing: failing.clone(),
                buf: buf.clone(),
            }),
        );
        // Give the tick thread time to attempt a write and die on it.
        std::thread::sleep(Duration::from_millis(40));
        failing.store(false, Ordering::SeqCst);
        p.set_phase(Phase::Done);
        drop(ticker);
        let text = String::from_utf8(
            buf.lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .clone(),
        )
        .unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "exactly the final snapshot: {text:?}");
        let last = Json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(
            last.get_path(&["progress", "phase"])
                .and_then(|v| v.as_str()),
            Some("done")
        );
    }
}
