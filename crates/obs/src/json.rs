//! Minimal hand-rolled JSON tree, renderer, and parser (pure `std`).
//!
//! Only what the observability layer needs: construction of object/array
//! trees, compact or pretty rendering with correct string escaping, and a
//! strict recursive-descent [`Json::parse`] so committed artifacts (bench
//! baselines, run reports) can be read back without external crates.
//! Object key order is preserved exactly as inserted, which keeps emitted
//! reports byte-stable run to run.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    /// Non-finite values render as `null` (JSON has no NaN/Inf).
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object; panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style variant of [`Json::set`].
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Builder form of [`Json::set`] for optional fields: appends the field
    /// only when `value` is `Some`, so absent sections leave no key behind.
    pub fn maybe_with(self, key: &str, value: Option<Json>) -> Json {
        match value {
            Some(v) => self.with(key, v),
            None => self,
        }
    }

    /// Field lookup on an object (`None` for other variants or missing
    /// keys; the first occurrence wins when keys repeat).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Nested lookup following a path of object keys.
    pub fn get_path(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |node, key| node.get(key))
    }

    /// Numeric view: `U64`, `I64`, and finite `F64` all convert.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned view (`U64`, or a non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object-field view.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a JSON document. Strict: exactly one value, standard JSON
    /// syntax, no trailing garbage. Integers that fit land in `U64`/`I64`;
    /// everything else numeric becomes `F64`.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a decimal point or exponent, so the
                    // token round-trips as a float.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (key, value) = &fields[i];
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                value.write(out, indent, depth + 1)
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // surrogate pairs are not emitted by our renderer;
                            // map unpaired surrogates to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run up to the next quote or backslash.
                    // Neither byte can be a UTF-8 continuation byte, so the
                    // run boundary is always a char boundary and the run is
                    // validated once — not once per character, which made
                    // megabyte-scale strings quadratic to parse.
                    let rest = &self.bytes[self.pos..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let s = std::str::from_utf8(&rest[..run]).map_err(|_| "invalid utf-8")?;
                    out.push_str(s);
                    self.pos += run;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = token.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = token.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        token
            .parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number {token:?} at byte {start}"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn floats_keep_a_float_token() {
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::F64(1e-9).render(), "1e-9");
    }

    #[test]
    fn strings_escape_control_and_quotes() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\te\u{1}".to_string()).render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let j = Json::obj()
            .with("zeta", Json::U64(1))
            .with("alpha", Json::Arr(vec![Json::U64(1), Json::Null]));
        assert_eq!(j.render(), r#"{"zeta":1,"alpha":[1,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::obj().with("a", Json::Arr(vec![Json::U64(1)]));
        assert_eq!(j.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::obj().render_pretty(), "{}\n");
    }

    #[test]
    fn parse_roundtrips_rendered_trees() {
        let j = Json::obj()
            .with("s", Json::Str("a\"b\\c\nd".into()))
            .with("n", Json::U64(18_446_744_073_709_551_615))
            .with("i", Json::I64(-42))
            .with("f", Json::F64(1.5e-3))
            .with(
                "arr",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Bool(false)]),
            )
            .with("nested", Json::obj().with("k", Json::U64(7)));
        for text in [j.render(), j.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), j, "{text}");
        }
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(Json::parse("0").unwrap(), Json::U64(0));
        assert_eq!(Json::parse("-3").unwrap(), Json::I64(-3));
        assert_eq!(Json::parse("2.5").unwrap(), Json::F64(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(Json::parse("-1.5e-2").unwrap(), Json::F64(-0.015));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"x",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            Json::parse(r#""café""#).unwrap(),
            Json::Str("café".to_string())
        );
        assert_eq!(
            Json::parse("\"emoji \u{1F600}\"").unwrap(),
            Json::Str("emoji \u{1F600}".to_string())
        );
    }

    /// A megabyte-scale string (an inline TSV dataset, say) must parse in
    /// linear time. The per-character tail revalidation this guards against
    /// took ~20 s on this input; the bulk-run path takes milliseconds, so
    /// the generous bound stays robust on a loaded machine.
    #[test]
    fn parse_of_large_strings_is_linear() {
        let cell = "0.123456\t";
        let mut tsv = String::with_capacity(2 << 20);
        while tsv.len() < (2 << 20) {
            tsv.push_str(cell);
            tsv.push('\n');
        }
        let doc = Json::obj().with("dataset", Json::Str(tsv)).render();
        let start = std::time::Instant::now();
        let parsed = Json::parse(&doc).unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "parsing a {} B document took {:?}",
            doc.len(),
            start.elapsed()
        );
        assert_eq!(parsed.render(), doc);
    }

    #[test]
    fn accessors_navigate_trees() {
        let j = Json::parse(r#"{"a":{"b":[1,2.5,"x"]},"n":-1}"#).unwrap();
        assert_eq!(j.get_path(&["a", "b"]).unwrap().as_arr().unwrap().len(), 3);
        let arr = j.get_path(&["a", "b"]).unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(j.get("n").unwrap().as_f64(), Some(-1.0));
        assert_eq!(j.get("n").unwrap().as_u64(), None);
        assert_eq!(j.get("missing"), None);
        assert!(j.as_obj().unwrap().len() == 2);
    }
}
