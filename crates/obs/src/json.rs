//! Minimal hand-rolled JSON tree and renderer (pure `std`).
//!
//! Only what the observability layer needs: construction of object/array
//! trees and compact or pretty rendering with correct string escaping.
//! Object key order is preserved exactly as inserted, which keeps emitted
//! reports byte-stable run to run.

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    /// Non-finite values render as `null` (JSON has no NaN/Inf).
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object; panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style variant of [`Json::set`].
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a decimal point or exponent, so the
                    // token round-trips as a float.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (key, value) = &fields[i];
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                value.write(out, indent, depth + 1)
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn floats_keep_a_float_token() {
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::F64(1e-9).render(), "1e-9");
    }

    #[test]
    fn strings_escape_control_and_quotes() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\te\u{1}".to_string()).render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let j = Json::obj()
            .with("zeta", Json::U64(1))
            .with("alpha", Json::Arr(vec![Json::U64(1), Json::Null]));
        assert_eq!(j.render(), r#"{"zeta":1,"alpha":[1,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::obj().with("a", Json::Arr(vec![Json::U64(1)]));
        assert_eq!(j.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::obj().render_pretty(), "{}\n");
    }
}
