//! Live metrics registry with OpenMetrics text exposition.
//!
//! A [`Registry`] is an [`EventSink`] that aggregates whatever the run
//! publishes — counters, span timings, value histograms — into shared
//! state cheap enough to sit in a sink fan-out for the whole run, plus a
//! scrape-time view of the run's [`Progress`] gauges, budget proximity,
//! and the tracking allocator's live/peak bytes. [`render_openmetrics`]
//! serializes all of it as OpenMetrics/Prometheus text exposition,
//! hand-rolled in the same no-dependency spirit as [`crate::json`].
//!
//! Like every other observability layer, the registry only observes:
//! counter updates are relaxed atomics behind a read lock, span and
//! histogram merges take a mutex off the DFS hot paths (they arrive from
//! the single merge thread), and nothing feeds back into mining decisions
//! — so serving metrics cannot perturb the byte-deterministic report
//! sections.
//!
//! [`render_openmetrics`]: Registry::render_openmetrics

use crate::hist::Histogram;
use crate::progress::{Phase, Progress, ProgressSnapshot};
use crate::{alloc, EventSink, SpanStats};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Every exposed metric family is prefixed so scrapes from several jobs
/// can share a Prometheus instance without name clashes.
const PREFIX: &str = "tricluster_";

/// Shared metrics state for one run (or one process serving many runs).
///
/// Compose it into the run's sink (e.g. via [`crate::Fanout`]) and hand a
/// clone to [`crate::httpd::MetricsServer`]; scrapes then see counters and
/// spans as the merge thread publishes them, and gauges at their
/// scrape-instant values.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<&'static str, AtomicU64>>,
    spans: Mutex<BTreeMap<&'static str, SpanStats>>,
    hists: Mutex<BTreeMap<&'static str, Histogram>>,
    progress: RwLock<Option<Arc<Progress>>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches the run's progress gauges; scrapes render them live and
    /// `/progress` serves their JSON snapshot.
    pub fn attach_progress(&self, progress: Arc<Progress>) {
        *write_lock(&self.progress) = Some(progress);
    }

    /// Current value of one counter (test and rendering hook).
    pub fn counter_value(&self, name: &str) -> u64 {
        read_lock(&self.counters)
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// JSON snapshot of the attached progress gauges, if any (the
    /// `/progress` endpoint body).
    pub fn progress_json(&self) -> Option<String> {
        read_lock(&self.progress)
            .as_ref()
            .map(|p| p.snapshot_json().render())
    }

    /// Renders the full OpenMetrics text exposition: counters, span
    /// latency histograms (seconds), value histograms, progress/budget
    /// gauges, and — when the tracking allocator is installed — live and
    /// peak heap bytes. Terminated by `# EOF` per the OpenMetrics spec.
    pub fn render_openmetrics(&self) -> String {
        let mut out = String::new();
        for (name, value) in read_lock(&self.counters).iter() {
            let fam = metric_name(name);
            let _ = writeln!(out, "# TYPE {fam} counter");
            let _ = writeln!(out, "{fam}_total {}", value.load(Ordering::Relaxed));
        }
        for (name, stats) in lock(&self.spans).iter() {
            let fam = format!("{}_seconds", metric_name(name));
            render_histogram(
                &mut out,
                &fam,
                stats.hist.buckets().map(|(_, hi, c)| (nanos_le(hi), c)),
                stats.count,
                stats.total.as_secs_f64(),
            );
        }
        for (name, hist) in lock(&self.hists).iter() {
            let fam = metric_name(name);
            render_histogram(
                &mut out,
                &fam,
                hist.buckets().map(|(_, hi, c)| (format_f64(hi as f64), c)),
                hist.count(),
                hist.sum() as f64,
            );
        }
        if let Some(progress) = read_lock(&self.progress).as_ref() {
            render_progress(&mut out, &progress.snapshot());
        }
        if let Some(mem) = alloc::snapshot() {
            gauge(&mut out, "alloc_live_bytes", mem.live_bytes as f64);
            gauge(
                &mut out,
                "alloc_peak_live_bytes",
                mem.peak_live_bytes as f64,
            );
            let fam = format!("{PREFIX}alloc_allocated_bytes");
            let _ = writeln!(out, "# TYPE {fam} counter");
            let _ = writeln!(out, "{fam}_total {}", mem.total_bytes);
            let fam = format!("{PREFIX}alloc_allocation_calls");
            let _ = writeln!(out, "# TYPE {fam} counter");
            let _ = writeln!(out, "{fam}_total {}", mem.total_allocs);
        }
        out.push_str("# EOF\n");
        out
    }
}

impl EventSink for Registry {
    /// The registry never asks for events to be built; it aggregates the
    /// counter/span/histogram stream other layers already publish.
    fn enabled(&self) -> bool {
        false
    }

    fn counter(&self, name: &'static str, delta: u64) {
        {
            let counters = read_lock(&self.counters);
            if let Some(c) = counters.get(name) {
                c.fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
        write_lock(&self.counters)
            .entry(name)
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn span(&self, name: &'static str, elapsed: Duration) {
        lock(&self.spans).entry(name).or_default().record(elapsed);
    }

    /// Stays `false`: the registry alone must not force bucket work onto
    /// the DFS hot paths. When another sink (e.g. the CLI's report tap)
    /// switches collection on, the merged histograms still land here.
    fn wants_histograms(&self) -> bool {
        false
    }

    fn histogram(&self, name: &'static str, hist: &Histogram) {
        lock(&self.hists).entry(name).or_default().merge(hist);
    }

    fn progress(&self) -> Option<Arc<Progress>> {
        read_lock(&self.progress).clone()
    }
}

/// Maps a dotted internal name (see [`crate::names`]) to its exposition
/// family name: `rangegraph.pairs` → `tricluster_rangegraph_pairs`.
pub fn metric_name(name: &str) -> String {
    format!("{PREFIX}{}", name.replace('.', "_"))
}

pub(crate) fn render_histogram(
    out: &mut String,
    fam: &str,
    buckets: impl Iterator<Item = (String, u64)>,
    count: u64,
    sum: f64,
) {
    let _ = writeln!(out, "# TYPE {fam} histogram");
    let mut cumulative = 0u64;
    for (le, c) in buckets {
        cumulative += c;
        let _ = writeln!(out, "{fam}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{fam}_bucket{{le=\"+Inf\"}} {count}");
    let _ = writeln!(out, "{fam}_sum {}", format_f64(sum));
    let _ = writeln!(out, "{fam}_count {count}");
}

fn render_progress(out: &mut String, snap: &ProgressSnapshot) {
    gauge(out, "progress_elapsed_seconds", snap.elapsed_secs);
    let fam = format!("{PREFIX}progress_phase");
    let _ = writeln!(out, "# TYPE {fam} gauge");
    for phase in Phase::ALL {
        let hot = if phase == snap.phase { 1 } else { 0 };
        let _ = writeln!(out, "{fam}{{phase=\"{}\"}} {hot}", phase.as_str());
    }
    let pairs: [(&str, u64); 8] = [
        ("progress_slices_done", snap.slices_done),
        ("progress_slices_total", snap.slices_total),
        ("progress_pairs_done", snap.pairs_done),
        ("progress_pairs_total", snap.pairs_total),
        ("progress_branches_done", snap.branches_done),
        ("progress_branches_total", snap.branches_total),
        ("progress_candidates", snap.candidates),
        ("progress_logical_bytes", snap.logical_bytes),
    ];
    for (name, v) in pairs {
        gauge(out, name, v as f64);
    }
    if !snap.budgets.is_empty() {
        let used = format!("{PREFIX}budget_used_ratio");
        let headroom = format!("{PREFIX}budget_headroom_ratio");
        let _ = writeln!(out, "# TYPE {used} gauge");
        for b in &snap.budgets {
            let _ = writeln!(
                out,
                "{used}{{budget=\"{}\"}} {}",
                b.name,
                format_f64(b.used_frac)
            );
        }
        let _ = writeln!(out, "# TYPE {headroom} gauge");
        for b in &snap.budgets {
            let _ = writeln!(
                out,
                "{headroom}{{budget=\"{}\"}} {}",
                b.name,
                format_f64(1.0 - b.used_frac)
            );
        }
    }
}

pub(crate) fn gauge(out: &mut String, name: &str, value: f64) {
    let _ = writeln!(out, "# TYPE {PREFIX}{name} gauge");
    let _ = writeln!(out, "{PREFIX}{name} {}", format_f64(value));
}

/// A span bucket's upper bound (nanoseconds) as a seconds `le` value.
pub(crate) fn nanos_le(hi: u64) -> String {
    format_f64(hi as f64 / 1e9)
}

/// Finite floats only; integral values render without a trailing `.0`
/// (both spellings are valid exposition, one is shorter and stable).
pub(crate) fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn read_lock<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockReadGuard<'a, T> {
    l.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write_lock<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockWriteGuard<'a, T> {
    l.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Hand-rolled OpenMetrics line parser shared by the exposition golden
/// tests here and in [`crate::service`]; kept test-only so the production
/// path stays render-only.
#[cfg(test)]
pub(crate) mod exposition {
    use std::collections::BTreeMap;

    pub(crate) struct Sample {
        pub family: String,
        pub labels: Vec<(String, String)>,
        pub value: f64,
    }

    pub(crate) fn parse_sample(line: &str, types: &BTreeMap<String, String>) -> Sample {
        let (name_labels, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("unparseable value in {line:?}");
        });
        let (name, labels) = match name_labels.split_once('{') {
            None => (name_labels.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').expect("closed label set");
                let labels = body
                    .split(',')
                    .map(|kv| {
                        let (k, v) = kv.split_once('=').expect("label k=v");
                        let v = v
                            .strip_prefix('"')
                            .and_then(|v| v.strip_suffix('"'))
                            .expect("quoted label value");
                        (k.to_string(), v.to_string())
                    })
                    .collect();
                (name.to_string(), labels)
            }
        };
        // Strip the per-type sample suffix to recover the family name.
        let family = ["_total", "_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let stem = name.strip_suffix(suffix)?;
                types.contains_key(stem).then(|| stem.to_string())
            })
            .unwrap_or(name);
        Sample {
            family,
            labels,
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::exposition::{parse_sample, Sample};
    use super::*;
    use crate::names;

    #[test]
    fn registry_aggregates_counters_spans_and_histograms() {
        let reg = Registry::new();
        let sink: &dyn EventSink = &reg;
        sink.counter(names::RG_PAIRS, 10);
        sink.counter(names::RG_PAIRS, 5);
        sink.counter(names::BC_NODES, 1);
        sink.span(names::SPAN_SLICES_WALL, Duration::from_millis(3));
        sink.span(names::SPAN_SLICES_WALL, Duration::from_millis(5));
        let mut h = Histogram::default();
        h.record(4);
        h.record(1000);
        sink.histogram(names::H_BC_DEPTH, &h);
        sink.histogram(names::H_BC_DEPTH, &h);
        assert_eq!(reg.counter_value(names::RG_PAIRS), 15);
        assert_eq!(reg.counter_value(names::BC_NODES), 1);
        assert_eq!(reg.counter_value("no.such.counter"), 0);
        let text = reg.render_openmetrics();
        assert!(
            text.contains("tricluster_rangegraph_pairs_total 15"),
            "{text}"
        );
        assert!(
            text.contains("tricluster_phase_slices_wall_seconds_count 2"),
            "{text}"
        );
        assert!(
            text.contains("tricluster_bicluster_dfs_depth_count 4"),
            "{text}"
        );
        assert!(text.ends_with("# EOF\n"), "{text}");
    }

    #[test]
    fn registry_renders_progress_and_budget_gauges() {
        let reg = Registry::new();
        let p = Arc::new(Progress::new());
        p.set_budgets(None, Some(1000), Some(50));
        p.set_phase(Phase::Tricluster);
        p.add_slices_total(4);
        p.slice_done();
        p.set_logical_bytes(250);
        p.add_budget_spent(25);
        reg.attach_progress(p);
        let text = reg.render_openmetrics();
        assert!(text.contains("tricluster_progress_slices_done 1"), "{text}");
        assert!(
            text.contains("tricluster_progress_slices_total 4"),
            "{text}"
        );
        assert!(
            text.contains("tricluster_progress_phase{phase=\"tricluster\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("tricluster_progress_phase{phase=\"slices\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("tricluster_budget_used_ratio{budget=\"memory\"} 0.25"),
            "{text}"
        );
        assert!(
            text.contains("tricluster_budget_headroom_ratio{budget=\"candidates\"} 0.5"),
            "{text}"
        );
        let json = reg.progress_json().expect("progress attached");
        assert!(json.contains("\"progress\""), "{json}");
    }

    #[test]
    fn registry_is_discoverable_as_progress_provider() {
        let reg = Registry::new();
        assert!(reg.progress().is_none());
        let p = Arc::new(Progress::new());
        reg.attach_progress(p.clone());
        let found = EventSink::progress(&reg).expect("attached");
        found.candidate_recorded();
        assert_eq!(p.candidates(), 1);
    }

    #[test]
    fn metric_names_sanitize_dots() {
        assert_eq!(
            metric_name("rangegraph.ranges.valid"),
            "tricluster_rangegraph_ranges_valid"
        );
    }

    #[test]
    fn format_f64_is_stable() {
        assert_eq!(format_f64(0.0), "0");
        assert_eq!(format_f64(3.0), "3");
        assert_eq!(format_f64(0.25), "0.25");
    }

    // ---- satellite: golden exposition-format test -----------------------
    //
    // The shared hand-rolled OpenMetrics parser (see [`super::exposition`])
    // checks structural validity: every family is typed before its samples,
    // counters appear exactly once, histogram buckets are
    // cumulative/monotone and consistent with their `_count`, and the
    // document is `# EOF`-terminated.

    #[test]
    fn exposition_is_valid_openmetrics() {
        // Populate a registry the same way a run does: counters and spans
        // through the sink interface, histograms merged, gauges live.
        let reg = Registry::new();
        let sink: &dyn EventSink = &reg;
        for (name, delta) in [
            (names::RG_PAIRS, 45u64),
            (names::RG_EDGES, 12),
            (names::BC_NODES, 100),
            (names::TC_RECORDED, 3),
            (names::M_MATRIX_BYTES, 24_000),
        ] {
            sink.counter(name, delta);
        }
        for _ in 0..32 {
            sink.span(names::SPAN_RANGE_GRAPH, Duration::from_micros(800));
            sink.span(names::SPAN_TRICLUSTER, Duration::from_millis(7));
        }
        let mut h = Histogram::default();
        for v in [1u64, 2, 2, 9, 40, 41, 100_000] {
            h.record(v);
        }
        sink.histogram(names::H_TC_DEPTH, &h);
        let p = Arc::new(Progress::new());
        p.set_budgets(Some(Duration::from_secs(60)), Some(1 << 20), None);
        p.set_phase(Phase::Done);
        reg.attach_progress(p);

        let text = reg.render_openmetrics();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(*lines.last().unwrap(), "# EOF", "EOF-terminated");

        let mut types: BTreeMap<String, String> = BTreeMap::new();
        let mut samples: Vec<Sample> = Vec::new();
        for line in &lines[..lines.len() - 1] {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (fam, ty) = rest.split_once(' ').expect("TYPE has family and kind");
                assert!(
                    matches!(ty, "counter" | "gauge" | "histogram"),
                    "unknown type {ty:?}"
                );
                assert!(
                    types.insert(fam.to_string(), ty.to_string()).is_none(),
                    "family {fam} typed twice"
                );
                continue;
            }
            assert!(!line.starts_with('#'), "unexpected comment {line:?}");
            samples.push(parse_sample(line, &types));
        }
        for s in &samples {
            assert!(
                types.contains_key(&s.family),
                "sample for untyped family {:?}",
                s.family
            );
            assert!(s.value.is_finite());
        }
        // Counters: every published counter appears exactly once, with its
        // exact value.
        for (name, want) in [(names::RG_PAIRS, 45.0), (names::TC_RECORDED, 3.0)] {
            let fam = metric_name(name);
            let hits: Vec<&Sample> = samples.iter().filter(|s| s.family == fam).collect();
            assert_eq!(hits.len(), 1, "{fam} appears once");
            assert_eq!(hits[0].value, want, "{fam} value");
        }
        for (fam, ty) in &types {
            if ty == "counter" {
                let hits = samples.iter().filter(|s| s.family == *fam).count();
                assert_eq!(hits, 1, "counter {fam} appears exactly once");
            }
        }
        // Histograms: buckets are cumulative (monotone non-decreasing in le
        // order as rendered), +Inf equals _count, and _sum is present.
        for (fam, ty) in &types {
            if ty != "histogram" {
                continue;
            }
            let buckets: Vec<&Sample> = samples
                .iter()
                .filter(|s| s.family == *fam && s.labels.iter().any(|(k, _)| k == "le"))
                .collect();
            assert!(!buckets.is_empty(), "{fam} has buckets");
            let mut prev = 0.0;
            for b in &buckets {
                assert!(
                    b.value >= prev,
                    "{fam} bucket counts must be cumulative/monotone"
                );
                prev = b.value;
            }
            let (_, last_le) = buckets
                .last()
                .unwrap()
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .unwrap()
                .clone();
            assert_eq!(last_le, "+Inf", "{fam} ends with the +Inf bucket");
            let count_needle = format!("{fam}_count ");
            let count = lines
                .iter()
                .find(|l| l.starts_with(&count_needle))
                .and_then(|l| l.rsplit_once(' '))
                .map(|(_, v)| v.parse::<f64>().unwrap())
                .expect("histogram _count present");
            assert_eq!(
                buckets.last().unwrap().value,
                count,
                "{fam} +Inf bucket equals _count"
            );
            let sum_needle = format!("{fam}_sum ");
            assert!(
                lines.iter().any(|l| l.starts_with(&sum_needle)),
                "{fam} has a _sum"
            );
        }
        // Progress gauges made it through with one-hot phase encoding.
        let phases: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.family == "tricluster_progress_phase")
            .collect();
        assert_eq!(phases.len(), Phase::ALL.len());
        assert_eq!(
            phases.iter().map(|s| s.value).sum::<f64>(),
            1.0,
            "exactly one live phase"
        );
    }
}
