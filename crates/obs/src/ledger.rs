//! Persistent append-only run archive ("run ledger") and cross-run
//! regression analytics.
//!
//! A [`Ledger`] is a directory that accumulates one entry per archived run:
//! the run's full report document (a `tricluster.report/v2` report for
//! `mine` runs, a `tricluster.fig7/*` document for bench sweeps) plus
//! optional side artifacts (Chrome trace, folded flamegraph stacks). Every
//! entry is keyed by content hashes of the dataset and the mining
//! parameters and summarized in a single-line JSONL index, so a ledger with
//! hundreds of runs is listable without reading any entry body:
//!
//! ```text
//! <dir>/index.jsonl              one summary line per entry, append-only
//! <dir>/entries/<id>/report.json the archived report document
//! <dir>/entries/<id>/trace.json  optional Chrome Trace Event export
//! <dir>/entries/<id>/flame.folded optional folded flamegraph stacks
//! ```
//!
//! The analytics half ([`diff_reports`]) generalizes the bench regression
//! gate's tolerance machinery — `current > baseline * (1 + rel) + floor`,
//! see [`exceeds`] — from "fresh run vs. committed baseline" to "any
//! archived run vs. any other": it compares the per-phase wall/CPU timings
//! and (when both runs measured them) the allocator byte attributions of
//! two v2 report documents and returns every metric with a regression
//! verdict attached.
//!
//! Everything here is pure `std`. The content hashes are 64-bit FNV-1a
//! (the build environment is offline, so no external hash crates), which is
//! plenty for cache keying and change detection — the ledger is provenance
//! bookkeeping, not a security boundary.

use crate::json::Json;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

// ---- content hashing ----------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a rendered as the ledger's self-describing hash string
/// (`fnv1a:<16 hex digits>`).
pub fn content_hash(bytes: &[u8]) -> String {
    format!("fnv1a:{:016x}", fnv1a(bytes))
}

// ---- tolerance machinery (shared with the bench regression gate) --------

/// The regression rule both the bench gate and `runs diff` apply: a current
/// value regresses against a baseline when it exceeds
/// `baseline * (1 + rel) + floor` — a relative headroom for proportional
/// noise plus an absolute floor so microsecond-scale metrics cannot trip on
/// scheduler jitter. Returns the allowed limit when exceeded.
pub fn exceeds(baseline: f64, current: f64, rel: f64, floor: f64) -> Option<f64> {
    let allowed = baseline * (1.0 + rel) + floor;
    (current > allowed).then_some(allowed)
}

/// Tolerances for [`diff_reports`], with the same semantics (and defaults)
/// as the bench gate's: relative headroom plus absolute noise floor.
#[derive(Debug, Clone)]
pub struct DiffTolerances {
    /// Relative headroom for wall/phase times (0.5 = +50%).
    pub time_rel: f64,
    /// Absolute time noise floor in seconds.
    pub time_floor_secs: f64,
    /// Relative headroom for allocator byte metrics.
    pub mem_rel: f64,
    /// Absolute byte noise floor.
    pub mem_floor_bytes: u64,
}

impl Default for DiffTolerances {
    fn default() -> Self {
        DiffTolerances {
            time_rel: 0.5,
            time_floor_secs: 0.05,
            mem_rel: 0.25,
            mem_floor_bytes: 1 << 20,
        }
    }
}

/// One compared metric of a run-vs-run diff, with its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDelta {
    /// Dotted metric path, e.g. `timings.triclusters_secs`.
    pub metric: String,
    pub baseline: f64,
    pub current: f64,
    /// The tolerance limit this metric was held to.
    pub allowed: f64,
    /// Whether `current` exceeded the limit.
    pub regressed: bool,
}

/// Compares two `tricluster.report/v2` documents metric by metric: every
/// per-phase timing (the `timings` section), and — when both runs were
/// measured by a tracking allocator — the total/peak allocator bytes and
/// the per-phase byte attribution. Returns *all* compared metrics with
/// verdicts (so a renderer can show within-tolerance rows too), or an
/// error when the documents are not comparable v2 reports.
pub fn diff_reports(
    baseline: &Json,
    current: &Json,
    tol: &DiffTolerances,
) -> Result<Vec<RunDelta>, String> {
    for (label, doc) in [("baseline", baseline), ("current", current)] {
        match doc.get("schema").and_then(Json::as_str) {
            Some("tricluster.report/v2") => {}
            other => {
                return Err(format!(
                    "{label}: not a tricluster.report/v2 document (schema {other:?})"
                ))
            }
        }
    }
    let mut out = Vec::new();
    let mut push = |metric: String, b: f64, c: f64, rel: f64, floor: f64| {
        let allowed = b * (1.0 + rel) + floor;
        out.push(RunDelta {
            metric,
            baseline: b,
            current: c,
            allowed,
            regressed: exceeds(b, c, rel, floor).is_some(),
        });
    };
    // Per-phase wall/CPU timings: compare every *_secs key present in both.
    let timings = baseline
        .get("timings")
        .and_then(Json::as_obj)
        .ok_or("baseline: missing timings section")?;
    for (key, bv) in timings {
        let (Some(b), Some(c)) = (
            bv.as_f64(),
            current.get_path(&["timings", key]).and_then(Json::as_f64),
        ) else {
            continue;
        };
        push(
            format!("timings.{key}"),
            b,
            c,
            tol.time_rel,
            tol.time_floor_secs,
        );
    }
    // Allocator metrics, only when both runs measured them.
    let mem = |doc: &Json, path: &[&str]| doc.get_path(path).and_then(Json::as_u64);
    for path in [
        &["memory", "alloc", "total_bytes"][..],
        &["memory", "alloc", "peak_live_bytes"],
    ] {
        if let (Some(b), Some(c)) = (mem(baseline, path), mem(current, path)) {
            push(
                path.join("."),
                b as f64,
                c as f64,
                tol.mem_rel,
                tol.mem_floor_bytes as f64,
            );
        }
    }
    // Per-phase byte attribution (`memory.phase_bytes.<phase>.bytes`).
    if let Some(phases) = baseline
        .get_path(&["memory", "phase_bytes"])
        .and_then(Json::as_obj)
    {
        for (phase, bv) in phases {
            let (Some(b), Some(c)) = (
                bv.get("bytes").and_then(Json::as_u64),
                mem(current, &["memory", "phase_bytes", phase, "bytes"]),
            ) else {
                continue;
            };
            push(
                format!("memory.phase_bytes.{phase}.bytes"),
                b as f64,
                c as f64,
                tol.mem_rel,
                tol.mem_floor_bytes as f64,
            );
        }
    }
    Ok(out)
}

// ---- the archive itself -------------------------------------------------

/// What a caller hands to [`Ledger::archive`].
#[derive(Debug, Clone)]
pub struct NewEntry<'a> {
    /// Entry family: `"mine"` for CLI runs, `"bench"` for sweep documents.
    pub kind: &'a str,
    /// Free-form label (typically the input path or sweep family).
    pub label: Option<String>,
    /// Content hash of the mined dataset (see [`content_hash`]).
    pub dataset_hash: String,
    /// Content hash of the mining parameters.
    pub params_hash: String,
    /// The report document to archive.
    pub report: &'a Json,
    /// Optional Chrome Trace Event export (rendered JSON).
    pub trace: Option<&'a str>,
    /// Optional folded flamegraph stacks.
    pub flame: Option<&'a str>,
}

/// One line of the JSONL index: enough to list, select, and rank entries
/// without reading their report bodies.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    pub id: String,
    pub kind: String,
    pub label: Option<String>,
    /// Unix seconds at archive time.
    pub created_unix: u64,
    pub dataset_hash: String,
    pub params_hash: String,
    /// Summary numbers lifted from the report (absent for documents that
    /// do not carry them, e.g. bench sweeps).
    pub clusters: Option<u64>,
    pub total_secs: Option<f64>,
    /// Build metadata lifted from the report's `meta` section.
    pub version: Option<String>,
    pub git: Option<String>,
    pub host: Option<String>,
    pub threads: Option<u64>,
    /// Originating HTTP request id, lifted from the report's `serve`
    /// section (present only for jobs archived by the daemon) — the same
    /// id the access log and `GET /jobs/<id>` carry, so one grep connects
    /// a ledger entry to its submission.
    pub request_id: Option<u64>,
}

impl IndexEntry {
    fn to_json(&self) -> Json {
        let opt_str = |v: &Option<String>| v.clone().map(Json::Str);
        Json::obj()
            .with("id", Json::Str(self.id.clone()))
            .with("kind", Json::Str(self.kind.clone()))
            .maybe_with("label", opt_str(&self.label))
            .with("created_unix", Json::U64(self.created_unix))
            .with("dataset", Json::Str(self.dataset_hash.clone()))
            .with("params", Json::Str(self.params_hash.clone()))
            .maybe_with("clusters", self.clusters.map(Json::U64))
            .maybe_with("total_secs", self.total_secs.map(Json::F64))
            .maybe_with("version", opt_str(&self.version))
            .maybe_with("git", opt_str(&self.git))
            .maybe_with("host", opt_str(&self.host))
            .maybe_with("threads", self.threads.map(Json::U64))
            .maybe_with("request_id", self.request_id.map(Json::U64))
    }

    fn from_json(j: &Json) -> Result<IndexEntry, String> {
        let str_of = |key: &str| j.get(key).and_then(Json::as_str).map(str::to_string);
        Ok(IndexEntry {
            id: str_of("id").ok_or("index line without id")?,
            kind: str_of("kind").ok_or("index line without kind")?,
            label: str_of("label"),
            created_unix: j.get("created_unix").and_then(Json::as_u64).unwrap_or(0),
            dataset_hash: str_of("dataset").unwrap_or_default(),
            params_hash: str_of("params").unwrap_or_default(),
            clusters: j.get("clusters").and_then(Json::as_u64),
            total_secs: j.get("total_secs").and_then(Json::as_f64),
            version: str_of("version"),
            git: str_of("git"),
            host: str_of("host"),
            threads: j.get("threads").and_then(Json::as_u64),
            request_id: j.get("request_id").and_then(Json::as_u64),
        })
    }
}

/// A run-ledger directory. Opening creates the layout if needed; archiving
/// appends (existing entries are never rewritten).
#[derive(Debug, Clone)]
pub struct Ledger {
    dir: PathBuf,
}

impl Ledger {
    /// Opens (creating if necessary) the ledger at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Ledger> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(dir.join("entries"))?;
        Ok(Ledger { dir })
    }

    /// The ledger's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn index_path(&self) -> PathBuf {
        self.dir.join("index.jsonl")
    }

    fn entry_dir(&self, id: &str) -> PathBuf {
        self.dir.join("entries").join(id)
    }

    /// Path of an archived entry's report document.
    pub fn report_path(&self, id: &str) -> PathBuf {
        self.entry_dir(id).join("report.json")
    }

    /// Path of an archived entry's folded flamegraph (may not exist).
    pub fn flame_path(&self, id: &str) -> PathBuf {
        self.entry_dir(id).join("flame.folded")
    }

    /// Path of an archived entry's Chrome trace (may not exist).
    pub fn trace_path(&self, id: &str) -> PathBuf {
        self.entry_dir(id).join("trace.json")
    }

    /// Archives one run: writes the entry directory, then appends the index
    /// line (in that order, so an index line always points at a complete
    /// entry). Returns the new entry's id, which is sequence-numbered for
    /// human reference and suffixed with the report's content hash.
    pub fn archive(&self, entry: &NewEntry<'_>) -> io::Result<String> {
        let report_text = entry.report.render_pretty() + "\n";
        let seq = self.list().map(|e| e.len()).unwrap_or(0) + 1;
        let hash = fnv1a(report_text.as_bytes());
        let id = format!("r{seq:04}-{:08x}", hash as u32);
        let dir = self.entry_dir(&id);
        fs::create_dir_all(&dir)?;
        fs::write(dir.join("report.json"), &report_text)?;
        if let Some(trace) = entry.trace {
            fs::write(dir.join("trace.json"), trace)?;
        }
        if let Some(flame) = entry.flame {
            fs::write(dir.join("flame.folded"), flame)?;
        }
        let created_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let meta = |key: &str| {
            entry
                .report
                .get_path(&["meta", key])
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        let line = IndexEntry {
            id: id.clone(),
            kind: entry.kind.to_string(),
            label: entry.label.clone(),
            created_unix,
            dataset_hash: entry.dataset_hash.clone(),
            params_hash: entry.params_hash.clone(),
            clusters: entry.report.get("clusters").and_then(Json::as_u64),
            total_secs: entry
                .report
                .get_path(&["timings", "total_secs"])
                .and_then(Json::as_f64),
            version: meta("version"),
            git: meta("git"),
            host: meta("host"),
            threads: entry
                .report
                .get_path(&["meta", "threads"])
                .and_then(Json::as_u64),
            request_id: entry
                .report
                .get_path(&["serve", "request_id"])
                .and_then(Json::as_u64),
        };
        let mut index = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.index_path())?;
        index.write_all((line.to_json().render() + "\n").as_bytes())?;
        Ok(id)
    }

    /// Every index line, oldest first.
    pub fn list(&self) -> io::Result<Vec<IndexEntry>> {
        let text = match fs::read_to_string(self.index_path()) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        for (n, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let j = Json::parse(line)
                .map_err(|e| io::Error::other(format!("index line {}: {e}", n + 1)))?;
            out.push(IndexEntry::from_json(&j).map_err(io::Error::other)?);
        }
        Ok(out)
    }

    /// Resolves an entry by exact id or unique id prefix.
    pub fn resolve(&self, selector: &str) -> io::Result<IndexEntry> {
        let entries = self.list()?;
        if let Some(e) = entries.iter().find(|e| e.id == selector) {
            return Ok(e.clone());
        }
        let matches: Vec<&IndexEntry> = entries
            .iter()
            .filter(|e| e.id.starts_with(selector))
            .collect();
        match matches.as_slice() {
            [one] => Ok((*one).clone()),
            [] => Err(io::Error::other(format!(
                "no ledger entry matches {selector:?}"
            ))),
            many => Err(io::Error::other(format!(
                "ambiguous selector {selector:?}: matches {}",
                many.iter()
                    .map(|e| e.id.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))),
        }
    }

    /// Reads an archived entry's report document back.
    pub fn read_report(&self, id: &str) -> io::Result<Json> {
        let text = fs::read_to_string(self.report_path(id))?;
        Json::parse(&text).map_err(|e| io::Error::other(format!("{id}/report.json: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tricluster-ledger-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn report(total_secs: f64, tri_secs: f64) -> Json {
        Json::obj()
            .with("schema", Json::Str("tricluster.report/v2".into()))
            .with("clusters", Json::U64(4))
            .with(
                "timings",
                Json::obj()
                    .with("slices_wall_secs", Json::F64(0.10))
                    .with("triclusters_secs", Json::F64(tri_secs))
                    .with("total_secs", Json::F64(total_secs)),
            )
            .with(
                "meta",
                Json::obj()
                    .with("version", Json::Str("0.1.0".into()))
                    .with("host", Json::Str("x86_64-linux".into()))
                    .with("threads", Json::U64(2)),
            )
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        assert!(content_hash(b"x").starts_with("fnv1a:"));
        assert_eq!(content_hash(b"x").len(), "fnv1a:".len() + 16);
    }

    #[test]
    fn archive_list_show_roundtrip() {
        let dir = temp_dir("roundtrip");
        let ledger = Ledger::open(&dir).unwrap();
        assert!(ledger.list().unwrap().is_empty());
        let doc = report(0.25, 0.08);
        let id = ledger
            .archive(&NewEntry {
                kind: "mine",
                label: Some("data.tsv".into()),
                dataset_hash: content_hash(b"dataset"),
                params_hash: content_hash(b"params"),
                report: &doc,
                trace: None,
                flame: Some("phase.tricluster 123\n"),
            })
            .unwrap();
        let entries = ledger.list().unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.id, id);
        assert_eq!(e.kind, "mine");
        assert_eq!(e.label.as_deref(), Some("data.tsv"));
        assert_eq!(e.clusters, Some(4));
        assert_eq!(e.total_secs, Some(0.25));
        assert_eq!(e.version.as_deref(), Some("0.1.0"));
        assert_eq!(e.threads, Some(2));
        assert_eq!(e.request_id, None, "one-shot mines have no serve section");
        assert!(e.dataset_hash.starts_with("fnv1a:"));
        // the report body round-trips and the flame artifact landed
        let back = ledger.read_report(&id).unwrap();
        assert_eq!(back.render(), doc.render());
        assert!(ledger.flame_path(&id).exists());
        assert!(!ledger.trace_path(&id).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ids_are_sequenced_and_prefix_resolvable() {
        let dir = temp_dir("resolve");
        let ledger = Ledger::open(&dir).unwrap();
        let docs = [report(0.1, 0.01), report(0.2, 0.01)];
        let mk = |doc| NewEntry {
            kind: "mine",
            label: None,
            dataset_hash: String::new(),
            params_hash: String::new(),
            report: doc,
            trace: None,
            flame: None,
        };
        let a = ledger.archive(&mk(&docs[0])).unwrap();
        let b = ledger.archive(&mk(&docs[1])).unwrap();
        assert!(a.starts_with("r0001-"));
        assert!(b.starts_with("r0002-"));
        assert_eq!(ledger.resolve(&a).unwrap().id, a);
        assert_eq!(ledger.resolve("r0002").unwrap().id, b);
        assert!(ledger.resolve("r9").is_err());
        assert!(ledger.resolve("r0").is_err(), "ambiguous prefix");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn served_entries_carry_their_request_id() {
        let dir = temp_dir("request-id");
        let ledger = Ledger::open(&dir).unwrap();
        let doc = report(0.25, 0.08).with(
            "serve",
            Json::obj()
                .with("request_id", Json::U64(42))
                .with("job_id", Json::U64(7)),
        );
        let id = ledger
            .archive(&NewEntry {
                kind: "serve",
                label: None,
                dataset_hash: content_hash(b"dataset"),
                params_hash: content_hash(b"params"),
                report: &doc,
                trace: None,
                flame: None,
            })
            .unwrap();
        let entries = ledger.list().unwrap();
        assert_eq!(entries[0].id, id);
        assert_eq!(entries[0].request_id, Some(42));
        // and the raw index line greps by request id
        let index = fs::read_to_string(ledger.dir().join("index.jsonl")).unwrap();
        assert!(index.contains("\"request_id\":42"), "{index}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn exceeds_applies_rel_plus_floor() {
        assert!(exceeds(1.0, 1.6, 0.5, 0.05).is_some());
        assert!(exceeds(1.0, 1.54, 0.5, 0.05).is_none());
        // the floor absorbs jitter on tiny baselines
        assert!(exceeds(0.001, 0.01, 0.5, 0.05).is_none());
        assert_eq!(exceeds(1.0, 2.0, 0.5, 0.05), Some(1.55));
    }

    #[test]
    fn diff_flags_only_the_regressed_phase() {
        let base = report(0.25, 0.01);
        let slowed = report(0.65, 0.41); // +400 ms in the tricluster phase
        let deltas = diff_reports(&base, &slowed, &DiffTolerances::default()).unwrap();
        let verdict = |metric: &str| {
            deltas
                .iter()
                .find(|d| d.metric == metric)
                .unwrap_or_else(|| panic!("{metric} not compared"))
                .regressed
        };
        assert!(verdict("timings.triclusters_secs"));
        assert!(verdict("timings.total_secs"));
        assert!(!verdict("timings.slices_wall_secs"));
    }

    #[test]
    fn diff_covers_alloc_metrics_when_both_measured() {
        let with_alloc = |bytes: u64| {
            report(0.2, 0.01).with(
                "memory",
                Json::obj()
                    .with(
                        "alloc",
                        Json::obj()
                            .with("total_bytes", Json::U64(bytes))
                            .with("peak_live_bytes", Json::U64(bytes / 2)),
                    )
                    .with(
                        "phase_bytes",
                        Json::obj().with(
                            "slices",
                            Json::obj()
                                .with("bytes", Json::U64(bytes))
                                .with("allocs", Json::U64(10)),
                        ),
                    ),
            )
        };
        let base = with_alloc(8 << 20);
        let bloated = with_alloc(64 << 20);
        let deltas = diff_reports(&base, &bloated, &DiffTolerances::default()).unwrap();
        let regressed: Vec<&str> = deltas
            .iter()
            .filter(|d| d.regressed)
            .map(|d| d.metric.as_str())
            .collect();
        assert!(
            regressed.contains(&"memory.alloc.total_bytes"),
            "{regressed:?}"
        );
        assert!(
            regressed.contains(&"memory.phase_bytes.slices.bytes"),
            "{regressed:?}"
        );
        // unmeasured on one side: alloc metrics silently skipped
        let deltas = diff_reports(&base, &report(0.2, 0.01), &DiffTolerances::default()).unwrap();
        assert!(deltas.iter().all(|d| d.metric.starts_with("timings.")));
    }

    #[test]
    fn diff_rejects_non_report_documents() {
        let fig7 = Json::obj().with("schema", Json::Str("tricluster.fig7/v2".into()));
        let ok = report(0.1, 0.01);
        assert!(diff_reports(&fig7, &ok, &DiffTolerances::default()).is_err());
        assert!(diff_reports(&ok, &fig7, &DiffTolerances::default()).is_err());
    }
}
