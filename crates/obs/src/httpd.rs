//! Minimal std-only HTTP server for live metrics scrapes.
//!
//! [`MetricsServer`] binds a [`TcpListener`] (a `:0` port works and the
//! bound address is reported back) and serves three read-only endpoints
//! off a background thread:
//!
//! | endpoint    | body                                                  |
//! |-------------|-------------------------------------------------------|
//! | `/metrics`  | OpenMetrics exposition of the attached [`Registry`]   |
//! | `/progress` | JSON snapshot of the run's progress gauges            |
//! | `/healthz`  | `ok` — liveness only                                  |
//!
//! Connections are handled serially — scrapers poll at second granularity
//! and every response is a point-in-time render, so there is nothing to
//! win by handling them concurrently. Dropping the server stops the
//! thread deterministically (stop flag + self-connect to unblock
//! `accept`), so a CLI run's server dies with the run.
//!
//! [`http_get`] is the matching client: just enough HTTP/1.0 to scrape
//! these endpoints (and anything equally plain) without a dependency —
//! `tricluster watch` and the CI smoke gate are built on it.

use crate::metrics::Registry;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-connection I/O deadline: a stuck scraper must not wedge the serve
/// loop (connections are handled one at a time).
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Upper bound on an accepted request head; enough for any scraper's GET.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running scrape endpoint. Dropping it shuts the listener down and
/// joins the serve thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `registry`.
    pub fn serve(addr: &str, registry: Arc<Registry>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("metrics-httpd".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        return;
                    }
                    if let Ok(stream) = conn {
                        // A failed scrape (timeout, closed pipe) only loses
                        // that one response; the serve loop survives it.
                        let _ = handle_conn(stream, &registry);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The actually bound address (resolves a requested port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Scrape base URL, e.g. `http://127.0.0.1:37012`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock `accept` with one throwaway connection; an unspecified
        // bind address (0.0.0.0) is dialed back via loopback.
        let mut dial = self.addr;
        if dial.ip().is_unspecified() {
            dial.set_ip(Ipv4Addr::LOCALHOST.into());
        }
        let _ = TcpStream::connect_timeout(&dial, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn handle_conn(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST_BYTES {
            return respond(&mut stream, 431, "Request Header Fields Too Large", "", "");
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let mut request_line = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = match (request_line.next(), request_line.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&mut stream, 400, "Bad Request", "", ""),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "Method Not Allowed", "", "");
    }
    // Scrapers may append query strings (`/metrics?format=...`); route on
    // the path alone.
    match path.split('?').next().unwrap_or(path) {
        "/metrics" => respond(
            &mut stream,
            200,
            "OK",
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            &registry.render_openmetrics(),
        ),
        "/progress" => match registry.progress_json() {
            Some(json) => respond(
                &mut stream,
                200,
                "OK",
                "application/json; charset=utf-8",
                &(json + "\n"),
            ),
            None => respond(
                &mut stream,
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "no progress gauges attached\n",
            ),
        },
        "/healthz" => respond(&mut stream, 200, "OK", "text/plain; charset=utf-8", "ok\n"),
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "unknown path; try /metrics, /progress, or /healthz\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let mut response = format!("HTTP/1.0 {status} {reason}\r\n");
    if !content_type.is_empty() {
        response.push_str(&format!("Content-Type: {content_type}\r\n"));
    }
    response.push_str(&format!(
        "Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    ));
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Plain HTTP/1.0 GET. Accepts `http://HOST:PORT/path` or `HOST:PORT/path`
/// and returns `(status, body)`. Only as much HTTP as the endpoints above
/// speak — enough for `tricluster watch` and shell smoke tests to scrape
/// without external tooling.
pub fn http_get(url: &str) -> Result<(u16, String), String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    let addr = authority
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {authority}: {e}"))?
        .next()
        .ok_or_else(|| format!("cannot resolve {authority}: no addresses"))?;
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)
        .map_err(|e| format!("cannot connect to {authority}: {e}"))?;
    let io_err = |e: std::io::Error| format!("http error talking to {authority}: {e}");
    stream.set_read_timeout(Some(IO_TIMEOUT)).map_err(io_err)?;
    stream.set_write_timeout(Some(IO_TIMEOUT)).map_err(io_err)?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.0\r\nHost: {authority}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(io_err)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(io_err)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed response from {authority}: {response:?}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;
    use crate::progress::{Phase, Progress};
    use crate::EventSink;

    fn served_registry() -> (MetricsServer, Arc<Registry>, Arc<Progress>) {
        let registry = Arc::new(Registry::new());
        let progress = Arc::new(Progress::new());
        registry.attach_progress(progress.clone());
        let server =
            MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind an ephemeral port");
        (server, registry, progress)
    }

    #[test]
    fn serves_metrics_progress_and_healthz() {
        let (server, registry, progress) = served_registry();
        let sink: &dyn EventSink = &*registry;
        sink.counter(names::TC_RECORDED, 7);
        progress.set_phase(Phase::Prune);

        let (status, body) = http_get(&format!("{}/healthz", server.url())).unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = http_get(&format!("{}/metrics", server.url())).unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("tricluster_tricluster_recorded_total 7"),
            "{body}"
        );
        assert!(body.ends_with("# EOF\n"), "{body}");

        let (status, body) = http_get(&format!("{}/progress", server.url())).unwrap();
        assert_eq!(status, 200);
        let snap = crate::json::Json::parse(body.trim()).expect("valid JSON body");
        assert_eq!(
            snap.get_path(&["progress", "phase"])
                .and_then(|v| v.as_str()),
            Some("prune")
        );
    }

    #[test]
    fn unknown_paths_404_and_non_get_405() {
        let (server, _registry, _progress) = served_registry();
        let (status, _) = http_get(&format!("{}/nope", server.url())).unwrap();
        assert_eq!(status, 404);
        // Query strings are routed on the path alone.
        let (status, _) = http_get(&format!("{}/healthz?verbose=1", server.url())).unwrap();
        assert_eq!(status, 200);
        // A hand-written POST gets 405.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");
    }

    #[test]
    fn progress_endpoint_404s_without_gauges() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::serve("127.0.0.1:0", registry).unwrap();
        let (status, _) = http_get(&format!("{}/progress", server.url())).unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn drop_shuts_the_listener_down() {
        let (server, _registry, _progress) = served_registry();
        let addr = server.local_addr();
        drop(server);
        // The port is released: a fresh connect must fail (or be refused
        // fast), and a new server can re-bind the same address.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
        let registry = Arc::new(Registry::new());
        let rebound = MetricsServer::serve(&addr.to_string(), registry).expect("address released");
        assert_eq!(rebound.local_addr(), addr);
    }

    #[test]
    fn http_get_rejects_unreachable_and_malformed_targets() {
        assert!(http_get("definitely not a url").is_err());
        // A released ephemeral port: connection refused surfaces as Err.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        assert!(http_get(&format!("http://{addr}/metrics")).is_err());
    }
}
