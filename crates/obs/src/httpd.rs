//! Minimal std-only HTTP server for live metrics scrapes and the mining
//! daemon.
//!
//! Two servers share one request parser ([`read_request`]):
//!
//! * [`MetricsServer`] — the read-only scrape endpoint attached to a
//!   single run (`/metrics`, `/progress`, `/healthz`), serial
//!   connections, dies with the run.
//! * [`HttpServer`] — the generic listener `tricluster serve` builds on:
//!   an arbitrary `Request → Response` handler, one thread per
//!   connection (capped, overload answered with an inline 503), and
//!   per-connection `catch_unwind` so a panicking handler yields a 500
//!   while the daemon keeps accepting.
//!
//! The parser enforces the protocol-level robustness rules both servers
//! rely on: the request head is capped (431 instead of unbounded
//! buffering), bodies are read only up to a caller-set limit (413 past
//! it), and only GET/POST/DELETE are admitted (405 otherwise). Dropping
//! either server stops its accept thread deterministically (stop flag +
//! self-connect to unblock `accept`).
//!
//! [`http_get`] is the matching client: just enough HTTP/1.0 to scrape
//! these endpoints without a dependency. [`http_get_retry`] adds bounded
//! retry-with-backoff on connection-refused, for callers racing a
//! just-spawned listener; [`http_post`] / [`http_delete`] round out what
//! `tricluster submit` needs.

use crate::metrics::Registry;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-connection I/O deadline: a stuck client must not wedge a serve
/// thread indefinitely.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Upper bound on an accepted request head; enough for any client's
/// request line + headers.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Most concurrent connection threads an [`HttpServer`] runs; excess
/// connections get an inline 503 from the accept loop.
const MAX_CONNECTIONS: usize = 32;

/// One parsed HTTP request: method, path (query string stripped), body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, or `DELETE` (anything else is rejected upstream).
    pub method: String,
    /// Request path with any `?query` stripped.
    pub path: String,
    /// Request body (empty unless a `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// One HTTP response: status code, content type, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value (empty = omit the header).
    pub content_type: String,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json; charset=utf-8".into(),
            body: body.into(),
        }
    }

    /// Serializes the response as HTTP/1.0 onto `stream`.
    fn write_to(self, stream: &mut TcpStream) -> std::io::Result<()> {
        #[cfg(feature = "failpoints")]
        if let Some(msg) = tricluster_failpoint::trigger("serve.response.write") {
            // An injected write fault behaves like a client that vanished
            // mid-response: this response is lost, the serve loop survives.
            return Err(std::io::Error::other(msg));
        }
        let mut head = format!("HTTP/1.0 {} {}\r\n", self.status, reason(self.status));
        if !self.content_type.is_empty() {
            head.push_str(&format!("Content-Type: {}\r\n", self.content_type));
        }
        head.push_str(&format!(
            "Content-Length: {}\r\nConnection: close\r\n\r\n",
            self.body.len()
        ));
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Canonical reason phrase for the status codes this crate emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Reads and parses one request from `stream`.
///
/// Protocol-level rejections come back as `Err(Response)` for the caller
/// to write: 431 when the head outgrows [`MAX_REQUEST_BYTES`], 400 on a
/// malformed request line or `Content-Length`, 405 for any method other
/// than GET/POST/DELETE, 413 when the declared body exceeds `max_body`.
/// `Ok(None)` means the client closed before sending a full head.
fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Option<Request>, Response> {
    let io_reject = |_| Response::text(400, "request read failed\n");
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let split = loop {
        if let Some(i) = find_head_end(&head) {
            break i;
        }
        if head.len() > MAX_REQUEST_BYTES {
            return Err(Response::text(431, "request head too large\n"));
        }
        let n = stream.read(&mut buf).map_err(io_reject)?;
        if n == 0 {
            if head.is_empty() {
                return Ok(None);
            }
            return Err(Response::text(400, "truncated request head\n"));
        }
        head.extend_from_slice(&buf[..n]);
    };
    let mut body = head.split_off(split + 4);
    let head = String::from_utf8_lossy(&head);
    let mut request_line = head.lines().next().unwrap_or("").split_whitespace();
    let (method, raw_path) = match (request_line.next(), request_line.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return Err(Response::text(400, "malformed request line\n")),
    };
    if !["GET", "POST", "DELETE"].contains(&method) {
        return Err(Response::text(405, "allowed methods: GET, POST, DELETE\n"));
    }
    let content_length = head
        .lines()
        .skip(1)
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>())
        })
        .transpose()
        .map_err(|_| Response::text(400, "malformed Content-Length\n"))?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(Response::text(413, "request body too large\n"));
    }
    body.truncate(content_length); // pipelined bytes past the body are ignored
    while body.len() < content_length {
        let n = stream.read(&mut buf).map_err(io_reject)?;
        if n == 0 {
            return Err(Response::text(400, "truncated request body\n"));
        }
        let want = content_length - body.len();
        body.extend_from_slice(&buf[..n.min(want)]);
    }
    // Clients may append query strings (`/metrics?format=...`); route on
    // the path alone.
    let path = raw_path.split('?').next().unwrap_or(raw_path).to_owned();
    Ok(Some(Request {
        method: method.to_owned(),
        path,
        body,
    }))
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A running scrape endpoint. Dropping it shuts the listener down and
/// joins the serve thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `registry`.
    pub fn serve(addr: &str, registry: Arc<Registry>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("metrics-httpd".into())
            .spawn(move || {
                // Connections are handled serially — scrapers poll at
                // second granularity and every response is a point-in-time
                // render, so there is nothing to win by handling them
                // concurrently.
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        return;
                    }
                    if let Ok(stream) = conn {
                        // A failed scrape (timeout, closed pipe) only loses
                        // that one response; the serve loop survives it.
                        let _ = handle_scrape_conn(stream, &registry);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The actually bound address (resolves a requested port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Scrape base URL, e.g. `http://127.0.0.1:37012`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = connect_back(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Unblocks a listener's `accept` with one throwaway connection; an
/// unspecified bind address (0.0.0.0) is dialed back via loopback.
fn connect_back(mut dial: SocketAddr) -> std::io::Result<TcpStream> {
    if dial.ip().is_unspecified() {
        dial.set_ip(Ipv4Addr::LOCALHOST.into());
    }
    TcpStream::connect_timeout(&dial, IO_TIMEOUT)
}

fn handle_scrape_conn(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = match read_request(&mut stream, 0) {
        Ok(Some(request)) => request,
        Ok(None) => return Ok(()),
        Err(response) => return response.write_to(&mut stream),
    };
    let response = if request.method != "GET" {
        Response::text(405, "scrape endpoints are GET-only\n")
    } else {
        match request.path.as_str() {
            "/metrics" => Response {
                status: 200,
                content_type: "application/openmetrics-text; version=1.0.0; charset=utf-8".into(),
                body: registry.render_openmetrics(),
            },
            "/progress" => match registry.progress_json() {
                Some(json) => Response::json(200, json + "\n"),
                None => Response::text(404, "no progress gauges attached\n"),
            },
            "/healthz" => Response::text(200, "ok\n"),
            _ => Response::text(404, "unknown path; try /metrics, /progress, or /healthz\n"),
        }
    };
    response.write_to(&mut stream)
}

/// A shareable `Request → Response` handler.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// A generic HTTP/1.0 listener for long-lived daemons.
///
/// Each accepted connection is parsed ([`read_request`]) and handled on
/// its own thread, so one slow client cannot wedge the daemon; at most
/// [`MAX_CONNECTIONS`] run at once (the accept loop answers excess
/// connections 503 inline). The handler runs behind `catch_unwind`: a
/// panic becomes a 500 response and the daemon keeps serving. Dropping
/// the server stops the accept thread and waits (bounded by the I/O
/// timeouts) for in-flight connection threads.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` and serves `handler`; request bodies beyond
    /// `max_body` bytes are rejected 413 before the handler runs.
    pub fn serve(addr: &str, max_body: usize, handler: Handler) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let thread_stop = stop.clone();
        let thread_active = active.clone();
        let handle = std::thread::Builder::new()
            .name("serve-httpd".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(mut stream) = conn else { continue };
                    if thread_active.load(Ordering::Acquire) >= MAX_CONNECTIONS {
                        // Shed load without spawning: the 503 is written
                        // from the accept loop (cheap, bounded by the
                        // write timeout).
                        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                        let _ = Response::json(503, "{\"error\":\"overloaded\"}\n")
                            .write_to(&mut stream);
                        continue;
                    }
                    thread_active.fetch_add(1, Ordering::AcqRel);
                    let handler = handler.clone();
                    let active = thread_active.clone();
                    let spawned =
                        std::thread::Builder::new()
                            .name("serve-conn".into())
                            .spawn(move || {
                                let _ = handle_generic_conn(stream, max_body, &handler);
                                active.fetch_sub(1, Ordering::AcqRel);
                            });
                    if spawned.is_err() {
                        // Could not spawn (resource exhaustion): undo the
                        // count; the connection drops, the daemon lives.
                        thread_active.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            })?;
        Ok(HttpServer {
            addr,
            stop,
            active,
            handle: Some(handle),
        })
    }

    /// The actually bound address (resolves a requested port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL, e.g. `http://127.0.0.1:37012`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = connect_back(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        // Give in-flight connection threads (each bounded by IO_TIMEOUT)
        // a chance to finish writing before the process moves on.
        let deadline = std::time::Instant::now() + IO_TIMEOUT;
        while self.active.load(Ordering::Acquire) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

fn handle_generic_conn(
    mut stream: TcpStream,
    max_body: usize,
    handler: &Handler,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = match read_request(&mut stream, max_body) {
        Ok(Some(request)) => request,
        Ok(None) => return Ok(()),
        Err(response) => return response.write_to(&mut stream),
    };
    let response = match catch_unwind(AssertUnwindSafe(|| handler(request))) {
        Ok(response) => response,
        // The handler's own isolation failed; degrade to a structured 500
        // and keep the daemon alive.
        Err(_) => Response::json(500, "{\"error\":\"internal\"}\n"),
    };
    response.write_to(&mut stream)
}

/// Plain HTTP/1.0 GET. Accepts `http://HOST:PORT/path` or `HOST:PORT/path`
/// and returns `(status, body)`. Only as much HTTP as the endpoints above
/// speak — enough for `tricluster watch` and shell smoke tests to scrape
/// without external tooling.
pub fn http_get(url: &str) -> Result<(u16, String), String> {
    http_request(url, "GET", "", b"")
}

/// Outcome of one [`http_get_retry`] call: the final response or error,
/// plus how much retrying it took to get there — so callers polling a
/// daemon (`submit --wait`, `watch`) can report startup races instead of
/// silently absorbing them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryResult {
    /// The final `(status, body)`, or the last attempt's error.
    pub outcome: Result<(u16, String), String>,
    /// Connection attempts actually made (1 = first try resolved it).
    pub attempts: u32,
    /// Total time slept between attempts.
    pub total_backoff: Duration,
}

impl RetryResult {
    /// Collapses to the plain result, discarding the retry telemetry.
    pub fn into_result(self) -> Result<(u16, String), String> {
        self.outcome
    }
}

/// [`http_get`] with bounded retry on connection-refused: `attempts`
/// tries total, sleeping `backoff` then doubling between tries. This
/// closes the race against a just-spawned listener whose bind has not
/// landed yet — any response (or a non-refused error) returns
/// immediately. The returned [`RetryResult`] carries the attempt count
/// and total backoff alongside the response.
pub fn http_get_retry(url: &str, attempts: u32, backoff: Duration) -> RetryResult {
    let mut delay = backoff;
    let mut made = 0u32;
    let mut total_backoff = Duration::ZERO;
    let mut last = Err("no attempts".to_owned());
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(delay);
            total_backoff += delay;
            delay = delay.saturating_mul(2);
        }
        made = attempt + 1;
        last = http_get(url);
        match &last {
            Err(e) if e.contains("cannot connect") => continue,
            _ => break,
        }
    }
    RetryResult {
        outcome: last,
        attempts: made,
        total_backoff,
    }
}

/// Plain HTTP/1.0 POST of `body` with the given `Content-Type`.
pub fn http_post(url: &str, content_type: &str, body: &[u8]) -> Result<(u16, String), String> {
    http_request(url, "POST", content_type, body)
}

/// Plain HTTP/1.0 DELETE.
pub fn http_delete(url: &str) -> Result<(u16, String), String> {
    http_request(url, "DELETE", "", b"")
}

fn http_request(
    url: &str,
    method: &str,
    content_type: &str,
    body: &[u8],
) -> Result<(u16, String), String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    let addr = authority
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {authority}: {e}"))?
        .next()
        .ok_or_else(|| format!("cannot resolve {authority}: no addresses"))?;
    // An injected connect fault looks exactly like connection-refused, so
    // the retry loop above treats it as a startup race.
    #[cfg(feature = "failpoints")]
    if let Some(msg) = tricluster_failpoint::trigger("httpd.client.connect") {
        return Err(format!("cannot connect to {authority}: {msg}"));
    }
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)
        .map_err(|e| format!("cannot connect to {authority}: {e}"))?;
    let io_err = |e: std::io::Error| format!("http error talking to {authority}: {e}");
    stream.set_read_timeout(Some(IO_TIMEOUT)).map_err(io_err)?;
    stream.set_write_timeout(Some(IO_TIMEOUT)).map_err(io_err)?;
    let mut head = format!("{method} {path} HTTP/1.0\r\nHost: {authority}\r\n");
    if !content_type.is_empty() {
        head.push_str(&format!("Content-Type: {content_type}\r\n"));
    }
    if !body.is_empty() || method == "POST" {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes()).map_err(io_err)?;
    stream.write_all(body).map_err(io_err)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(io_err)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed response from {authority}: {response:?}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;
    use crate::progress::{Phase, Progress};
    use crate::EventSink;

    fn served_registry() -> (MetricsServer, Arc<Registry>, Arc<Progress>) {
        let registry = Arc::new(Registry::new());
        let progress = Arc::new(Progress::new());
        registry.attach_progress(progress.clone());
        let server =
            MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind an ephemeral port");
        (server, registry, progress)
    }

    #[test]
    fn serves_metrics_progress_and_healthz() {
        let (server, registry, progress) = served_registry();
        let sink: &dyn EventSink = &*registry;
        sink.counter(names::TC_RECORDED, 7);
        progress.set_phase(Phase::Prune);

        let (status, body) = http_get(&format!("{}/healthz", server.url())).unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = http_get(&format!("{}/metrics", server.url())).unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("tricluster_tricluster_recorded_total 7"),
            "{body}"
        );
        assert!(body.ends_with("# EOF\n"), "{body}");

        let (status, body) = http_get(&format!("{}/progress", server.url())).unwrap();
        assert_eq!(status, 200);
        let snap = crate::json::Json::parse(body.trim()).expect("valid JSON body");
        assert_eq!(
            snap.get_path(&["progress", "phase"])
                .and_then(|v| v.as_str()),
            Some("prune")
        );
    }

    #[test]
    fn unknown_paths_404_and_non_get_405() {
        let (server, _registry, _progress) = served_registry();
        let (status, _) = http_get(&format!("{}/nope", server.url())).unwrap();
        assert_eq!(status, 404);
        // Query strings are routed on the path alone.
        let (status, _) = http_get(&format!("{}/healthz?verbose=1", server.url())).unwrap();
        assert_eq!(status, 200);
        // A hand-written POST gets 405 (scrape endpoints are GET-only).
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");
    }

    #[test]
    fn oversize_request_head_is_rejected_431() {
        let (server, _registry, _progress) = served_registry();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.0\r\n").unwrap();
        let filler = format!("X-Filler: {}\r\n", "y".repeat(1000));
        for _ in 0..16 {
            // Past MAX_REQUEST_BYTES the server must answer without ever
            // seeing the end of this head.
            if stream.write_all(filler.as_bytes()).is_err() {
                break; // server already responded and closed
            }
        }
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(response.starts_with("HTTP/1.0 431"), "{response}");
    }

    #[test]
    fn unknown_method_is_rejected_405() {
        let (server, _registry, _progress) = served_registry();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"BREW /coffee HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");
    }

    #[test]
    fn progress_endpoint_404s_without_gauges() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::serve("127.0.0.1:0", registry).unwrap();
        let (status, _) = http_get(&format!("{}/progress", server.url())).unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn drop_shuts_the_listener_down() {
        let (server, _registry, _progress) = served_registry();
        let addr = server.local_addr();
        drop(server);
        // The port is released: a fresh connect must fail (or be refused
        // fast), and a new server can re-bind the same address.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
        let registry = Arc::new(Registry::new());
        let rebound = MetricsServer::serve(&addr.to_string(), registry).expect("address released");
        assert_eq!(rebound.local_addr(), addr);
    }

    #[test]
    fn http_get_rejects_unreachable_and_malformed_targets() {
        assert!(http_get("definitely not a url").is_err());
        // A released ephemeral port: connection refused surfaces as Err.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        assert!(http_get(&format!("http://{addr}/metrics")).is_err());
    }

    fn echo_server() -> HttpServer {
        let handler: Handler = Arc::new(|req: Request| match req.path.as_str() {
            "/panic" => panic!("handler exploded"),
            _ => Response::text(
                200,
                format!(
                    "{} {} {}\n",
                    req.method,
                    req.path,
                    String::from_utf8_lossy(&req.body)
                ),
            ),
        });
        HttpServer::serve("127.0.0.1:0", 64, handler).expect("bind an ephemeral port")
    }

    #[test]
    fn generic_server_routes_get_post_delete() {
        let server = echo_server();
        let (status, body) = http_get(&format!("{}/a?q=1", server.url())).unwrap();
        assert_eq!((status, body.as_str()), (200, "GET /a \n"));
        let (status, body) =
            http_post(&format!("{}/b", server.url()), "text/plain", b"hi").unwrap();
        assert_eq!((status, body.as_str()), (200, "POST /b hi\n"));
        let (status, body) = http_delete(&format!("{}/c", server.url())).unwrap();
        assert_eq!((status, body.as_str()), (200, "DELETE /c \n"));
    }

    #[test]
    fn oversize_body_is_rejected_413_before_the_handler() {
        let server = echo_server();
        let big = vec![b'x'; 65];
        let (status, _) = http_post(&format!("{}/b", server.url()), "text/plain", &big).unwrap();
        assert_eq!(status, 413);
        // The daemon still serves after the rejection.
        let (status, _) = http_get(&format!("{}/ok", server.url())).unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn handler_panic_becomes_500_and_daemon_survives() {
        let server = echo_server();
        let (status, body) = http_get(&format!("{}/panic", server.url())).unwrap();
        assert_eq!(status, 500);
        assert!(body.contains("internal"), "{body}");
        let (status, _) = http_get(&format!("{}/still-up", server.url())).unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn generic_server_drop_releases_the_port() {
        let server = echo_server();
        let addr = server.local_addr();
        drop(server);
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn http_get_retry_waits_out_a_late_listener() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        // Nothing listening yet: a plain get refuses immediately, the
        // retrying get keeps trying until the server appears.
        assert!(http_get(&format!("http://{addr}/healthz")).is_err());
        let spawner = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            let registry = Arc::new(Registry::new());
            MetricsServer::serve(&addr.to_string(), registry).expect("rebind the probed address")
        });
        let retry = http_get_retry(
            &format!("http://{addr}/healthz"),
            8,
            Duration::from_millis(40),
        );
        let (status, body) = retry
            .outcome
            .as_ref()
            .expect("retry outlasts the startup race");
        assert_eq!((*status, body.as_str()), (200, "ok\n"));
        assert!(retry.attempts > 1, "the race forced at least one retry");
        assert!(retry.total_backoff >= Duration::from_millis(40));
        drop(spawner.join().unwrap());
    }

    #[test]
    fn http_get_retry_gives_up_after_bounded_attempts() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let start = std::time::Instant::now();
        let retry = http_get_retry(
            &format!("http://{addr}/healthz"),
            3,
            Duration::from_millis(10),
        );
        let err = retry.outcome.unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
        // 3 attempts with 10+20 ms of backoff, not an unbounded spin.
        assert_eq!(retry.attempts, 3);
        assert_eq!(retry.total_backoff, Duration::from_millis(30));
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    /// Satellite: the retry loop is bounded and its telemetry exact even
    /// when every refusal is injected — `configure_times` makes the first
    /// N connects fail deterministically, with a live server behind them.
    #[cfg(feature = "failpoints")]
    #[test]
    fn http_get_retry_is_bounded_under_injected_connect_faults() {
        use tricluster_failpoint::{configure, configure_times, scenario, Action};
        let _guard = scenario();
        let (server, _registry, _progress) = served_registry();

        // Two injected refusals, then the real server answers: exactly
        // three attempts, backoff 5+10 ms.
        configure_times("httpd.client.connect", Action::Error, 2);
        let retry = http_get_retry(
            &format!("{}/healthz", server.url()),
            8,
            Duration::from_millis(5),
        );
        assert_eq!(retry.attempts, 3);
        assert_eq!(retry.total_backoff, Duration::from_millis(15));
        assert_eq!(
            retry.outcome.as_ref().map(|(s, _)| *s).ok(),
            Some(200),
            "{:?}",
            retry.outcome
        );

        // Unbounded refusals: the loop gives up at its attempt budget
        // instead of spinning, and still reports what it spent.
        configure("httpd.client.connect", Action::Error);
        let retry = http_get_retry(
            &format!("{}/healthz", server.url()),
            3,
            Duration::from_millis(1),
        );
        assert_eq!(retry.attempts, 3);
        assert_eq!(retry.total_backoff, Duration::from_millis(3));
        let err = retry.outcome.unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");
    }
}
