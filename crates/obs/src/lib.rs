//! Zero-dependency observability for the TriCluster pipeline.
//!
//! The design splits instrumentation into two tiers so the hot DFS loops
//! never pay for a sink they do not use:
//!
//! * **Aggregates** — phase code accumulates plain local stat structs and
//!   folds them into a [`RunReport`] (counters + span timings) once per
//!   phase. No locking, no allocation on the hot path.
//! * **Trace events** — optional per-decision [`Event`]s routed through an
//!   [`EventSink`]. Callers guard construction with [`EventSink::enabled`]
//!   (or the [`emit`] helper), so the default [`NullSink`] reduces to a
//!   single inlinable branch.
//!
//! Everything here is pure `std`: the JSON emitted by [`json::Json`] and
//! [`JsonLinesSink`] is hand-rolled.

use std::collections::BTreeMap;
use std::io::Write as IoWrite;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub mod alloc;
pub mod hist;
pub mod httpd;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod names;
pub mod progress;
pub mod service;
pub mod timeline;

pub use hist::Histogram;

/// A dynamically typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    fn to_json(&self) -> json::Json {
        match self {
            Value::U64(v) => json::Json::U64(*v),
            Value::I64(v) => json::Json::I64(*v),
            Value::F64(v) => json::Json::F64(*v),
            Value::Bool(v) => json::Json::Bool(*v),
            Value::Str(v) => json::Json::Str(v.clone()),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

/// A single trace event: a name plus ordered `(key, value)` fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub name: &'static str,
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    pub fn new(name: &'static str) -> Self {
        Event {
            name,
            fields: Vec::new(),
        }
    }

    /// Builder-style field attachment.
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Render as a single JSON object (one trace line).
    pub fn to_json(&self) -> json::Json {
        let mut obj = vec![("event".to_string(), json::Json::Str(self.name.to_string()))];
        for (k, v) in &self.fields {
            obj.push((k.to_string(), v.to_json()));
        }
        json::Json::Obj(obj)
    }
}

/// Destination for instrumentation signals.
///
/// Implementations must be `Sync`: the miner shares one sink across its
/// per-slice worker threads. All methods default to no-ops so sinks can
/// implement only what they care about.
pub trait EventSink: Sync {
    /// Whether per-decision trace events should be constructed at all.
    /// Hot paths check this before building an [`Event`].
    fn enabled(&self) -> bool {
        true
    }

    /// A counter was incremented by `delta`.
    fn counter(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// A named span completed with the given duration.
    fn span(&self, name: &'static str, elapsed: Duration) {
        let _ = (name, elapsed);
    }

    /// A trace event occurred.
    fn event(&self, event: Event) {
        let _ = event;
    }

    /// Whether value-distribution histograms should be collected at all.
    ///
    /// Distinct from [`EventSink::enabled`] (which gates per-decision
    /// trace *events*): histogram recording happens on DFS hot paths, so
    /// phases check this once up front and skip all bucket work when no
    /// sink wants it. Defaults to `false`; aggregate sinks opt in.
    fn wants_histograms(&self) -> bool {
        false
    }

    /// A phase published a complete named histogram (already accumulated
    /// locally and merged in deterministic order).
    fn histogram(&self, name: &'static str, hist: &Histogram) {
        let _ = (name, hist);
    }

    /// The timeline this sink wants worker threads to journal into, if
    /// any. The miner asks once at run start; `None` (the default) keeps
    /// timeline recording fully disabled.
    fn timeline(&self) -> Option<&timeline::Timeline> {
        None
    }

    /// The progress gauges this sink wants the pipeline to update, if
    /// any. `None` (the default) keeps every update site a no-op branch.
    fn progress(&self) -> Option<std::sync::Arc<progress::Progress>> {
        None
    }
}

/// Build an event lazily and deliver it only if the sink wants events.
#[inline]
pub fn emit(sink: &dyn EventSink, build: impl FnOnce() -> Event) {
    if sink.enabled() {
        sink.event(build());
    }
}

/// Sink that drops everything. `enabled()` is `false`, so guarded call
/// sites skip event construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// Fan a signal out to two sinks (e.g. a [`Recorder`] plus a trace writer).
pub struct Tee<'a>(pub &'a dyn EventSink, pub &'a dyn EventSink);

impl EventSink for Tee<'_> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }
    fn counter(&self, name: &'static str, delta: u64) {
        self.0.counter(name, delta);
        self.1.counter(name, delta);
    }
    fn span(&self, name: &'static str, elapsed: Duration) {
        self.0.span(name, elapsed);
        self.1.span(name, elapsed);
    }
    fn event(&self, event: Event) {
        if self.0.enabled() {
            self.0.event(event.clone());
        }
        if self.1.enabled() {
            self.1.event(event);
        }
    }
    fn wants_histograms(&self) -> bool {
        self.0.wants_histograms() || self.1.wants_histograms()
    }
    fn histogram(&self, name: &'static str, hist: &Histogram) {
        self.0.histogram(name, hist);
        self.1.histogram(name, hist);
    }
    fn timeline(&self) -> Option<&timeline::Timeline> {
        self.0.timeline().or_else(|| self.1.timeline())
    }
    fn progress(&self) -> Option<std::sync::Arc<progress::Progress>> {
        self.0.progress().or_else(|| self.1.progress())
    }
}

/// Fan a signal out to any number of sinks. Generalizes [`Tee`] for
/// callers composing a variable sink set (trace stream + histogram tap +
/// timeline + progress, each independently optional); an empty fan-out
/// behaves exactly like [`NullSink`].
pub struct Fanout<'a>(pub Vec<&'a dyn EventSink>);

impl EventSink for Fanout<'_> {
    fn enabled(&self) -> bool {
        self.0.iter().any(|s| s.enabled())
    }
    fn counter(&self, name: &'static str, delta: u64) {
        for s in &self.0 {
            s.counter(name, delta);
        }
    }
    fn span(&self, name: &'static str, elapsed: Duration) {
        for s in &self.0 {
            s.span(name, elapsed);
        }
    }
    fn event(&self, event: Event) {
        for s in &self.0 {
            if s.enabled() {
                s.event(event.clone());
            }
        }
    }
    fn wants_histograms(&self) -> bool {
        self.0.iter().any(|s| s.wants_histograms())
    }
    fn histogram(&self, name: &'static str, hist: &Histogram) {
        for s in &self.0 {
            s.histogram(name, hist);
        }
    }
    fn timeline(&self) -> Option<&timeline::Timeline> {
        self.0.iter().find_map(|s| s.timeline())
    }
    fn progress(&self) -> Option<std::sync::Arc<progress::Progress>> {
        self.0.iter().find_map(|s| s.progress())
    }
}

/// Aggregate statistics for one named span: call count, summed duration,
/// the worst single call, and a log-bucketed latency distribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed span instances.
    pub count: u64,
    /// Sum of their durations.
    pub total: Duration,
    /// Longest single duration.
    pub max: Duration,
    /// Distribution of per-call durations in nanoseconds.
    pub hist: Histogram,
}

impl SpanStats {
    pub fn record(&mut self, elapsed: Duration) {
        self.count += 1;
        self.total += elapsed;
        self.max = self.max.max(elapsed);
        self.hist.record(elapsed.as_nanos() as u64);
    }

    /// Folds another span's stats into this one.
    pub fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.hist.merge(&other.hist);
    }

    /// Duration at quantile `q` (bucket-resolution, see
    /// [`Histogram::quantile`]).
    pub fn quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.hist.quantile(q))
    }
}

/// Structured summary of one pipeline run: monotonic counters, span
/// timings, and value-distribution histograms, all keyed by stable dotted
/// names (see [`names`]).
///
/// Counter and histogram values are deterministic for a given input and
/// parameter set — they are accumulated per worker and merged in slice
/// order, so thread count and scheduling cannot change them. Span totals
/// (and their latency histograms) are wall-clock measurements and
/// naturally vary between runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    pub counters: BTreeMap<&'static str, u64>,
    pub spans: BTreeMap<&'static str, SpanStats>,
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl RunReport {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        if delta > 0 {
            *self.counters.entry(name).or_insert(0) += delta;
        }
    }

    pub fn add_span(&mut self, name: &'static str, elapsed: Duration) {
        self.spans.entry(name).or_default().record(elapsed);
    }

    /// Fold a published histogram into the named slot. Empty histograms
    /// are dropped so untaken code paths do not materialize keys (same
    /// policy as zero counter deltas).
    pub fn add_histogram(&mut self, name: &'static str, hist: &Histogram) {
        if !hist.is_empty() {
            self.histograms.entry(name).or_default().merge(hist);
        }
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total recorded time for a span (zero if absent).
    pub fn span_total(&self, name: &str) -> Duration {
        self.spans.get(name).map(|s| s.total).unwrap_or_default()
    }

    /// The named value histogram, if anything was recorded into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: &RunReport) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, stats) in &other.spans {
            self.spans.entry(name).or_default().merge(stats);
        }
        for (name, hist) in &other.histograms {
            self.add_histogram(name, hist);
        }
    }

    /// Replay every counter, span, and histogram into a sink (used to
    /// mirror the aggregate view into a trace stream or recorder).
    pub fn replay_into(&self, sink: &dyn EventSink) {
        for (name, delta) in &self.counters {
            sink.counter(name, *delta);
        }
        for (name, stats) in &self.spans {
            sink.span(name, stats.total);
        }
        for (name, hist) in &self.histograms {
            sink.histogram(name, hist);
        }
    }

    /// The counters-only view, with owned keys (handy for equality tests).
    pub fn counter_map(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// The histograms view, with owned keys (handy for equality tests).
    pub fn histogram_map(&self) -> BTreeMap<String, Histogram> {
        self.histograms
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Render as a JSON object
    /// `{"counters": {...}, "spans": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> json::Json {
        let counters = json::Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.to_string(), json::Json::U64(*v)))
                .collect(),
        );
        let spans = json::Json::Obj(
            self.spans
                .iter()
                .map(|(k, s)| {
                    (
                        k.to_string(),
                        json::Json::Obj(vec![
                            ("count".to_string(), json::Json::U64(s.count)),
                            (
                                "total_ns".to_string(),
                                json::Json::U64(s.total.as_nanos() as u64),
                            ),
                            (
                                "total_secs".to_string(),
                                json::Json::F64(s.total.as_secs_f64()),
                            ),
                            (
                                "max_ns".to_string(),
                                json::Json::U64(s.max.as_nanos() as u64),
                            ),
                            ("p50_ns".to_string(), json::Json::U64(s.hist.quantile(0.50))),
                            ("p95_ns".to_string(), json::Json::U64(s.hist.quantile(0.95))),
                            ("p99_ns".to_string(), json::Json::U64(s.hist.quantile(0.99))),
                        ]),
                    )
                })
                .collect(),
        );
        let histograms = json::Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| (k.to_string(), h.to_json()))
                .collect(),
        );
        json::Json::Obj(vec![
            ("counters".to_string(), counters),
            ("spans".to_string(), spans),
            ("histograms".to_string(), histograms),
        ])
    }

    /// Total wall-clock this report accounts for: the sum of the
    /// top-level, non-overlapping pipeline phase spans. Nested spans
    /// (per-slice range-graph/bicluster CPU views) are excluded so shares
    /// computed against this add up sensibly. Falls back to the largest
    /// single span when none of the phase spans were recorded (e.g. a
    /// hand-built report), so shares are still meaningful.
    pub fn wall_time(&self) -> Duration {
        let phases = [
            names::SPAN_SLICES_WALL,
            names::SPAN_TRICLUSTER,
            names::SPAN_PRUNE,
            names::SPAN_METRICS,
        ];
        let wall: Duration = phases.iter().map(|n| self.span_total(n)).sum();
        if wall > Duration::ZERO {
            wall
        } else {
            self.spans
                .values()
                .map(|s| s.total)
                .max()
                .unwrap_or_default()
        }
    }

    /// Human-readable multi-line rendering: spans (with share-of-wall
    /// percentage, per-call max, and p50/p95/p99 when a span fired more
    /// than once), then counters, then value histograms.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            let width = self.spans.keys().map(|k| k.len()).max().unwrap_or(0);
            let wall = self.wall_time();
            for (name, s) in &self.spans {
                let ms = |d: Duration| d.as_secs_f64() * 1e3;
                let share = if wall > Duration::ZERO {
                    format!(
                        "  {:>5.1}%",
                        100.0 * s.total.as_secs_f64() / wall.as_secs_f64()
                    )
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "  {name:width$}  {:>10.3} ms{share}  ({} call{}",
                    ms(s.total),
                    s.count,
                    if s.count == 1 { "" } else { "s" },
                ));
                if s.count > 1 {
                    out.push_str(&format!(
                        ", max {:.3} ms, p50/p95/p99 {:.3}/{:.3}/{:.3} ms",
                        ms(s.max),
                        ms(s.quantile(0.50)),
                        ms(s.quantile(0.95)),
                        ms(s.quantile(0.99)),
                    ));
                }
                out.push_str(")\n");
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:width$}  {v:>12}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let width = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, h) in &self.histograms {
                out.push_str(&format!("  {name:width$}  {}\n", h.render_summary()));
            }
        }
        out
    }
}

/// Thread-safe aggregating sink: counters and spans accumulate into a
/// [`RunReport`], events are buffered in arrival order.
#[derive(Default)]
pub struct Recorder {
    inner: Mutex<RecorderInner>,
}

#[derive(Default)]
struct RecorderInner {
    report: RunReport,
    events: Vec<Event>,
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of the aggregate view so far.
    pub fn snapshot(&self) -> RunReport {
        self.inner.lock().unwrap().report.clone()
    }

    /// Drain buffered trace events.
    pub fn take_events(&self) -> Vec<Event> {
        std::mem::take(&mut self.inner.lock().unwrap().events)
    }
}

impl EventSink for Recorder {
    fn counter(&self, name: &'static str, delta: u64) {
        self.inner.lock().unwrap().report.add_counter(name, delta);
    }
    fn span(&self, name: &'static str, elapsed: Duration) {
        self.inner.lock().unwrap().report.add_span(name, elapsed);
    }
    fn event(&self, event: Event) {
        self.inner.lock().unwrap().events.push(event);
    }
    fn wants_histograms(&self) -> bool {
        true
    }
    fn histogram(&self, name: &'static str, hist: &Histogram) {
        self.inner.lock().unwrap().report.add_histogram(name, hist);
    }
}

/// Sink that writes each trace event as one JSON line. Counters, spans,
/// and histograms are also emitted as `counter` / `span` / `hist`
/// pseudo-events so a trace file is self-contained.
///
/// The writer is flushed when the sink is dropped (so buffered trace
/// files survive an early CLI exit or a panic-unwind), and additionally
/// after *every* line when constructed via [`JsonLinesSink::flushing`] /
/// [`JsonLinesSink::stderr`] — interactive streams should never sit on
/// buffered events.
pub struct JsonLinesSink<W: IoWrite + Send> {
    // `Option` so `into_inner` can move the writer out from under the
    // `Drop` impl; `None` only between `take()` and the final drop.
    writer: Mutex<Option<W>>,
    flush_each: bool,
}

impl<W: IoWrite + Send> JsonLinesSink<W> {
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer: Mutex::new(Some(writer)),
            flush_each: false,
        }
    }

    /// A sink that flushes after every line, for unbuffered/interactive
    /// destinations.
    pub fn flushing(writer: W) -> Self {
        JsonLinesSink {
            writer: Mutex::new(Some(writer)),
            flush_each: true,
        }
    }

    /// Flush and reclaim the writer.
    ///
    /// Panics if the writer was already taken (it never is outside this
    /// method) — recovering a poisoned lock instead of propagating keeps
    /// the writer reclaimable even after a panicking sibling thread.
    pub fn into_inner(self) -> W {
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
            .expect("writer taken twice");
        let _ = w.flush();
        w
    }

    fn write_json(&self, value: &json::Json) {
        // Render the whole line — terminator included — before touching
        // the writer, then hand it over in a single `write_all`: a panic
        // while rendering (or between events) can then never leave a
        // torn half-line in the stream, and drop-time flushing can only
        // ever emit complete lines.
        let mut line = value.render();
        line.push('\n');
        #[cfg(feature = "failpoints")]
        if let Some(msg) = tricluster_failpoint::trigger("obs.jsonlines.line") {
            panic!("{msg}");
        }
        let mut guard = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(w) = guard.as_mut() {
            // A broken pipe on a trace stream should not abort the mine.
            let _ = w.write_all(line.as_bytes());
            if self.flush_each {
                let _ = w.flush();
            }
        }
    }
}

impl JsonLinesSink<std::io::Stderr> {
    /// A line-per-event trace stream on stderr, flushed per event.
    pub fn stderr() -> Self {
        Self::flushing(std::io::stderr())
    }
}

impl<W: IoWrite + Send> Drop for JsonLinesSink<W> {
    fn drop(&mut self) {
        // Flush even through a poisoned lock: the writer only ever holds
        // complete lines (see `write_json`), so flushing after a panic is
        // safe and keeps the trace file intact up to the failure.
        let mut guard = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(w) = guard.as_mut() {
            let _ = w.flush();
        }
    }
}

impl<W: IoWrite + Send> EventSink for JsonLinesSink<W> {
    fn counter(&self, name: &'static str, delta: u64) {
        self.write_json(&json::Json::Obj(vec![
            ("counter".to_string(), json::Json::Str(name.to_string())),
            ("delta".to_string(), json::Json::U64(delta)),
        ]));
    }
    fn span(&self, name: &'static str, elapsed: Duration) {
        self.write_json(&json::Json::Obj(vec![
            ("span".to_string(), json::Json::Str(name.to_string())),
            (
                "elapsed_ns".to_string(),
                json::Json::U64(elapsed.as_nanos() as u64),
            ),
        ]));
    }
    fn event(&self, event: Event) {
        self.write_json(&event.to_json());
    }
    fn histogram(&self, name: &'static str, hist: &Histogram) {
        self.write_json(&json::Json::Obj(vec![
            ("hist".to_string(), json::Json::Str(name.to_string())),
            ("summary".to_string(), hist.to_json()),
        ]));
    }
}

/// RAII span timer: reports its elapsed time to the sink on drop and can
/// also be stopped explicitly to retrieve the duration.
pub struct SpanTimer<'a> {
    sink: &'a dyn EventSink,
    name: &'static str,
    start: Instant,
    armed: bool,
}

impl<'a> SpanTimer<'a> {
    pub fn start(sink: &'a dyn EventSink, name: &'static str) -> Self {
        SpanTimer {
            sink,
            name,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Stop the timer, report the span, and return the elapsed duration.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.armed = false;
        self.sink.span(self.name, elapsed);
        elapsed
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.sink.span(self.name, self.start.elapsed());
        }
    }
}

/// Time a closure, report the span to the sink, and return both the result
/// and the measured duration.
pub fn timed<R>(sink: &dyn EventSink, name: &'static str, f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let result = f();
    let elapsed = start.elapsed();
    sink.span(name, elapsed);
    (result, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let sink = NullSink;
        assert!(!sink.enabled());
        let mut built = false;
        emit(&sink, || {
            built = true;
            Event::new("never")
        });
        assert!(!built, "NullSink must not construct events");
        sink.counter("x", 1);
        sink.span("y", Duration::from_millis(1));
    }

    #[test]
    fn recorder_aggregates_counters_and_spans() {
        let rec = Recorder::new();
        rec.counter("a", 2);
        rec.counter("a", 3);
        rec.counter("b", 1);
        rec.span("s", Duration::from_millis(2));
        rec.span("s", Duration::from_millis(3));
        let report = rec.snapshot();
        assert_eq!(report.counter("a"), 5);
        assert_eq!(report.counter("b"), 1);
        assert_eq!(report.counter("missing"), 0);
        let s = &report.spans["s"];
        assert_eq!(s.count, 2);
        assert_eq!(s.total, Duration::from_millis(5));
        assert_eq!(s.max, Duration::from_millis(3));
        assert_eq!(s.hist.count(), 2);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        rec.counter("ticks", 1);
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counter("ticks"), 400);
    }

    #[test]
    fn report_merge_and_replay() {
        let mut a = RunReport::new();
        a.add_counter("x", 1);
        a.add_span("s", Duration::from_millis(1));
        let mut b = RunReport::new();
        b.add_counter("x", 2);
        b.add_counter("y", 7);
        b.add_span("s", Duration::from_millis(4));
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 7);
        assert_eq!(a.spans["s"].count, 2);

        let rec = Recorder::new();
        a.replay_into(&rec);
        let round = rec.snapshot();
        assert_eq!(round.counter_map(), a.counter_map());
    }

    #[test]
    fn zero_deltas_do_not_materialize_counters() {
        let mut r = RunReport::new();
        r.add_counter("x", 0);
        assert!(r.counters.is_empty());
    }

    #[test]
    fn tee_routes_to_both_sinks() {
        let a = Recorder::new();
        let b = Recorder::new();
        let tee = Tee(&a, &b);
        assert!(tee.enabled());
        tee.counter("c", 4);
        tee.event(Event::new("e").field("k", 1u64));
        assert_eq!(a.snapshot().counter("c"), 4);
        assert_eq!(b.snapshot().counter("c"), 4);
        assert_eq!(a.take_events().len(), 1);
        assert_eq!(b.take_events().len(), 1);
    }

    #[test]
    fn json_lines_sink_emits_one_object_per_line() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.event(Event::new("slice").field("t", 3u64).field("ok", true));
        sink.counter("n", 9);
        sink.span("phase", Duration::from_nanos(1500));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], r#"{"event":"slice","t":3,"ok":true}"#);
        assert_eq!(lines[1], r#"{"counter":"n","delta":9}"#);
        assert_eq!(lines[2], r#"{"span":"phase","elapsed_ns":1500}"#);
    }

    #[test]
    fn span_timer_records_on_drop_and_stop() {
        let rec = Recorder::new();
        {
            let _t = SpanTimer::start(&rec, "dropped");
        }
        let t = SpanTimer::start(&rec, "stopped");
        let d = t.stop();
        let report = rec.snapshot();
        assert_eq!(report.spans["dropped"].count, 1);
        assert_eq!(report.spans["stopped"].count, 1);
        assert_eq!(report.spans["stopped"].total, d);
    }

    #[test]
    fn recorder_wants_and_merges_histograms() {
        let rec = Recorder::new();
        assert!(rec.wants_histograms());
        assert!(!NullSink.wants_histograms());
        let mut h = Histogram::default();
        h.record(5);
        h.record(100);
        rec.histogram("widths", &h);
        rec.histogram("widths", &h);
        let report = rec.snapshot();
        let got = report.histogram("widths").expect("recorded");
        assert_eq!(got.count(), 4);
        assert_eq!(got.max(), 100);
        // empty histograms never materialize a key
        rec.histogram("empty", &Histogram::default());
        assert!(rec.snapshot().histogram("empty").is_none());
    }

    #[test]
    fn tee_forwards_histograms_and_ors_wants() {
        let a = Recorder::new();
        let null = NullSink;
        let tee = Tee(&null, &a);
        assert!(tee.wants_histograms());
        let mut h = Histogram::default();
        h.record(7);
        tee.histogram("x", &h);
        assert_eq!(a.snapshot().histogram("x").unwrap().count(), 1);
        let both_null = Tee(&null, &null);
        assert!(!both_null.wants_histograms());
    }

    #[test]
    fn report_merge_folds_span_hists_and_histograms() {
        let mut a = RunReport::new();
        a.add_span("s", Duration::from_millis(1));
        let mut b = RunReport::new();
        b.add_span("s", Duration::from_millis(9));
        let mut h = Histogram::default();
        h.record(3);
        b.add_histogram("vals", &h);
        a.merge(&b);
        assert_eq!(a.spans["s"].max, Duration::from_millis(9));
        assert_eq!(a.spans["s"].hist.count(), 2);
        assert_eq!(a.histogram("vals").unwrap().count(), 1);

        // replay carries histograms through a sink round-trip
        let rec = Recorder::new();
        a.replay_into(&rec);
        assert_eq!(rec.snapshot().histogram_map(), a.histogram_map());
    }

    #[test]
    fn json_lines_sink_flushes_on_drop() {
        use std::sync::atomic::{AtomicBool, Ordering};
        static FLUSHED: AtomicBool = AtomicBool::new(false);
        struct Probe;
        impl IoWrite for Probe {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                FLUSHED.store(true, Ordering::SeqCst);
                Ok(())
            }
        }
        {
            let sink = JsonLinesSink::new(Probe);
            sink.counter("c", 1);
            assert!(!FLUSHED.load(Ordering::SeqCst), "new() buffers until drop");
        }
        assert!(FLUSHED.load(Ordering::SeqCst), "drop must flush");

        FLUSHED.store(false, Ordering::SeqCst);
        let sink = JsonLinesSink::flushing(Probe);
        sink.counter("c", 1);
        assert!(
            FLUSHED.load(Ordering::SeqCst),
            "flushing() flushes per line"
        );
    }

    #[test]
    fn json_lines_sink_writes_histogram_lines() {
        let sink = JsonLinesSink::new(Vec::new());
        let mut h = Histogram::default();
        h.record(4);
        sink.histogram("fanout", &h);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(
            text.starts_with(r#"{"hist":"fanout","summary":{"#),
            "{text}"
        );
    }

    #[test]
    fn span_json_and_human_include_percentiles() {
        let mut r = RunReport::new();
        for ms in [1u64, 2, 3, 50] {
            r.add_span("phase", Duration::from_millis(ms));
        }
        let rendered = r.to_json().render();
        for key in ["\"max_ns\":", "\"p50_ns\":", "\"p95_ns\":", "\"p99_ns\":"] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
        let human = r.render_human();
        assert!(human.contains("max"), "{human}");
        assert!(human.contains("p50/p95/p99"), "{human}");

        let mut h = Histogram::default();
        h.record_n(12, 3);
        r.add_histogram("dfs.fanout", &h);
        let human = r.render_human();
        assert!(human.contains("histograms:"), "{human}");
        assert!(human.contains("dfs.fanout"), "{human}");
    }

    #[test]
    fn human_rendering_shows_share_of_wall() {
        let mut r = RunReport::new();
        r.add_span(names::SPAN_SLICES_WALL, Duration::from_millis(75));
        r.add_span(names::SPAN_TRICLUSTER, Duration::from_millis(20));
        r.add_span(names::SPAN_PRUNE, Duration::from_millis(5));
        assert_eq!(r.wall_time(), Duration::from_millis(100));
        let text = r.render_human();
        assert!(text.contains(" 75.0%"), "{text}");
        assert!(text.contains(" 20.0%"), "{text}");
        assert!(text.contains("  5.0%"), "{text}");

        // without any phase span, shares fall back to the largest span
        let mut r = RunReport::new();
        r.add_span("a", Duration::from_millis(40));
        r.add_span("b", Duration::from_millis(80));
        let text = r.render_human();
        assert!(text.contains(" 50.0%"), "{text}");
        assert!(text.contains("100.0%"), "{text}");

        // a zero-duration report renders without any share column
        let mut r = RunReport::new();
        r.add_span("z", Duration::ZERO);
        assert!(!r.render_human().contains('%'));
    }

    #[test]
    fn fanout_routes_to_all_sinks_and_finds_extensions() {
        let a = Recorder::new();
        let b = Recorder::new();
        let tl = timeline::Timeline::new();
        let ps = progress::ProgressSink(std::sync::Arc::new(progress::Progress::new()));
        let fan = Fanout(vec![&a, &tl, &ps, &b]);
        assert!(fan.enabled());
        assert!(fan.wants_histograms());
        fan.counter("c", 2);
        fan.event(Event::new("e"));
        let mut h = Histogram::default();
        h.record(1);
        fan.histogram("h", &h);
        for rec in [&a, &b] {
            assert_eq!(rec.snapshot().counter("c"), 2);
            assert_eq!(rec.take_events().len(), 1);
            assert!(rec.snapshot().histogram("h").is_some());
        }
        assert!(fan.timeline().is_some());
        assert!(fan.progress().is_some());

        let empty = Fanout(Vec::new());
        assert!(!empty.enabled());
        assert!(!empty.wants_histograms());
        assert!(empty.timeline().is_none());
        assert!(empty.progress().is_none());
    }

    #[test]
    fn tee_forwards_timeline_and_progress() {
        let tl = timeline::Timeline::new();
        let ps = progress::ProgressSink(std::sync::Arc::new(progress::Progress::new()));
        let null = NullSink;
        assert!(Tee(&null, &tl).timeline().is_some());
        assert!(Tee(&tl, &null).timeline().is_some());
        assert!(Tee(&null, &ps).progress().is_some());
        assert!(Tee(&null, &null).timeline().is_none());
        assert!(Tee(&null, &null).progress().is_none());
    }

    #[test]
    fn human_rendering_lists_spans_then_counters() {
        let mut r = RunReport::new();
        r.add_counter("dfs.nodes", 42);
        r.add_span("phase.total", Duration::from_millis(12));
        let text = r.render_human();
        assert!(text.contains("spans:"));
        assert!(text.contains("phase.total"));
        assert!(text.contains("counters:"));
        assert!(text.contains("dfs.nodes"));
        assert!(text.find("spans:").unwrap() < text.find("counters:").unwrap());
    }
}
