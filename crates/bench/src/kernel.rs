//! `bench kernel` — stage-level microbenchmark of the range-graph pair
//! kernel.
//!
//! The range-graph build's cost is almost entirely the per-column-pair
//! kernel: classify each gene's ratio into a sign group, sort the group,
//! walk ε-windows, and dedupe the emitted gene-sets. The end-to-end
//! `fig7` sweep only reports the phase total, so when the phase needs
//! optimizing there is nothing attributing time *within* a pair. This
//! module synthesizes single-slice workloads at several gene counts and
//! times the kernel's stages in isolation, over every sample-column pair:
//!
//! - `transpose` — [`SliceColumns::from_slice`], the once-per-slice
//!   columnar copy (normalized per matrix cell);
//! - `pair` — the full production [`compute_pair`] (classify + divide +
//!   find-ranges + dedupe), exactly the closure the build hands to its
//!   workers;
//! - `classify` — the ratio classify/divide loop alone (a verbatim mirror
//!   of the head of `compute_pair`);
//! - `ranges` — [`find_ranges_into`] alone on pre-classified sign groups
//!   (packed-key sort, window walk, chain split/patch, dedupe);
//! - `intersect` — the chunked [`BitSet`] intersection kernels
//!   (`intersect_into` + `intersection_count_at_least_hinted`) over the
//!   gene-sets the workload actually emits, as the bicluster DFS drives
//!   them.
//!
//! `pair − classify − ranges` is therefore the residual spent on group
//! bookkeeping, and `ranges` vs `pair` splits "sorting/windowing" from
//! "dividing/classifying" — the two candidate targets when the phase
//! regresses.
//!
//! Every stage reports **ns per gene unit** so points at different sizes
//! are comparable: a gene unit is one matrix cell for `transpose`, one
//! gene of one pair for the pair-shaped stages, and one universe gene of
//! one set pair for `intersect`. Timings are wall-clock on whatever core
//! the process lands on — treat cross-machine numbers as incomparable and
//! same-machine ratios as the signal.

use std::hint::black_box;
use std::time::{Duration, Instant};

use tricluster_bitset::BitSet;
use tricluster_core::obs::json::Json;
use tricluster_core::range::{find_ranges_into, RangeScratch, RatioRange, SignGroup};
use tricluster_core::rangegraph::{compute_pair, PairScratch, SliceColumns};
use tricluster_core::Params;
use tricluster_synth::{generate, SynthSpec};

use crate::fig7_params;

/// One timed stage of a [`KernelPoint`].
#[derive(Debug, Clone)]
pub struct StageTime {
    /// Stage name (`transpose`, `pair`, `classify`, `ranges`, `intersect`).
    pub name: &'static str,
    /// Total wall-clock time across all sweeps.
    pub total_secs: f64,
    /// Number of timed sweeps over the whole workload.
    pub sweeps: u64,
    /// `total_secs / (sweeps × gene units per sweep)`, in nanoseconds.
    pub ns_per_gene: f64,
}

impl StageTime {
    fn new(name: &'static str, total_secs: f64, sweeps: u64, units_per_sweep: u64) -> Self {
        StageTime {
            name,
            total_secs,
            sweeps,
            ns_per_gene: total_secs * 1e9 / (sweeps as f64 * units_per_sweep as f64),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .with("stage", Json::Str(self.name.into()))
            .with("total_secs", Json::F64(self.total_secs))
            .with("sweeps", Json::U64(self.sweeps))
            .with("ns_per_gene", Json::F64(self.ns_per_gene))
    }
}

/// One measured workload size.
#[derive(Debug, Clone)]
pub struct KernelPoint {
    /// Gene count of the synthesized slice.
    pub n_genes: usize,
    /// Sample-column count of the synthesized slice.
    pub n_samples: usize,
    /// Column pairs per sweep (`n_samples choose 2`).
    pub pairs: usize,
    /// Ratio ranges the workload emits across all pairs (the `intersect`
    /// stage runs over these gene-sets).
    pub edges: usize,
    /// Per-stage timings.
    pub stages: Vec<StageTime>,
}

impl KernelPoint {
    /// Serializes the point for the `tricluster.kernel/v1` document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("genes", Json::U64(self.n_genes as u64))
            .with("samples", Json::U64(self.n_samples as u64))
            .with("pairs", Json::U64(self.pairs as u64))
            .with("edges", Json::U64(self.edges as u64))
            .with(
                "stages",
                Json::Arr(self.stages.iter().map(StageTime::to_json).collect()),
            )
    }
}

/// The synthetic workload at `n_genes × n_samples`: one time slice with a
/// handful of disjoint embedded clusters, matching the fig7 sweep family's
/// noise and value ranges so kernel numbers track the sweep's regime.
pub fn kernel_spec(n_genes: usize, n_samples: usize) -> SynthSpec {
    let gene_block = (n_genes / 5).clamp(10, 80).min(n_genes);
    let sample_block = n_samples.min(5);
    SynthSpec {
        n_genes,
        n_samples,
        n_times: 1,
        n_clusters: (n_genes / (2 * gene_block)).max(1),
        overlap_fraction: 0.0,
        gene_range: (gene_block, gene_block),
        sample_range: (sample_block, sample_block),
        time_range: (1, 1),
        ..SynthSpec::default()
    }
}

/// Runs `sweep` repeatedly (after one untimed warm-up) until at least
/// `min_time` has elapsed; returns `(total_secs, sweeps)`.
fn run_timed(min_time: Duration, mut sweep: impl FnMut()) -> (f64, u64) {
    sweep();
    let mut sweeps = 0u64;
    let start = Instant::now();
    loop {
        sweep();
        sweeps += 1;
        let elapsed = start.elapsed();
        if elapsed >= min_time {
            return (elapsed.as_secs_f64(), sweeps);
        }
    }
}

const SIGNS: [(usize, SignGroup); 3] = [
    (0, SignGroup::Positive),
    (1, SignGroup::PosNeg),
    (2, SignGroup::NegPos),
];

/// The classify/divide head of `compute_pair`, kept in sync by the
/// `classify_mirror_matches_compute_pair` test: same sign-group routing,
/// same `(va / vb).abs()` division, same finite/positive filter.
fn classify_pair(cols: &SliceColumns, a: usize, b: usize, groups: &mut [Vec<(f64, usize)>; 3]) {
    for g in groups.iter_mut() {
        g.clear();
    }
    let (ca, cb) = (cols.col(a), cols.col(b));
    // Mirrors `compute_pair`'s head: branch-free division pass, then
    // sign-bit routing gated on the quotient alone.
    let mut quot = Vec::with_capacity(ca.len());
    quot.extend(ca.iter().zip(cb).map(|(&va, &vb)| (va / vb).abs()));
    for (gene, (&va, &vb)) in ca.iter().zip(cb).enumerate() {
        let ratio = quot[gene];
        if ratio.is_finite() && ratio > 0.0 {
            let sa = (va.to_bits() >> 63) as usize;
            let sb = (vb.to_bits() >> 63) as usize;
            let gi = (sa ^ sb) * (1 + sa);
            groups[gi].push((ratio, gene));
        }
    }
}

/// All `(a, b)` column pairs with `a < b`, in build order.
fn column_pairs(n_samples: usize) -> Vec<(usize, usize)> {
    (0..n_samples)
        .flat_map(|a| (a + 1..n_samples).map(move |b| (a, b)))
        .collect()
}

/// Measures every stage at one workload size. `min_time` is the timed
/// budget per stage (the sweep loop stops at the first boundary past it).
pub fn measure_point(spec: &SynthSpec, min_time: Duration) -> KernelPoint {
    let data = generate(spec);
    let m = &data.matrix;
    let (n_genes, n_samples) = (m.n_genes(), m.n_samples());
    let params: Params = fig7_params(spec);
    let slice = m.time_slice_raw(0);
    let cols = SliceColumns::from_slice(slice, n_genes, n_samples);
    let pairs = column_pairs(n_samples);
    let pair_units = (pairs.len() * n_genes) as u64;
    let mut stages = Vec::new();

    // transpose: the once-per-slice columnar copy.
    {
        let (secs, sweeps) = run_timed(min_time, || {
            black_box(SliceColumns::from_slice(slice, n_genes, n_samples));
        });
        stages.push(StageTime::new(
            "transpose",
            secs,
            sweeps,
            (n_genes * n_samples) as u64,
        ));
    }

    // pair: the full production kernel over every column pair.
    {
        let mut scratch = PairScratch::default();
        let mut out = Vec::new();
        let (secs, sweeps) = run_timed(min_time, || {
            for &(a, b) in &pairs {
                out.clear();
                black_box(compute_pair(&cols, a, b, &params, &mut scratch, &mut out));
            }
        });
        stages.push(StageTime::new("pair", secs, sweeps, pair_units));
    }

    // classify: the divide/route loop alone.
    {
        let mut groups: [Vec<(f64, usize)>; 3] = Default::default();
        let (secs, sweeps) = run_timed(min_time, || {
            for &(a, b) in &pairs {
                classify_pair(&cols, a, b, &mut groups);
                black_box(&groups);
            }
        });
        stages.push(StageTime::new("classify", secs, sweeps, pair_units));
    }

    // ranges: find_ranges_into alone, on pre-classified groups.
    {
        let pre: Vec<[Vec<(f64, usize)>; 3]> = pairs
            .iter()
            .map(|&(a, b)| {
                let mut groups: [Vec<(f64, usize)>; 3] = Default::default();
                classify_pair(&cols, a, b, &mut groups);
                groups
            })
            .collect();
        let mut scratch = RangeScratch::default();
        let mut out: Vec<RatioRange> = Vec::new();
        let (secs, sweeps) = run_timed(min_time, || {
            for groups in &pre {
                out.clear();
                for &(gi, sign) in &SIGNS {
                    if groups[gi].len() < params.min_genes {
                        continue;
                    }
                    find_ranges_into(
                        &groups[gi],
                        sign,
                        params.epsilon,
                        params.min_genes,
                        n_genes,
                        params.range_extension,
                        &mut scratch,
                        &mut out,
                    );
                }
                black_box(&out);
            }
        });
        stages.push(StageTime::new("ranges", secs, sweeps, pair_units));
    }

    // intersect: the chunked bitset kernels over the emitted gene-sets.
    let mut all: Vec<RatioRange> = Vec::new();
    {
        let mut scratch = PairScratch::default();
        for &(a, b) in &pairs {
            compute_pair(&cols, a, b, &params, &mut scratch, &mut all);
        }
    }
    let edges = all.len();
    if edges >= 2 {
        let counts: Vec<usize> = all.iter().map(|r| r.genes.count()).collect();
        let mut inter = BitSet::new(n_genes);
        let (secs, sweeps) = run_timed(min_time, || {
            let mut acc = 0usize;
            for i in 0..edges - 1 {
                let (x, y) = (&all[i].genes, &all[i + 1].genes);
                acc += inter.intersect_into(x, y);
                acc += usize::from(x.intersection_count_at_least_hinted(
                    y,
                    params.min_genes,
                    counts[i],
                ));
            }
            black_box(acc);
        });
        stages.push(StageTime::new(
            "intersect",
            secs,
            sweeps,
            ((edges - 1) * n_genes) as u64,
        ));
    }

    KernelPoint {
        n_genes,
        n_samples,
        pairs: pairs.len(),
        edges,
        stages,
    }
}

/// Assembles the `tricluster.kernel/v1` document from measured points.
pub fn kernel_doc(points: &[KernelPoint]) -> Json {
    Json::obj()
        .with("schema", Json::Str("tricluster.kernel/v1".into()))
        .with(
            "unit",
            Json::Str("ns_per_gene: nanoseconds per gene unit (see stage docs)".into()),
        )
        .with(
            "points",
            Json::Arr(points.iter().map(KernelPoint::to_json).collect()),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bench-local classify mirror must route and divide exactly like
    /// the production head of `compute_pair`: feeding its groups into
    /// `find_ranges_into` must reproduce `compute_pair`'s output bit for
    /// bit.
    #[test]
    fn classify_mirror_matches_compute_pair() {
        let spec = kernel_spec(120, 6);
        let data = generate(&spec);
        let m = &data.matrix;
        let params = fig7_params(&spec);
        let cols = SliceColumns::from_slice(m.time_slice_raw(0), m.n_genes(), m.n_samples());
        let mut pair_scratch = PairScratch::default();
        let mut range_scratch = RangeScratch::default();
        let mut groups: [Vec<(f64, usize)>; 3] = Default::default();
        for (a, b) in column_pairs(m.n_samples()) {
            let mut want = Vec::new();
            let ratios = compute_pair(&cols, a, b, &params, &mut pair_scratch, &mut want);
            classify_pair(&cols, a, b, &mut groups);
            assert_eq!(
                ratios,
                groups.iter().map(|g| g.len() as u64).sum::<u64>(),
                "pair ({a},{b}): classified ratio count"
            );
            let mut got = Vec::new();
            for &(gi, sign) in &SIGNS {
                if groups[gi].len() < params.min_genes {
                    continue;
                }
                find_ranges_into(
                    &groups[gi],
                    sign,
                    params.epsilon,
                    params.min_genes,
                    m.n_genes(),
                    params.range_extension,
                    &mut range_scratch,
                    &mut got,
                );
            }
            assert_eq!(want, got, "pair ({a},{b}): emitted ranges");
        }
    }

    #[test]
    fn measure_point_times_every_stage() {
        let spec = kernel_spec(80, 5);
        let point = measure_point(&spec, Duration::from_millis(1));
        assert_eq!(point.n_genes, 80);
        assert_eq!(point.pairs, 10);
        let names: Vec<_> = point.stages.iter().map(|s| s.name).collect();
        assert!(names.starts_with(&["transpose", "pair", "classify", "ranges"]));
        for s in &point.stages {
            assert!(s.sweeps >= 1, "{}: at least one timed sweep", s.name);
            assert!(
                s.ns_per_gene.is_finite() && s.ns_per_gene > 0.0,
                "{}: sane ns/gene",
                s.name
            );
        }
        let doc = kernel_doc(&[point]);
        assert!(doc.render().contains("tricluster.kernel/v1"));
    }

    #[test]
    fn kernel_spec_is_valid_at_extremes() {
        for genes in [10, 100, 1600, 5000] {
            for samples in [2, 10] {
                // generate() panics on an invalid spec; building the
                // dataset is the assertion.
                let spec = kernel_spec(genes, samples);
                let data = generate(&spec);
                assert_eq!(data.matrix.n_genes(), genes);
                assert_eq!(data.matrix.n_times(), 1);
            }
        }
    }

    #[test]
    fn kernel_spec_params_build() {
        let spec = kernel_spec(400, 10);
        let p = fig7_params(&spec);
        assert!(p.epsilon > 0.0);
        assert!(p.min_genes >= 2);
    }
}
