//! The perf-regression gate: compares two `fig7 --json` documents
//! (typically the committed `BENCH_baseline.json` against a fresh run) and
//! reports every point whose wall time, per-phase time, or peak memory
//! exceeds the baseline by more than the tolerance.
//!
//! Timing noise is handled two ways: a *relative* tolerance (a current
//! value may exceed baseline × (1 + tol)) and an *absolute noise floor*
//! added on top, so microsecond-scale phases cannot trip the gate on
//! scheduler jitter. Memory comparisons run only when **both** documents
//! carry measured `peak_live_bytes` (i.e. both were produced by
//! `track-alloc` builds).

use tricluster_core::obs::json::Json;
use tricluster_core::obs::ledger::exceeds;

/// Allowed headroom over the baseline before a value counts as a
/// regression: `current > baseline * (1 + rel) + floor`.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Relative headroom for wall/phase times (0.5 = +50%).
    pub time_rel: f64,
    /// Absolute time noise floor in seconds.
    pub time_floor_secs: f64,
    /// Relative headroom for peak memory.
    pub mem_rel: f64,
    /// Absolute memory noise floor in bytes.
    pub mem_floor_bytes: u64,
}

impl Default for Tolerances {
    /// Generous CI defaults: +50% / 50 ms on time (shared machines are
    /// noisy), +25% / 1 MiB on memory (allocator high-water marks are
    /// nearly deterministic).
    fn default() -> Self {
        Tolerances {
            time_rel: 0.5,
            time_floor_secs: 0.05,
            mem_rel: 0.25,
            mem_floor_bytes: 1 << 20,
        }
    }
}

/// One tolerance-exceeding metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Where, e.g. `smoke-genes[0].phases.biclusters_cpu_secs`.
    pub metric: String,
    pub baseline: f64,
    pub current: f64,
    /// The limit the current value exceeded.
    pub allowed: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.6} -> {:.6} (allowed {:.6}, +{:.0}%)",
            self.metric,
            self.baseline,
            self.current,
            self.allowed,
            (self.current / self.baseline.max(f64::MIN_POSITIVE) - 1.0) * 100.0
        )
    }
}

/// Compares `current` against `baseline`. Returns the list of regressions
/// (empty = gate passes) or an error when the documents are not comparable
/// — wrong schema, missing sweeps, or mismatched sweep shapes — which means
/// the baseline needs regenerating, not that performance regressed.
pub fn diff(baseline: &Json, current: &Json, tol: &Tolerances) -> Result<Vec<Regression>, String> {
    for (label, doc) in [("baseline", baseline), ("current", current)] {
        match doc.get("schema").and_then(Json::as_str) {
            Some(s) if s.starts_with("tricluster.fig7/") => {}
            other => return Err(format!("{label}: unexpected schema {other:?}")),
        }
    }
    let sweeps_of = |doc: &Json, label: &str| -> Result<Vec<Json>, String> {
        Ok(doc
            .get("sweeps")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{label}: missing sweeps array"))?
            .to_vec())
    };
    let base_sweeps = sweeps_of(baseline, "baseline")?;
    let cur_sweeps = sweeps_of(current, "current")?;

    let mut out = Vec::new();
    for bs in &base_sweeps {
        let figure = bs
            .get("figure")
            .and_then(Json::as_str)
            .ok_or("baseline: sweep without figure label")?;
        let cs = cur_sweeps
            .iter()
            .find(|s| s.get("figure").and_then(Json::as_str) == Some(figure))
            .ok_or_else(|| format!("current run is missing sweep {figure:?}"))?;
        let points = |s: &Json| s.get("points").and_then(Json::as_arr).map(<[Json]>::to_vec);
        let (bp, cp) = match (points(bs), points(cs)) {
            (Some(b), Some(c)) if b.len() == c.len() => (b, c),
            _ => return Err(format!("sweep {figure:?}: point lists differ in shape")),
        };
        for (i, (b, c)) in bp.iter().zip(&cp).enumerate() {
            if b.get("x").and_then(Json::as_f64) != c.get("x").and_then(Json::as_f64) {
                return Err(format!("sweep {figure:?} point {i}: x values differ"));
            }
            compare_point(figure, i, b, c, tol, &mut out)?;
        }
    }
    Ok(out)
}

fn compare_point(
    figure: &str,
    i: usize,
    base: &Json,
    cur: &Json,
    tol: &Tolerances,
    out: &mut Vec<Regression>,
) -> Result<(), String> {
    let mut check_time = |metric: String, b: f64, c: f64| {
        if let Some(allowed) = exceeds(b, c, tol.time_rel, tol.time_floor_secs) {
            out.push(Regression {
                metric,
                baseline: b,
                current: c,
                allowed,
            });
        }
    };
    let seconds = |p: &Json, label: &str| {
        p.get("seconds")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{label} {figure}[{i}]: missing seconds"))
    };
    check_time(
        format!("{figure}[{i}].seconds"),
        seconds(base, "baseline")?,
        seconds(cur, "current")?,
    );
    if let (Some(bp), Some(cp)) = (
        base.get("phases").and_then(Json::as_obj),
        cur.get("phases").and_then(Json::as_obj),
    ) {
        for (key, bv) in bp {
            let (Some(b), Some(c)) = (
                bv.as_f64(),
                cp.iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| v.as_f64()),
            ) else {
                continue;
            };
            check_time(format!("{figure}[{i}].phases.{key}"), b, c);
        }
    }
    if let (Some(b), Some(c)) = (
        base.get("peak_live_bytes").and_then(Json::as_u64),
        cur.get("peak_live_bytes").and_then(Json::as_u64),
    ) {
        if let Some(allowed) = exceeds(b as f64, c as f64, tol.mem_rel, tol.mem_floor_bytes as f64)
        {
            out.push(Regression {
                metric: format!("{figure}[{i}].peak_live_bytes"),
                baseline: b as f64,
                current: c as f64,
                allowed,
            });
        }
    }
    Ok(())
}

/// The `tricluster.report/v2` sections that are input-determined (and
/// therefore must be byte-identical across thread counts and fan-out
/// modes). Timings, spans, and measured-allocator data are deliberately
/// excluded: they vary run to run.
pub const DETERMINISTIC_SECTIONS: &[&[&str]] = &[
    &["matrix"],
    &["clusters"],
    &["truncated"],
    &["metrics"],
    &["report", "counters"],
    &["histograms"],
    &["search_space"],
    &["memory", "matrix_bytes"],
    &["memory", "rangegraph_peak_bytes"],
    &["memory", "bicluster_bytes"],
    &["memory", "tricluster_bytes"],
];

/// The determinism gate: compares the input-determined sections of two
/// `mine --report-json` v2 documents (typically the same input mined at two
/// thread counts). Returns the dotted paths of every differing section
/// (empty = identical), or an error when a document is not a v2 report.
pub fn determinism_diff(a: &Json, b: &Json) -> Result<Vec<String>, String> {
    for (label, doc) in [("first", a), ("second", b)] {
        match doc.get("schema").and_then(Json::as_str) {
            Some("tricluster.report/v2") => {}
            other => return Err(format!("{label} document: unexpected schema {other:?}")),
        }
    }
    let mut out = Vec::new();
    for path in DETERMINISTIC_SECTIONS {
        let dotted = path.join(".");
        let (va, vb) = (a.get_path(path), b.get_path(path));
        match (va, vb) {
            (Some(x), Some(y)) if x.render() == y.render() => {}
            (None, None) => {} // optional section absent in both is fine
            _ => out.push(dotted),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(seconds: f64, bicluster_secs: f64, peak: Option<u64>) -> Json {
        let mut point = Json::obj()
            .with("x", Json::F64(300.0))
            .with("seconds", Json::F64(seconds))
            .with("clusters", Json::U64(4))
            .with("recall", Json::F64(1.0))
            .with(
                "phases",
                Json::obj()
                    .with("slices_wall_secs", Json::F64(0.1))
                    .with("biclusters_cpu_secs", Json::F64(bicluster_secs)),
            );
        if let Some(p) = peak {
            point = point.with("peak_live_bytes", Json::U64(p));
        }
        Json::obj()
            .with("schema", Json::Str("tricluster.fig7/v2".into()))
            .with(
                "sweeps",
                Json::Arr(vec![Json::obj()
                    .with("figure", Json::Str("smoke-genes".into()))
                    .with("points", Json::Arr(vec![point]))]),
            )
    }

    #[test]
    fn identical_documents_pass() {
        let d = doc(0.5, 0.2, Some(1 << 22));
        assert_eq!(diff(&d, &d, &Tolerances::default()).unwrap(), vec![]);
    }

    #[test]
    fn small_noise_is_absorbed() {
        let base = doc(0.5, 0.2, Some(1 << 22));
        let cur = doc(0.6, 0.25, Some((1 << 22) + 4096));
        assert_eq!(diff(&base, &cur, &Tolerances::default()).unwrap(), vec![]);
    }

    #[test]
    fn large_time_regression_is_flagged() {
        let base = doc(0.5, 0.2, None);
        let cur = doc(2.0, 0.2, None);
        let regs = diff(&base, &cur, &Tolerances::default()).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "smoke-genes[0].seconds");
        assert!(regs[0].to_string().contains("seconds"));
    }

    #[test]
    fn phase_time_regression_is_flagged() {
        let base = doc(0.5, 0.2, None);
        let cur = doc(0.5, 0.9, None);
        let regs = diff(&base, &cur, &Tolerances::default()).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "smoke-genes[0].phases.biclusters_cpu_secs");
    }

    #[test]
    fn memory_regression_is_flagged_only_when_both_measured() {
        let base = doc(0.5, 0.2, Some(1 << 22));
        let cur = doc(0.5, 0.2, Some(1 << 24));
        let regs = diff(&base, &cur, &Tolerances::default()).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "smoke-genes[0].peak_live_bytes");
        // one side unmeasured: no memory comparison, no failure
        let cur_unmeasured = doc(0.5, 0.2, None);
        assert_eq!(
            diff(&base, &cur_unmeasured, &Tolerances::default()).unwrap(),
            vec![]
        );
    }

    #[test]
    fn tiny_phases_cannot_trip_on_jitter() {
        // 1 ms phase tripling stays under the 50 ms noise floor
        let base = doc(0.001, 0.001, None);
        let cur = doc(0.003, 0.003, None);
        assert_eq!(diff(&base, &cur, &Tolerances::default()).unwrap(), vec![]);
    }

    /// A minimal v2 report document with a tweakable counter value.
    fn report_doc(bc_nodes: u64, wall_secs: f64) -> Json {
        Json::obj()
            .with("schema", Json::Str("tricluster.report/v2".into()))
            .with(
                "matrix",
                Json::obj()
                    .with("genes", Json::U64(10))
                    .with("samples", Json::U64(7)),
            )
            .with("clusters", Json::U64(3))
            .with("truncated", Json::Bool(false))
            .with(
                "timings",
                Json::obj().with("slices_wall_secs", Json::F64(wall_secs)),
            )
            .with("metrics", Json::obj().with("cluster_count", Json::U64(3)))
            .with(
                "report",
                Json::obj().with(
                    "counters",
                    Json::obj().with("bicluster.dfs.nodes", Json::U64(bc_nodes)),
                ),
            )
            .with("histograms", Json::obj())
            .with(
                "memory",
                Json::obj()
                    .with("matrix_bytes", Json::U64(1120))
                    .with("rangegraph_peak_bytes", Json::U64(640))
                    .with("bicluster_bytes", Json::U64(320))
                    .with("tricluster_bytes", Json::U64(160)),
            )
            .with("search_space", Json::obj())
    }

    #[test]
    fn determinism_diff_ignores_timings_but_catches_counters() {
        let a = report_doc(100, 0.5);
        let same_but_slower = report_doc(100, 9.5);
        assert_eq!(
            determinism_diff(&a, &same_but_slower).unwrap(),
            Vec::<String>::new()
        );
        let drifted = report_doc(101, 0.5);
        let diffs = determinism_diff(&a, &drifted).unwrap();
        assert_eq!(diffs, vec!["report.counters".to_string()]);
    }

    #[test]
    fn determinism_diff_rejects_non_report_documents() {
        let a = report_doc(100, 0.5);
        let fig7 = doc(0.5, 0.2, None);
        assert!(determinism_diff(&a, &fig7).is_err());
        assert!(determinism_diff(&fig7, &a).is_err());
    }

    #[test]
    fn structural_mismatch_is_an_error_not_a_regression() {
        let base = doc(0.5, 0.2, None);
        let wrong_schema = Json::obj().with("schema", Json::Str("nope/v1".into()));
        assert!(diff(&base, &wrong_schema, &Tolerances::default()).is_err());
        let mut missing = doc(0.5, 0.2, None);
        if let Json::Obj(fields) = &mut missing {
            fields.retain(|(k, _)| k != "sweeps");
        }
        assert!(diff(&base, &missing, &Tolerances::default()).is_err());
    }
}
