//! Minimal std-only measurement harness for the `benches/` binaries.
//!
//! The build environment is offline, so Criterion is unavailable; this
//! harness provides the small subset we need: warm-up, repeated timed
//! runs, and a median/min/mean summary line per benchmark. Benchmarks run
//! with `cargo bench` exactly as before (the bench targets set
//! `harness = false`).

use std::time::{Duration, Instant};

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Group and benchmark id, e.g. `range_finding/find_ranges/8000_On`.
    pub name: String,
    /// Number of timed runs.
    pub runs: usize,
    /// Fastest run.
    pub min: Duration,
    /// Median run.
    pub median: Duration,
    /// Arithmetic mean of the runs.
    pub mean: Duration,
}

/// Runs `f` repeatedly and reports its timing summary.
///
/// The run count adapts to the workload: after one warm-up call, `f` runs
/// until both `min_runs` executions and roughly 200 ms of total time have
/// accumulated (capped at `max_runs`).
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    const MIN_RUNS: usize = 5;
    const MAX_RUNS: usize = 200;
    const TARGET: Duration = Duration::from_millis(200);

    std::hint::black_box(f()); // warm-up
    let mut samples: Vec<Duration> = Vec::new();
    let started = Instant::now();
    while samples.len() < MIN_RUNS || (samples.len() < MAX_RUNS && started.elapsed() < TARGET) {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort_unstable();
    let runs = samples.len();
    let total: Duration = samples.iter().sum();
    let m = Measurement {
        name: name.to_string(),
        runs,
        min: samples[0],
        median: samples[runs / 2],
        mean: total / runs as u32,
    };
    println!(
        "{:<55} median {:>12?}  min {:>12?}  mean {:>12?}  ({} runs)",
        m.name, m.median, m.min, m.mean, m.runs
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_numbers() {
        let m = bench("test/busywork", || {
            (0..10_000u64).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        assert!(m.runs >= 5);
        assert!(m.min <= m.median && m.median <= m.mean * 2);
    }
}
