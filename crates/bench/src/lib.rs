//! Shared harness code for the benchmark binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation (§5) has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md's experiment index), and a
//! Criterion group in `benches/` for statistically sound timing. This
//! library holds the pieces they share: the Figure 7 sweep definitions, a
//! no-cache ablation miner, and small formatting helpers.

#![forbid(unsafe_code)]

pub mod harness;
pub mod kernel;

use std::time::{Duration, Instant};
use tricluster_core::obs::{alloc, json::Json, EventSink, NullSink};
use tricluster_core::{mine_observed, FanoutDecision, Params, Timings};
use tricluster_synth::{generate, recovery, SynthSpec};

pub mod regress;

/// Whether to run at the paper's full scale (`TRICLUSTER_FULL=1`) or the
/// laptop-friendly default.
pub fn full_scale() -> bool {
    std::env::var("TRICLUSTER_FULL").is_ok_and(|v| v != "0")
}

/// The base synthetic spec for the Figure 7 sweeps: the paper's defaults
/// when `full` is set (4000×30×20 matrix, 10 clusters of 150×6×4, 20%
/// overlap, 3% noise), otherwise a scaled-down configuration with the same
/// proportions.
pub fn fig7_base(full: bool) -> SynthSpec {
    if full {
        SynthSpec::paper_default()
    } else {
        SynthSpec::default()
    }
}

/// Mining parameters used for the sweeps: ε sized to the spec's noise,
/// minimum shape at roughly half the embedded cluster shape (so recovery is
/// unambiguous but not tautological).
pub fn fig7_params(spec: &SynthSpec) -> Params {
    Params::builder()
        .epsilon(spec.suggested_epsilon())
        .min_genes(spec.gene_range.0 / 2)
        .min_samples(spec.sample_range.0.saturating_sub(1).max(2))
        .min_times(spec.time_range.0.saturating_sub(1).max(2))
        .build()
        .expect("valid sweep parameters")
}

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The varied parameter's value at this point.
    pub x: f64,
    /// Wall-clock mining time.
    pub time: Duration,
    /// Number of clusters found.
    pub clusters: usize,
    /// Recall of the embedded clusters at Jaccard ≥ 0.5.
    pub recall: f64,
    /// Per-phase breakdown of the mining run.
    pub timings: Timings,
    /// Peak live heap bytes during the mine; `None` unless the binary was
    /// built with the `track-alloc` feature (byte-accounting allocator).
    pub peak_live_bytes: Option<u64>,
    /// Bytes allocated during the mine; `None` without `track-alloc`.
    pub alloc_bytes: Option<u64>,
    /// Which fan-out granularity the scheduler chose for this run.
    pub fanout: FanoutDecision,
}

impl SweepPoint {
    /// JSON object for `--json` outputs: the headline numbers plus the
    /// per-phase breakdown (per-slice phases as summed CPU, see
    /// [`Timings`]) and — when the tracking allocator is installed —
    /// measured memory.
    pub fn to_json(&self) -> Json {
        let t = &self.timings;
        let secs = |d: Duration| Json::F64(d.as_secs_f64());
        let mut obj = Json::obj()
            .with("x", Json::F64(self.x))
            .with("seconds", secs(self.time))
            .with("clusters", Json::U64(self.clusters as u64))
            .with("recall", Json::F64(self.recall))
            .with(
                "phases",
                Json::obj()
                    .with("slices_wall_secs", secs(t.slices_wall))
                    .with("range_graphs_cpu_secs", secs(t.range_graphs))
                    .with("biclusters_cpu_secs", secs(t.biclusters))
                    .with("triclusters_secs", secs(t.triclusters))
                    .with("prune_secs", secs(t.prune)),
            );
        if let Some(peak) = self.peak_live_bytes {
            obj = obj.with("peak_live_bytes", Json::U64(peak));
        }
        if let Some(total) = self.alloc_bytes {
            obj = obj.with("alloc_bytes", Json::U64(total));
        }
        // Scheduling record, not a gated metric: `bench diff` ignores
        // unknown point fields, so older baselines stay comparable.
        obj = obj.with(
            "fanout",
            Json::obj()
                .with(
                    "range_graph",
                    Json::Str(self.fanout.range_graph.as_str().into()),
                )
                .with(
                    "bicluster",
                    Json::Str(self.fanout.bicluster.as_str().into()),
                )
                .with("threads", Json::U64(self.fanout.threads as u64)),
        );
        obj
    }
}

/// Generates the spec's dataset, mines it, and measures the point.
pub fn measure(spec: &SynthSpec, x: f64) -> SweepPoint {
    measure_with(spec, x, fig7_params(spec))
}

/// Like [`measure`], but pinning the mining run to `threads` worker
/// threads; `x` is typically the thread count itself (the `bench scaling`
/// sweep).
pub fn measure_threads(spec: &SynthSpec, x: f64, threads: usize) -> SweepPoint {
    measure_threads_observed(spec, x, threads, &NullSink)
}

/// Like [`measure_threads`], but mining through `sink` so a benchmark run
/// can carry observability along — e.g. a [`Timeline`] sink to export a
/// per-worker trace of each scaling point.
///
/// [`Timeline`]: tricluster_core::obs::timeline::Timeline
pub fn measure_threads_observed(
    spec: &SynthSpec,
    x: f64,
    threads: usize,
    sink: &dyn EventSink,
) -> SweepPoint {
    let mut params = fig7_params(spec);
    params.threads = Some(threads);
    measure_with_observed(spec, x, params, sink)
}

fn measure_with(spec: &SynthSpec, x: f64, params: Params) -> SweepPoint {
    measure_with_observed(spec, x, params, &NullSink)
}

/// The fully general measurement: generates the spec's dataset and mines it
/// through `sink` with the given parameters.
pub fn measure_with_observed(
    spec: &SynthSpec,
    x: f64,
    params: Params,
    sink: &dyn EventSink,
) -> SweepPoint {
    let data = generate(spec);
    // Reset the allocator's high-water mark after generation so the peak
    // reflects the mine itself, not the dataset build. No-ops without the
    // tracking allocator installed.
    alloc::reset_peak();
    let before = alloc::snapshot();
    let start = Instant::now();
    let result = mine_observed(&data.matrix, &params, sink).expect("bench inputs are valid");
    let time = start.elapsed();
    let after = alloc::snapshot();
    let report = recovery::score(&data.truth, &result.triclusters, 0.5);
    SweepPoint {
        x,
        time,
        clusters: result.triclusters.len(),
        recall: report.recall,
        timings: result.timings,
        peak_live_bytes: after.as_ref().map(|s| s.peak_live_bytes),
        alloc_bytes: match (&before, &after) {
            (Some(b), Some(a)) => Some(a.bytes_since(b)),
            _ => None,
        },
        fanout: result.fanout,
    }
}

/// The six Figure 7 sweeps: returns `(figure label, x-axis label, specs)`
/// where each spec varies exactly one generator parameter.
/// A sweep: `(figure label, x-axis label, points)`.
pub type Sweep = (&'static str, &'static str, Vec<(f64, SynthSpec)>);

pub fn fig7_sweeps(full: bool) -> Vec<Sweep> {
    let base = fig7_base(full);
    let scale = |v: usize| if full { v } else { v / 2 };

    // (a) genes per cluster — and total genes proportionally, keeping the
    // cluster/background gene ratio fixed as the paper's generator does
    let a: Vec<(f64, SynthSpec)> = [scale(50), scale(100), scale(150), scale(200), scale(250)]
        .into_iter()
        .map(|gx| {
            let mut s = base.clone();
            s.gene_range = (gx, gx);
            s.n_genes = (gx * base.n_genes) / base.gene_range.0;
            (gx as f64, s)
        })
        .collect();

    // (b) samples in the matrix (cluster sample size fixed)
    let b: Vec<(f64, SynthSpec)> = [10, 14, 18, 22, 26]
        .into_iter()
        .map(|ns| {
            let mut s = base.clone();
            s.n_samples = ns;
            (ns as f64, s)
        })
        .collect();

    // (c) time slices in the matrix
    let c: Vec<(f64, SynthSpec)> = [6, 10, 14, 18, 22]
        .into_iter()
        .map(|nt| {
            let mut s = base.clone();
            s.n_times = nt;
            (nt as f64, s)
        })
        .collect();

    // (d) number of embedded clusters in a fixed-size matrix (cluster gene
    // size reduced so 20 disjoint clusters fit, as in the paper's fixed
    // 4000-gene genome)
    let d: Vec<(f64, SynthSpec)> = [4, 8, 12, 16, 20]
        .into_iter()
        .map(|k| {
            let mut s = base.clone();
            s.n_clusters = k;
            let gx = if full { 150 } else { 40 };
            s.gene_range = (gx, gx);
            (k as f64, s)
        })
        .collect();

    // (e) overlap percentage
    let e: Vec<(f64, SynthSpec)> = [0.0, 0.2, 0.4, 0.6, 0.8]
        .into_iter()
        .map(|f| {
            let mut s = base.clone();
            s.overlap_fraction = f;
            (f * 100.0, s)
        })
        .collect();

    // (f) noise level
    let f: Vec<(f64, SynthSpec)> = [0.00, 0.01, 0.02, 0.03, 0.04]
        .into_iter()
        .map(|n| {
            let mut s = base.clone();
            s.noise = n;
            (n * 100.0, s)
        })
        .collect();

    vec![
        ("fig7a", "genes per cluster", a),
        ("fig7b", "samples in matrix", b),
        ("fig7c", "time slices in matrix", c),
        ("fig7d", "number of clusters", d),
        ("fig7e", "overlap %", e),
        ("fig7f", "noise %", f),
    ]
}

/// A fixed miniature sweep pair for the perf-regression gate: two sweeps of
/// two points each, sized to mine in well under a second apiece so
/// `scripts/check.sh` can afford them on every run. The synthetic data is
/// seeded, so the workload (and the committed `BENCH_baseline.json`) is
/// byte-stable; only timings and measured memory vary between machines.
pub fn fig7_smoke_sweeps() -> Vec<Sweep> {
    let base = SynthSpec {
        n_genes: 400,
        n_samples: 10,
        n_times: 5,
        n_clusters: 4,
        gene_range: (50, 50),
        sample_range: (4, 4),
        time_range: (3, 3),
        noise: 0.02,
        ..SynthSpec::default()
    };
    let genes: Vec<(f64, SynthSpec)> = [300usize, 400]
        .into_iter()
        .map(|ng| {
            let mut s = base.clone();
            s.n_genes = ng;
            (ng as f64, s)
        })
        .collect();
    let samples: Vec<(f64, SynthSpec)> = [8usize, 10]
        .into_iter()
        .map(|ns| {
            let mut s = base.clone();
            s.n_samples = ns;
            (ns as f64, s)
        })
        .collect();
    vec![
        ("smoke-genes", "genes in matrix", genes),
        ("smoke-samples", "samples in matrix", samples),
    ]
}

/// The workload for `bench scaling`: a few-slice/many-gene shape (the case
/// the intra-slice fan-out exists for — at 2 time slices, slice-striping
/// can use at most 2 workers) sized to mine in roughly a second per run so
/// a 1/2/4/8-thread sweep stays affordable.
pub fn scaling_spec() -> SynthSpec {
    SynthSpec {
        n_genes: 4000,
        n_samples: 16,
        n_times: 2,
        n_clusters: 6,
        gene_range: (200, 200),
        sample_range: (5, 5),
        time_range: (2, 2),
        noise: 0.03,
        ..SynthSpec::default()
    }
}

/// Ablation: mining **without** the precomputed range multigraph — every
/// DFS extension recomputes the ratio ranges of the involved column pair
/// from the raw slice. Same output as the real miner; measures the value
/// of phase 1's compact summary.
pub mod nocache {
    use tricluster_bitset::BitSet;
    use tricluster_core::cluster::Bicluster;
    use tricluster_core::range::{find_ranges, RatioRange, SignGroup};
    use tricluster_core::Params;
    use tricluster_matrix::Matrix3;

    fn pair_ranges(m: &Matrix3, t: usize, a: usize, b: usize, params: &Params) -> Vec<RatioRange> {
        let n_genes = m.n_genes();
        let n_samples = m.n_samples();
        let slice = m.time_slice_raw(t);
        let mut groups: [Vec<(f64, usize)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for gene in 0..n_genes {
            let va = slice[gene * n_samples + a];
            let vb = slice[gene * n_samples + b];
            let Some(group) = SignGroup::classify(va, vb) else {
                continue;
            };
            let gi = match group {
                SignGroup::Positive => 0,
                SignGroup::PosNeg => 1,
                SignGroup::NegPos => 2,
            };
            groups[gi].push(((va / vb).abs(), gene));
        }
        let mut out = Vec::new();
        for (gi, sign) in [
            (0, SignGroup::Positive),
            (1, SignGroup::PosNeg),
            (2, SignGroup::NegPos),
        ] {
            if groups[gi].len() < params.min_genes {
                continue;
            }
            out.extend(find_ranges(
                &groups[gi],
                sign,
                params.epsilon,
                params.min_genes,
                n_genes,
                params.range_extension,
            ));
        }
        out
    }

    /// Bicluster mining for slice `t` with ranges recomputed at every DFS
    /// extension (no multigraph).
    pub fn mine_biclusters_nocache(m: &Matrix3, t: usize, params: &Params) -> Vec<Bicluster> {
        struct Ctx<'a> {
            m: &'a Matrix3,
            t: usize,
            params: &'a Params,
            results: Vec<Bicluster>,
            samples: Vec<usize>,
        }
        impl Ctx<'_> {
            fn dfs(&mut self, genes: &BitSet, pending: &[usize]) {
                if self.samples.len() >= self.params.min_samples
                    && genes.count() >= self.params.min_genes
                {
                    let cand = Bicluster::new(genes.clone(), self.samples.clone(), self.t);
                    tricluster_core::bicluster::insert_maximal_bicluster(&mut self.results, cand);
                }
                for (i, &sb) in pending.iter().enumerate() {
                    let rest = &pending[i + 1..];
                    if self.samples.is_empty() {
                        self.samples.push(sb);
                        self.dfs(genes, rest);
                        self.samples.pop();
                        continue;
                    }
                    let mut per_sample: Vec<Vec<RatioRange>> = Vec::new();
                    let mut dead = false;
                    for &sa in &self.samples {
                        // the ablation: ranges recomputed here, every time
                        let ranges = pair_ranges(self.m, self.t, sa, sb, self.params)
                            .into_iter()
                            .filter(|r| {
                                r.genes
                                    .intersection_count_at_least(genes, self.params.min_genes)
                            })
                            .collect::<Vec<_>>();
                        if ranges.is_empty() {
                            dead = true;
                            break;
                        }
                        per_sample.push(ranges);
                    }
                    if dead {
                        continue;
                    }
                    let mut combos: Vec<BitSet> = vec![genes.clone()];
                    for ranges in &per_sample {
                        let mut next = Vec::new();
                        for acc in &combos {
                            for r in ranges {
                                let inter = acc.intersection(&r.genes);
                                if inter.count() >= self.params.min_genes {
                                    next.push(inter);
                                }
                            }
                        }
                        combos = next;
                        if combos.is_empty() {
                            break;
                        }
                    }
                    combos.sort_by(|a, b| a.as_blocks().cmp(b.as_blocks()));
                    combos.dedup();
                    for new_genes in combos {
                        self.samples.push(sb);
                        self.dfs(&new_genes, rest);
                        self.samples.pop();
                    }
                }
            }
        }
        let mut ctx = Ctx {
            m,
            t,
            params,
            results: Vec::new(),
            samples: Vec::new(),
        };
        let order: Vec<usize> = (0..m.n_samples()).collect();
        ctx.dfs(&BitSet::full(m.n_genes()), &order);
        ctx.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricluster_core::bicluster::mine_biclusters;
    use tricluster_core::rangegraph::build_range_graph;
    use tricluster_core::testdata::paper_table1;

    #[test]
    fn sweeps_have_five_points_each() {
        let sweeps = fig7_sweeps(false);
        assert_eq!(sweeps.len(), 6);
        for (label, _, points) in &sweeps {
            assert_eq!(points.len(), 5, "{label}");
        }
    }

    #[test]
    fn sweep_point_json_has_phase_breakdown() {
        let spec = SynthSpec {
            n_genes: 120,
            n_samples: 8,
            n_times: 4,
            n_clusters: 2,
            gene_range: (20, 20),
            sample_range: (4, 4),
            time_range: (3, 3),
            ..SynthSpec::default()
        };
        let rendered = measure(&spec, 20.0).to_json().render();
        for needle in [
            "\"phases\"",
            "slices_wall_secs",
            "range_graphs_cpu_secs",
            "biclusters_cpu_secs",
            "triclusters_secs",
            "prune_secs",
        ] {
            assert!(rendered.contains(needle), "missing {needle}: {rendered}");
        }
    }

    #[test]
    fn measure_small_point_recovers() {
        let spec = SynthSpec {
            n_genes: 300,
            n_samples: 10,
            n_times: 5,
            n_clusters: 3,
            gene_range: (40, 40),
            sample_range: (4, 4),
            time_range: (3, 3),
            ..SynthSpec::default()
        };
        let point = measure(&spec, 40.0);
        assert!(point.recall >= 0.99, "{point:?}");
        assert!(point.clusters >= 3);
    }

    /// The no-cache ablation must produce the same biclusters as the real
    /// miner (it only removes caching, not logic).
    #[test]
    fn nocache_matches_real_miner() {
        let m = paper_table1();
        let params = Params::builder()
            .epsilon(0.01)
            .min_size(3, 3, 2)
            .build()
            .unwrap();
        for t in 0..2 {
            let rg = build_range_graph(&m, t, &params);
            let mut real: Vec<_> = mine_biclusters(&m, &rg, &params)
                .into_iter()
                .map(|b| (b.genes.to_vec(), b.samples))
                .collect();
            let mut nocache: Vec<_> = nocache::mine_biclusters_nocache(&m, t, &params)
                .into_iter()
                .map(|b| (b.genes.to_vec(), b.samples))
                .collect();
            real.sort();
            nocache.sort();
            assert_eq!(real, nocache, "slice {t}");
        }
    }
}
