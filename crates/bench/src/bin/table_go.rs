//! E5 — Table 2: significant shared GO terms (process, function, cellular
//! component) for the genes of each mined yeast cluster, with `(n, p)`
//! annotations and the p < 0.01 cutoff.
//!
//! ```sh
//! cargo run --release -p tricluster-bench --bin table_go            # scaled
//! TRICLUSTER_FULL=1 cargo run --release -p tricluster-bench --bin table_go
//! ```

use tricluster_bench::full_scale;
use tricluster_core::{mine, Params};
use tricluster_microarray::go::{self, CatalogSpec, GoCategory};
use tricluster_microarray::yeast::{self, YeastSpec};

fn main() {
    let spec = if full_scale() {
        YeastSpec::default()
    } else {
        YeastSpec::scaled(1500)
    };
    let ds = yeast::build(&spec);
    let params = Params::builder()
        .epsilon(yeast::PAPER_EPSILON)
        .epsilon_time(0.05)
        .min_genes(yeast::PAPER_MIN_GENES)
        .min_samples(yeast::PAPER_MIN_SAMPLES)
        .min_times(yeast::PAPER_MIN_TIMES)
        .build()
        .unwrap();
    let result = mine(&ds.matrix, &params).expect("inputs are valid");

    // simulated GO catalog seeded with the embedded groups (the offline
    // substitute for the yeastgenome.org term finder); markers scale with
    // genome size so the scaled run stays significant
    let groups: Vec<Vec<usize>> = ds.embedded.iter().map(|c| c.genes.to_vec()).collect();
    let catalog_spec = if full_scale() {
        CatalogSpec {
            n_genes: spec.n_genes,
            ..CatalogSpec::default()
        }
    } else {
        CatalogSpec {
            n_genes: spec.n_genes,
            marker_in_group: 5,
            marker_outside_group: 4,
            ..CatalogSpec::default()
        }
    };
    let catalog = go::simulate_catalog(&catalog_spec, &groups);

    println!("# Table 2: significant shared GO terms per cluster (p < 0.01)\n");
    println!(
        "{:<8} {:<7} {:<40} {:<40} Cellular Component",
        "Cluster", "#Genes", "Process", "Function"
    );
    for (i, c) in result.triclusters.iter().enumerate() {
        let report = go::enrich(&catalog, &c.genes.to_vec(), 0.01);
        let cell = |cat: GoCategory| -> String {
            let terms: Vec<String> = report
                .iter()
                .filter(|e| e.category == cat)
                .take(3)
                .map(|e| e.to_string())
                .collect();
            if terms.is_empty() {
                "-".to_string()
            } else {
                terms.join("; ")
            }
        };
        println!(
            "C{:<7} {:<7} {:<40} {:<40} {}",
            i,
            c.genes.count(),
            cell(GoCategory::Process),
            cell(GoCategory::Function),
            cell(GoCategory::Component)
        );
    }
    println!("\n# paper example row: C0 (51 genes) — ubiquitin cycle (n=3, p=0.00346), …");
}
