//! E4 — the §5.2 real-data metrics table on the simulated yeast
//! elutriation dataset (`mx=50, my=4, mz=5, ε=0.003`, relaxed along time).
//!
//! ```sh
//! cargo run --release -p tricluster-bench --bin table_real          # scaled
//! TRICLUSTER_FULL=1 cargo run --release -p tricluster-bench --bin table_real
//! ```
//!
//! Paper reference (Spellman elutriation, 7679 x 13 x 14, 17.8 s):
//!
//! ```text
//! Clusters#    5
//! Elements#    6520
//! Coverage     6520
//! Overlap      0.00%
//! Fluctuation  T:626.53, S:163.05, G:407.3
//! ```

use tricluster_bench::full_scale;
use tricluster_core::{mine, Params};
use tricluster_microarray::yeast::{self, YeastSpec};

fn main() {
    let spec = if full_scale() {
        YeastSpec::default()
    } else {
        YeastSpec::scaled(1500)
    };
    println!(
        "# simulated yeast elutriation: {} genes x {} channels x {} times",
        spec.n_genes, spec.n_samples, spec.n_times
    );
    let ds = yeast::build(&spec);
    let params = Params::builder()
        .epsilon(yeast::PAPER_EPSILON)
        .epsilon_time(0.05)
        .min_genes(yeast::PAPER_MIN_GENES)
        .min_samples(yeast::PAPER_MIN_SAMPLES)
        .min_times(yeast::PAPER_MIN_TIMES)
        .build()
        .unwrap();
    let start = std::time::Instant::now();
    let result = mine(&ds.matrix, &params).expect("inputs are valid");
    let elapsed = start.elapsed();
    println!(
        "# mined in {:.2} s (paper: 17.8 s on a 1.4 GHz Pentium-M)\n",
        elapsed.as_secs_f64()
    );
    println!("{}", result.metrics(&ds.matrix));
    println!("\n# per-cluster shapes:");
    for (i, c) in result.triclusters.iter().enumerate() {
        let (x, y, z) = c.shape();
        println!("#   C{i}: {x} genes x {y} samples x {z} times");
    }
}
