//! E7 — runtime comparison against the baselines (§3.3 / §5.2): TriCluster
//! vs pCluster on per-slice bicluster mining, plus Cheng–Church for
//! reference. The paper's claim to reproduce in shape: *"\[pCluster\] runs
//! much slower than TRICLUSTER on real microarray datasets."*
//!
//! Both miners get equivalent work: the same slice, thresholds chosen so
//! both mine the embedded structure (TriCluster multiplicative ε on raw
//! values; pCluster additive δ on log-values, which is the same pattern
//! class by Lemma 2).
//!
//! ```sh
//! cargo run --release -p tricluster-bench --bin compare_baselines
//! TRICLUSTER_FULL=1 cargo run --release -p tricluster-bench --bin compare_baselines
//! ```

use std::time::Instant;
use tricluster_baselines::chengchurch::{self, CcParams};
use tricluster_baselines::jiang::{self, JiangParams};
use tricluster_baselines::pcluster;
use tricluster_bench::full_scale;
use tricluster_core::bicluster::mine_biclusters;
use tricluster_core::rangegraph::build_range_graph;
use tricluster_core::Params;
use tricluster_matrix::Matrix2;
use tricluster_microarray::yeast::{self, YeastSpec};

fn main() {
    let spec = if full_scale() {
        YeastSpec::default()
    } else {
        YeastSpec::scaled(2000)
    };
    let ds = yeast::build(&spec);
    println!(
        "# yeast slice comparison: {} genes x {} channels, {} time slices",
        spec.n_genes, spec.n_samples, spec.n_times
    );

    let params = Params::builder()
        .epsilon(yeast::PAPER_EPSILON)
        .min_genes(yeast::PAPER_MIN_GENES)
        .min_samples(yeast::PAPER_MIN_SAMPLES)
        .min_times(1)
        .build()
        .unwrap();

    // pCluster mines additive windows; on ln-transformed values an additive
    // window of width delta equals a multiplicative window of ratio
    // e^delta ~ 1+delta, so delta = ln(1+eps) gives the same pattern class.
    let delta = (1.0 + yeast::PAPER_EPSILON).ln();

    println!("\nslice,tricluster_s,tricluster_found,pcluster_s,pcluster_found");
    let slices = if full_scale() { spec.n_times } else { 4 };
    let mut tri_total = 0.0;
    let mut pc_total = 0.0;
    for t in 0..slices {
        let t0 = Instant::now();
        let rg = build_range_graph(&ds.matrix, t, &params);
        let bcs = mine_biclusters(&ds.matrix, &rg, &params);
        let tri_s = t0.elapsed().as_secs_f64();

        // pCluster input: the ln-transformed slice
        let raw = ds.matrix.time_slice(t);
        let mut log_slice = Matrix2::zeros(raw.rows(), raw.cols());
        for r in 0..raw.rows() {
            for c in 0..raw.cols() {
                log_slice.set(r, c, raw.get(r, c).abs().max(1e-12).ln());
            }
        }
        let t1 = Instant::now();
        let pcs = pcluster::mine_pclusters(
            &log_slice,
            delta,
            yeast::PAPER_MIN_GENES,
            yeast::PAPER_MIN_SAMPLES,
        );
        let pc_s = t1.elapsed().as_secs_f64();

        println!("{t},{tri_s:.3},{},{pc_s:.3},{}", bcs.len(), pcs.len());
        tri_total += tri_s;
        pc_total += pc_s;
    }
    println!(
        "\n# totals over {slices} slices: TriCluster {tri_total:.3} s, \
         pCluster {pc_total:.3} s ({}x)",
        (pc_total / tri_total.max(1e-9)).round()
    );

    // Jiang et al. (the prior gene-sample-time method) on a gene subset —
    // its pairwise-correlation table is O(n^2) in genes, so it cannot run
    // at full genome scale; that asymmetry is itself part of the story.
    let jiang_genes = 400.min(spec.n_genes);
    let sub = {
        use tricluster_matrix::Matrix3;
        let mut s = Matrix3::zeros(jiang_genes, spec.n_samples, spec.n_times);
        for g in 0..jiang_genes {
            for c in 0..spec.n_samples {
                for t in 0..spec.n_times {
                    s.set(g, c, t, ds.matrix.get(g, c, t));
                }
            }
        }
        s
    };
    let t3 = Instant::now();
    let jg = jiang::mine_gene_sample_clusters(
        &sub,
        &JiangParams {
            min_correlation: 0.95,
            min_genes: 5,
            min_samples: yeast::PAPER_MIN_SAMPLES,
        },
    );
    println!(
        "\n# Jiang et al. (gene-sample-time, full time dimension) on {jiang_genes} genes: \
         {} clusters in {:.3} s — time subsets not expressible",
        jg.len(),
        t3.elapsed().as_secs_f64()
    );

    // Cheng-Church for reference: greedy, finds one cluster per pass, and
    // cannot enumerate overlaps — report its runtime and residues.
    let slice = ds.matrix.time_slice(0);
    let t2 = Instant::now();
    let ccs = chengchurch::mine_delta_biclusters(
        &slice,
        &CcParams {
            delta: 50.0,
            n_clusters: 5,
            min_rows: yeast::PAPER_MIN_GENES,
            min_cols: yeast::PAPER_MIN_SAMPLES,
            mask_range: (0.0, 2000.0),
            ..CcParams::default()
        },
    );
    println!(
        "\n# Cheng-Church on slice 0: {} clusters in {:.3} s (greedy, \
         residues {:?})",
        ccs.len(),
        t2.elapsed().as_secs_f64(),
        ccs.iter().map(|c| c.residue.round()).collect::<Vec<_>>()
    );
}
