//! E1/E2 — the paper's running example: Table 1, the Figure 1 ratio
//! ranges, the Figure 2 range multigraph, the Figure 5 per-slice
//! biclusters, and the final triclusters.
//!
//! ```sh
//! cargo run --release -p tricluster-bench --bin table1_example
//! ```

use tricluster_core::rangegraph::build_range_graph;
use tricluster_core::testdata::paper_table1;
use tricluster_core::{mine, Params};

fn main() {
    let m = paper_table1();
    let params = Params::builder()
        .epsilon(0.01)
        .min_size(3, 3, 2)
        .build()
        .unwrap();

    println!("== Table 1 dataset (10 genes x 7 samples x 2 times) ==");
    for t in 0..2 {
        println!("\n-- time t{t} --");
        print!("      ");
        for s in 0..7 {
            print!("    s{s}  ");
        }
        println!();
        for g in 0..10 {
            print!("g{g}  ");
            for s in 0..7 {
                print!("{:7.2} ", m.get(g, s, t));
            }
            println!();
        }
    }

    println!("\n== Figure 1: sorted ratios of column pair (s0, s6) at t0 ==");
    let mut ratios: Vec<(f64, usize)> = (0..10)
        .map(|g| (m.get(g, 0, 0) / m.get(g, 6, 0), g))
        .collect();
    ratios.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (r, g) in &ratios {
        println!("  g{g}: {r:.3}");
    }

    println!("\n== Figure 2: range multigraph at t0 (ε=0.01, mx=3) ==");
    let rg = build_range_graph(&m, 0, &params);
    println!("{} samples, {} range edges", rg.n_samples(), rg.n_ranges());
    for a in 0..7 {
        for b in (a + 1)..7 {
            for r in rg.ranges_between(a, b) {
                println!(
                    "  (s{a}, s{b}): range [{:.3}, {:.3}] weight {:.3} genes {:?}",
                    r.lo,
                    r.hi,
                    r.weight(),
                    r.genes.to_vec()
                );
            }
        }
    }

    let result = mine(&m, &params).expect("inputs are valid");
    println!("\n== Figure 5: biclusters per time slice ==");
    for (t, bcs) in result.per_time_biclusters.iter().enumerate() {
        println!("-- t{t}: {} biclusters --", bcs.len());
        for b in bcs {
            println!("  genes {:?} x samples {:?}", b.genes.to_vec(), b.samples);
        }
    }

    println!("\n== Final triclusters (mx=my=3, mz=2, ε=0.01) ==");
    for (i, c) in result.triclusters.iter().enumerate() {
        println!(
            "  C{}: genes {:?} x samples {:?} x times {:?}",
            i + 1,
            c.genes.to_vec(),
            c.samples,
            c.times
        );
    }
    println!("\npaper expects: C1 = {{g1,g4,g8}} x {{s0,s1,s4,s6}} x {{t0,t1}},");
    println!("               C2 = {{g0,g2,g6,g9}} x {{s1,s4,s6}} x {{t0,t1}},");
    println!("               C3 = {{g0,g7,g9}} x {{s1,s2,s4,s5}} x {{t0,t1}}");

    println!("\n{}", result.metrics(&m));
}
