//! E3 — Figure 7(a)–(f): TriCluster's sensitivity to the synthetic-data
//! parameters. Prints one CSV series per sub-figure
//! (`x, seconds, clusters, recall`).
//!
//! ```sh
//! cargo run --release -p tricluster-bench --bin fig7            # scaled
//! TRICLUSTER_FULL=1 cargo run --release -p tricluster-bench --bin fig7
//! ```
//!
//! Expected shapes (paper §5.1): (a) ~linear in genes, (b) exponential in
//! samples, (c) ~linear in time slices over this range, (d) linear in
//! cluster count, (e) flat in overlap %, (f) growing with noise.

use tricluster_bench::{fig7_sweeps, full_scale, measure};

fn main() {
    let full = full_scale();
    println!(
        "# Figure 7 parameter sensitivity ({} scale)",
        if full { "paper" } else { "scaled-down" }
    );
    for (label, xlabel, points) in fig7_sweeps(full) {
        println!("\n## {label}: time vs {xlabel}");
        println!("{xlabel},seconds,clusters,recall");
        for (x, spec) in points {
            let p = measure(&spec, x);
            println!(
                "{},{:.3},{},{:.2}",
                p.x,
                p.time.as_secs_f64(),
                p.clusters,
                p.recall
            );
        }
    }
}
