//! E3 — Figure 7(a)–(f): TriCluster's sensitivity to the synthetic-data
//! parameters. Prints one CSV series per sub-figure
//! (`x, seconds, clusters, recall`); `--json PATH` additionally writes the
//! series with per-phase timing breakdowns (and, when built with
//! `--features track-alloc`, measured peak memory) as a JSON document.
//!
//! ```sh
//! cargo run --release -p tricluster-bench --bin fig7            # scaled
//! TRICLUSTER_FULL=1 cargo run --release -p tricluster-bench --bin fig7
//! cargo run --release -p tricluster-bench --bin fig7 -- --json fig7.json
//! cargo run --release -p tricluster-bench --bin fig7 -- --smoke --json out.json
//! ```
//!
//! `--smoke` replaces the six paper sweeps with a fixed miniature pair that
//! finishes in seconds — the workload behind the committed
//! `BENCH_baseline.json` that `bench diff` gates against.
//!
//! Expected shapes (paper §5.1): (a) ~linear in genes, (b) exponential in
//! samples, (c) ~linear in time slices over this range, (d) linear in
//! cluster count, (e) flat in overlap %, (f) growing with noise.

use tricluster_bench::{fig7_smoke_sweeps, fig7_sweeps, full_scale, measure};
use tricluster_core::obs::json::Json;

/// With `--features track-alloc`, measure heap usage so sweep points carry
/// `peak_live_bytes`/`alloc_bytes` and the regression gate covers memory.
#[cfg(feature = "track-alloc")]
#[global_allocator]
static ALLOC: tricluster_core::obs::alloc::TrackingAlloc =
    tricluster_core::obs::alloc::TrackingAlloc;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = None;
    let mut smoke = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(path) => json_path = Some(path.clone()),
                None => usage("--json needs a path"),
            },
            "--smoke" => smoke = true,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    let full = full_scale();
    let (label, sweeps) = if smoke {
        ("smoke", fig7_smoke_sweeps())
    } else if full {
        ("paper", fig7_sweeps(true))
    } else {
        ("scaled-down", fig7_sweeps(false))
    };
    println!("# Figure 7 parameter sensitivity ({label} scale)");
    let mut sweeps_json: Vec<Json> = Vec::new();
    for (figure, xlabel, points) in sweeps {
        println!("\n## {figure}: time vs {xlabel}");
        println!("{xlabel},seconds,clusters,recall");
        let mut points_json: Vec<Json> = Vec::new();
        for (x, spec) in points {
            let p = measure(&spec, x);
            println!(
                "{},{:.3},{},{:.2}",
                p.x,
                p.time.as_secs_f64(),
                p.clusters,
                p.recall
            );
            points_json.push(p.to_json());
        }
        sweeps_json.push(
            Json::obj()
                .with("figure", Json::Str(figure.to_string()))
                .with("x_axis", Json::Str(xlabel.to_string()))
                .with("points", Json::Arr(points_json)),
        );
    }
    if let Some(path) = json_path {
        let doc = Json::obj()
            .with("schema", Json::Str("tricluster.fig7/v2".into()))
            .with("scale", Json::Str(label.into()))
            .with("sweeps", Json::Arr(sweeps_json));
        if let Err(e) = std::fs::write(&path, doc.render_pretty() + "\n") {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote per-phase JSON to {path}");
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("usage: fig7 [--smoke] [--json PATH] ({msg})");
    std::process::exit(2);
}
