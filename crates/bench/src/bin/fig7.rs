//! E3 — Figure 7(a)–(f): TriCluster's sensitivity to the synthetic-data
//! parameters. Prints one CSV series per sub-figure
//! (`x, seconds, clusters, recall`); `--json PATH` additionally writes the
//! series with per-phase timing breakdowns (and, when built with
//! `--features track-alloc`, measured peak memory) as a JSON document.
//!
//! ```sh
//! cargo run --release -p tricluster-bench --bin fig7            # scaled
//! TRICLUSTER_FULL=1 cargo run --release -p tricluster-bench --bin fig7
//! cargo run --release -p tricluster-bench --bin fig7 -- --json fig7.json
//! cargo run --release -p tricluster-bench --bin fig7 -- --smoke --json out.json
//! ```
//!
//! `--smoke` replaces the six paper sweeps with a fixed miniature pair that
//! finishes in seconds — the workload behind the committed
//! `BENCH_baseline.json` that `bench diff` gates against. `--ledger DIR`
//! archives the sweep document into a run ledger (kind `bench`), browsable
//! with `tricluster runs`. `--metrics-addr HOST:PORT` serves the sweep's
//! live metrics over HTTP (`/metrics`, `/progress`, `/healthz`) for the
//! process lifetime — point `tricluster watch` at it.
//!
//! Expected shapes (paper §5.1): (a) ~linear in genes, (b) exponential in
//! samples, (c) ~linear in time slices over this range, (d) linear in
//! cluster count, (e) flat in overlap %, (f) growing with noise.

use std::sync::Arc;
use tricluster_bench::{
    fig7_params, fig7_smoke_sweeps, fig7_sweeps, full_scale, measure, measure_with_observed,
};
use tricluster_core::obs::httpd::MetricsServer;
use tricluster_core::obs::json::Json;
use tricluster_core::obs::ledger::{content_hash, Ledger, NewEntry};
use tricluster_core::obs::metrics::Registry;
use tricluster_core::obs::progress::Progress;

/// With `--features track-alloc`, measure heap usage so sweep points carry
/// `peak_live_bytes`/`alloc_bytes` and the regression gate covers memory.
#[cfg(feature = "track-alloc")]
#[global_allocator]
static ALLOC: tricluster_core::obs::alloc::TrackingAlloc =
    tricluster_core::obs::alloc::TrackingAlloc;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = None;
    let mut ledger_dir = None;
    let mut metrics_addr: Option<String> = None;
    let mut smoke = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(path) => json_path = Some(path.clone()),
                None => usage("--json needs a path"),
            },
            "--ledger" => match it.next() {
                Some(dir) => ledger_dir = Some(dir.clone()),
                None => usage("--ledger needs a directory"),
            },
            "--metrics-addr" => match it.next() {
                Some(addr) => metrics_addr = Some(addr.clone()),
                None => usage("--metrics-addr needs HOST:PORT"),
            },
            "--smoke" => smoke = true,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    // One registry spans the whole sweep: counters and span histograms
    // accumulate across points, progress gauges restart per mine, and the
    // server stays scrapeable until the process exits.
    let metrics = metrics_addr.map(|addr| {
        let registry = Arc::new(Registry::new());
        registry.attach_progress(Arc::new(Progress::new()));
        let server = match MetricsServer::serve(&addr, registry.clone()) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("cannot serve metrics on {addr}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!("metrics: serving on {}", server.url());
        (registry, server)
    });

    let full = full_scale();
    let (label, sweeps) = if smoke {
        ("smoke", fig7_smoke_sweeps())
    } else if full {
        ("paper", fig7_sweeps(true))
    } else {
        ("scaled-down", fig7_sweeps(false))
    };
    println!("# Figure 7 parameter sensitivity ({label} scale)");
    let mut sweeps_json: Vec<Json> = Vec::new();
    for (figure, xlabel, points) in sweeps {
        println!("\n## {figure}: time vs {xlabel}");
        println!("{xlabel},seconds,clusters,recall");
        let mut points_json: Vec<Json> = Vec::new();
        for (x, spec) in points {
            let p = match &metrics {
                Some((registry, _server)) => {
                    measure_with_observed(&spec, x, fig7_params(&spec), &**registry)
                }
                None => measure(&spec, x),
            };
            println!(
                "{},{:.3},{},{:.2}",
                p.x,
                p.time.as_secs_f64(),
                p.clusters,
                p.recall
            );
            points_json.push(p.to_json());
        }
        sweeps_json.push(
            Json::obj()
                .with("figure", Json::Str(figure.to_string()))
                .with("x_axis", Json::Str(xlabel.to_string()))
                .with("points", Json::Arr(points_json)),
        );
    }
    if json_path.is_some() || ledger_dir.is_some() {
        let doc = Json::obj()
            .with("schema", Json::Str("tricluster.fig7/v2".into()))
            .with("scale", Json::Str(label.into()))
            .with("sweeps", Json::Arr(sweeps_json));
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(&path, doc.render_pretty() + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote per-phase JSON to {path}");
        }
        if let Some(dir) = ledger_dir {
            // Sweep inputs are generated in-process, so the "dataset" hash
            // covers the sweep family and scale instead of file bytes.
            let archived = Ledger::open(&dir).and_then(|ledger| {
                ledger.archive(&NewEntry {
                    kind: "bench",
                    label: Some(format!("fig7 ({label})")),
                    dataset_hash: content_hash(format!("fig7/{label}").as_bytes()),
                    params_hash: content_hash(doc.get("scale").unwrap().render().as_bytes()),
                    report: &doc,
                    trace: None,
                    flame: None,
                })
            });
            match archived {
                Ok(id) => eprintln!("sweep archived as {id} in {dir}"),
                Err(e) => {
                    eprintln!("cannot archive sweep in {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "usage: fig7 [--smoke] [--json PATH] [--ledger DIR] [--metrics-addr HOST:PORT] ({msg})"
    );
    std::process::exit(2);
}
