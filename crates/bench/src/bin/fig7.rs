//! E3 — Figure 7(a)–(f): TriCluster's sensitivity to the synthetic-data
//! parameters. Prints one CSV series per sub-figure
//! (`x, seconds, clusters, recall`); `--json PATH` additionally writes the
//! series with per-phase timing breakdowns as a JSON document.
//!
//! ```sh
//! cargo run --release -p tricluster-bench --bin fig7            # scaled
//! TRICLUSTER_FULL=1 cargo run --release -p tricluster-bench --bin fig7
//! cargo run --release -p tricluster-bench --bin fig7 -- --json fig7.json
//! ```
//!
//! Expected shapes (paper §5.1): (a) ~linear in genes, (b) exponential in
//! samples, (c) ~linear in time slices over this range, (d) linear in
//! cluster count, (e) flat in overlap %, (f) growing with noise.

use tricluster_bench::{fig7_sweeps, full_scale, measure};
use tricluster_core::obs::json::Json;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match argv.as_slice() {
        [] => None,
        [flag, path] if flag == "--json" => Some(path.clone()),
        other => {
            eprintln!("usage: fig7 [--json PATH] (got {other:?})");
            std::process::exit(2);
        }
    };

    let full = full_scale();
    println!(
        "# Figure 7 parameter sensitivity ({} scale)",
        if full { "paper" } else { "scaled-down" }
    );
    let mut sweeps_json: Vec<Json> = Vec::new();
    for (label, xlabel, points) in fig7_sweeps(full) {
        println!("\n## {label}: time vs {xlabel}");
        println!("{xlabel},seconds,clusters,recall");
        let mut points_json: Vec<Json> = Vec::new();
        for (x, spec) in points {
            let p = measure(&spec, x);
            println!(
                "{},{:.3},{},{:.2}",
                p.x,
                p.time.as_secs_f64(),
                p.clusters,
                p.recall
            );
            points_json.push(p.to_json());
        }
        sweeps_json.push(
            Json::obj()
                .with("figure", Json::Str(label.to_string()))
                .with("x_axis", Json::Str(xlabel.to_string()))
                .with("points", Json::Arr(points_json)),
        );
    }
    if let Some(path) = json_path {
        let doc = Json::obj()
            .with("schema", Json::Str("tricluster.fig7/v1".into()))
            .with(
                "scale",
                Json::Str(if full { "paper" } else { "scaled-down" }.into()),
            )
            .with("sweeps", Json::Arr(sweeps_json));
        if let Err(e) = std::fs::write(&path, doc.render_pretty() + "\n") {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote per-phase JSON to {path}");
    }
}
