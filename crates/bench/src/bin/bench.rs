//! `bench` — the perf-regression gate.
//!
//! ```sh
//! bench diff <baseline.json> <current.json> [--time-tol F] [--time-floor S]
//!            [--mem-tol F] [--mem-floor BYTES]
//! ```
//!
//! Compares two `fig7 --json` documents (normally the committed
//! `BENCH_baseline.json` against a fresh `fig7 --smoke --json` run) and
//! fails — exit code 1 — when any point's wall time, per-phase time, or
//! peak memory exceeds the baseline beyond the tolerances. Structural
//! mismatches (different sweeps/points: the baseline is stale) and usage
//! errors exit 2, so CI can tell "regressed" from "regenerate the
//! baseline".

use tricluster_bench::regress::{diff, Tolerances};
use tricluster_core::obs::json::Json;

fn main() {
    std::process::exit(run(&std::env::args().skip(1).collect::<Vec<_>>()));
}

fn run(argv: &[String]) -> i32 {
    let Some(("diff", rest)) = argv.split_first().map(|(c, r)| (c.as_str(), r)) else {
        return usage("expected the `diff` subcommand");
    };
    let mut paths = Vec::new();
    let mut tol = Tolerances::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut float_flag = |tag: &str| -> Result<f64, String> {
            it.next()
                .ok_or_else(|| format!("{tag} needs a value"))?
                .parse::<f64>()
                .map_err(|e| format!("{tag}: {e}"))
        };
        match arg.as_str() {
            "--time-tol" => match float_flag("--time-tol") {
                Ok(v) => tol.time_rel = v,
                Err(e) => return usage(&e),
            },
            "--time-floor" => match float_flag("--time-floor") {
                Ok(v) => tol.time_floor_secs = v,
                Err(e) => return usage(&e),
            },
            "--mem-tol" => match float_flag("--mem-tol") {
                Ok(v) => tol.mem_rel = v,
                Err(e) => return usage(&e),
            },
            "--mem-floor" => match float_flag("--mem-floor") {
                Ok(v) => tol.mem_floor_bytes = v as u64,
                Err(e) => return usage(&e),
            },
            path => paths.push(path.to_string()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage("expected exactly two files: <baseline.json> <current.json>");
    };
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    match diff(&baseline, &current, &tol) {
        Ok(regressions) if regressions.is_empty() => {
            println!(
                "bench diff: OK — {current_path} within tolerances of {baseline_path} \
                 (time +{:.0}% + {:.0} ms, mem +{:.0}% + {} KiB)",
                tol.time_rel * 100.0,
                tol.time_floor_secs * 1000.0,
                tol.mem_rel * 100.0,
                tol.mem_floor_bytes >> 10,
            );
            0
        }
        Ok(regressions) => {
            eprintln!("bench diff: {} regression(s):", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            1
        }
        Err(e) => {
            eprintln!(
                "bench diff: documents are not comparable: {e}\n\
                 (if the sweep set changed on purpose, regenerate the baseline with\n\
                  `cargo run --release -p tricluster-bench --bin fig7 -- --smoke --json BENCH_baseline.json`)"
            );
            2
        }
    }
}

fn usage(msg: &str) -> i32 {
    eprintln!(
        "usage: bench diff <baseline.json> <current.json> \
         [--time-tol F] [--time-floor SECS] [--mem-tol F] [--mem-floor BYTES]\n({msg})"
    );
    2
}
