//! `bench` — the perf-regression and determinism gates.
//!
//! ```sh
//! bench diff <baseline.json> <current.json> [--time-tol F] [--time-floor S]
//!            [--mem-tol F] [--mem-floor BYTES] [--update]
//! bench determinism <a.json> <b.json>
//! bench scaling [--json PATH] [--threads N,N,...] [--trace-dir DIR]
//! bench kernel [--json PATH] [--ledger DIR] [--genes N,N,...] [--samples N]
//!              [--min-ms MS]
//! ```
//!
//! `diff` compares two `fig7 --json` documents (normally the committed
//! `BENCH_baseline.json` against a fresh `fig7 --smoke --json` run) and
//! fails — exit code 1 — when any point's wall time, per-phase time, or
//! peak memory exceeds the baseline beyond the tolerances. Structural
//! mismatches (different sweeps/points: the baseline is stale) and usage
//! errors exit 2, so CI can tell "regressed" from "regenerate the
//! baseline". `--update` copies the current document over the baseline
//! instead of comparing (the sanctioned way to refresh it).
//!
//! `determinism` compares the input-determined sections (clusters, report
//! counters, histograms, logical memory, search space) of two
//! `mine --report-json` documents — the same input mined at two thread
//! counts must match byte for byte; exit 1 lists the differing sections.
//!
//! `scaling` mines one fixed few-slice workload at several thread counts
//! and emits the wall times in the `fig7 --json` schema (x = thread
//! count), so thread-scaling runs can be archived and diffed like any
//! other sweep. With `--trace-dir DIR` each point additionally exports a
//! Chrome Trace Event timeline (`DIR/scaling-threads-N.trace.json`) so the
//! per-worker schedule behind each wall time can be inspected in Perfetto.
//!
//! `kernel` microbenchmarks the range-graph pair kernel stage by stage
//! (transpose, full pair, classify, find-ranges, bitset intersect) on
//! synthetic single-slice workloads at several gene counts, printing
//! ns-per-gene CSV; `--json` writes a `tricluster.kernel/v1` document and
//! `--ledger DIR` archives it like a fig7 sweep (kind `bench`).

use std::time::Duration;

use tricluster_bench::regress::{determinism_diff, diff, Tolerances};
use tricluster_bench::{kernel, measure_threads_observed, scaling_spec};
use tricluster_core::obs::json::Json;
use tricluster_core::obs::ledger::{content_hash, Ledger, NewEntry};
use tricluster_core::obs::timeline::Timeline;
use tricluster_core::obs::{EventSink, NullSink};

fn main() {
    std::process::exit(run(&std::env::args().skip(1).collect::<Vec<_>>()));
}

fn run(argv: &[String]) -> i32 {
    match argv.split_first().map(|(c, r)| (c.as_str(), r)) {
        Some(("diff", rest)) => run_diff(rest),
        Some(("determinism", rest)) => run_determinism(rest),
        Some(("scaling", rest)) => run_scaling(rest),
        Some(("kernel", rest)) => run_kernel(rest),
        _ => usage("expected a subcommand: diff | determinism | scaling | kernel"),
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run_diff(rest: &[String]) -> i32 {
    let mut paths = Vec::new();
    let mut tol = Tolerances::default();
    let mut update = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut float_flag = |tag: &str| -> Result<f64, String> {
            it.next()
                .ok_or_else(|| format!("{tag} needs a value"))?
                .parse::<f64>()
                .map_err(|e| format!("{tag}: {e}"))
        };
        match arg.as_str() {
            "--time-tol" => match float_flag("--time-tol") {
                Ok(v) => tol.time_rel = v,
                Err(e) => return usage(&e),
            },
            "--time-floor" => match float_flag("--time-floor") {
                Ok(v) => tol.time_floor_secs = v,
                Err(e) => return usage(&e),
            },
            "--mem-tol" => match float_flag("--mem-tol") {
                Ok(v) => tol.mem_rel = v,
                Err(e) => return usage(&e),
            },
            "--mem-floor" => match float_flag("--mem-floor") {
                Ok(v) => tol.mem_floor_bytes = v as u64,
                Err(e) => return usage(&e),
            },
            "--update" => update = true,
            path => paths.push(path.to_string()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage("expected exactly two files: <baseline.json> <current.json>");
    };
    if update {
        // Refresh the baseline: validate the current document parses, then
        // copy it over wholesale (tolerances are irrelevant here).
        let current = match load(current_path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        };
        match current.get("schema").and_then(Json::as_str) {
            Some(s) if s.starts_with("tricluster.fig7/") => {}
            other => {
                eprintln!("error: {current_path}: unexpected schema {other:?}");
                return 2;
            }
        }
        if let Err(e) = std::fs::write(baseline_path, current.render_pretty() + "\n") {
            eprintln!("error: cannot write {baseline_path}: {e}");
            return 2;
        }
        println!("bench diff: baseline {baseline_path} updated from {current_path}");
        return 0;
    }
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    match diff(&baseline, &current, &tol) {
        Ok(regressions) if regressions.is_empty() => {
            println!(
                "bench diff: OK — {current_path} within tolerances of {baseline_path} \
                 (time +{:.0}% + {:.0} ms, mem +{:.0}% + {} KiB)",
                tol.time_rel * 100.0,
                tol.time_floor_secs * 1000.0,
                tol.mem_rel * 100.0,
                tol.mem_floor_bytes >> 10,
            );
            0
        }
        Ok(regressions) => {
            eprintln!("bench diff: {} regression(s):", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            1
        }
        Err(e) => {
            eprintln!(
                "bench diff: documents are not comparable: {e}\n\
                 (if the sweep set changed on purpose, regenerate the baseline with\n\
                  `cargo run --release -p tricluster-bench --bin fig7 -- --smoke --json current.json`\n\
                  followed by `bench diff BENCH_baseline.json current.json --update`)"
            );
            2
        }
    }
}

fn run_determinism(rest: &[String]) -> i32 {
    let [a_path, b_path] = rest else {
        return usage("determinism expects exactly two files: <a.json> <b.json>");
    };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    match determinism_diff(&a, &b) {
        Ok(diffs) if diffs.is_empty() => {
            println!(
                "bench determinism: OK — input-determined sections of {a_path} and {b_path} \
                 are identical"
            );
            0
        }
        Ok(diffs) => {
            eprintln!(
                "bench determinism: {} section(s) differ between {a_path} and {b_path}:",
                diffs.len()
            );
            for d in &diffs {
                eprintln!("  {d}");
            }
            1
        }
        Err(e) => {
            eprintln!("bench determinism: documents are not comparable: {e}");
            2
        }
    }
}

fn run_scaling(rest: &[String]) -> i32 {
    let mut json_path = None;
    let mut trace_dir = None;
    let mut thread_counts = vec![1usize, 2, 4, 8];
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(path) => json_path = Some(path.clone()),
                None => return usage("--json needs a path"),
            },
            "--trace-dir" => match it.next() {
                Some(dir) => trace_dir = Some(std::path::PathBuf::from(dir)),
                None => return usage("--trace-dir needs a directory"),
            },
            "--threads" => match it.next().map(|s| parse_thread_list(s)) {
                Some(Ok(list)) => thread_counts = list,
                Some(Err(e)) => return usage(&e),
                None => return usage("--threads needs a comma-separated list"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return 2;
        }
    }
    let spec = scaling_spec();
    println!(
        "# thread scaling on {} genes x {} samples x {} times",
        spec.n_genes, spec.n_samples, spec.n_times
    );
    println!("threads,seconds,clusters,rg_fanout,bc_fanout");
    let mut points_json = Vec::new();
    for &n in &thread_counts {
        // A fresh timeline per point keeps each trace file to one run.
        let timeline = trace_dir.as_ref().map(|_| Timeline::new());
        let sink: &dyn EventSink = match &timeline {
            Some(t) => t,
            None => &NullSink,
        };
        let p = measure_threads_observed(&spec, n as f64, n, sink);
        if let (Some(t), Some(dir)) = (&timeline, &trace_dir) {
            let path = dir.join(format!("scaling-threads-{n}.trace.json"));
            if let Err(e) = std::fs::write(&path, t.to_chrome_json().render_pretty() + "\n") {
                eprintln!("cannot write {}: {e}", path.display());
                return 2;
            }
            eprintln!("wrote trace to {}", path.display());
        }
        println!(
            "{},{:.3},{},{},{}",
            n,
            p.time.as_secs_f64(),
            p.clusters,
            p.fanout.range_graph.as_str(),
            p.fanout.bicluster.as_str(),
        );
        points_json.push(p.to_json());
    }
    if let Some(path) = json_path {
        let doc = Json::obj()
            .with("schema", Json::Str("tricluster.fig7/v2".into()))
            .with("scale", Json::Str("scaling".into()))
            .with(
                "sweeps",
                Json::Arr(vec![Json::obj()
                    .with("figure", Json::Str("scaling-threads".into()))
                    .with("x_axis", Json::Str("worker threads".into()))
                    .with("points", Json::Arr(points_json))]),
            );
        if let Err(e) = std::fs::write(&path, doc.render_pretty() + "\n") {
            eprintln!("cannot write {path}: {e}");
            return 2;
        }
        eprintln!("wrote scaling JSON to {path}");
    }
    0
}

fn parse_thread_list(s: &str) -> Result<Vec<usize>, String> {
    let list: Result<Vec<usize>, _> = s.split(',').map(str::parse).collect();
    match list {
        Ok(v) if !v.is_empty() && v.iter().all(|&n| n > 0) => Ok(v),
        _ => Err(format!("--threads: bad list {s:?} (want e.g. 1,2,4,8)")),
    }
}

fn run_kernel(rest: &[String]) -> i32 {
    let mut json_path = None;
    let mut ledger_dir = None;
    let mut genes = vec![100usize, 200, 400, 800, 1600];
    let mut samples = 10usize;
    let mut min_ms = 25u64;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(path) => json_path = Some(path.clone()),
                None => return usage("--json needs a path"),
            },
            "--ledger" => match it.next() {
                Some(dir) => ledger_dir = Some(dir.clone()),
                None => return usage("--ledger needs a directory"),
            },
            "--genes" => match it.next().map(|s| parse_thread_list(s)) {
                Some(Ok(list)) => genes = list,
                Some(Err(e)) => return usage(&e.replace("--threads", "--genes")),
                None => return usage("--genes needs a comma-separated list"),
            },
            "--samples" => match it.next().map(|s| s.parse::<usize>()) {
                Some(Ok(n)) if n >= 2 => samples = n,
                _ => return usage("--samples needs an integer >= 2"),
            },
            "--min-ms" => match it.next().map(|s| s.parse::<u64>()) {
                Some(Ok(ms)) if ms > 0 => min_ms = ms,
                _ => return usage("--min-ms needs a positive integer"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    println!("# pair-kernel microbenchmark: {samples} samples, >={min_ms}ms per stage");
    println!("genes,pairs,edges,stage,sweeps,ns_per_gene");
    let mut points = Vec::new();
    for &g in &genes {
        let spec = kernel::kernel_spec(g, samples);
        let point = kernel::measure_point(&spec, Duration::from_millis(min_ms));
        for s in &point.stages {
            println!(
                "{},{},{},{},{},{:.2}",
                point.n_genes, point.pairs, point.edges, s.name, s.sweeps, s.ns_per_gene
            );
        }
        points.push(point);
    }
    if json_path.is_some() || ledger_dir.is_some() {
        let doc = kernel::kernel_doc(&points);
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(&path, doc.render_pretty() + "\n") {
                eprintln!("cannot write {path}: {e}");
                return 2;
            }
            eprintln!("wrote kernel JSON to {path}");
        }
        if let Some(dir) = ledger_dir {
            // Workloads are generated in-process, so the "dataset" hash
            // covers the sweep family instead of file bytes.
            let genes_label = genes
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let archived = Ledger::open(&dir).and_then(|ledger| {
                ledger.archive(&NewEntry {
                    kind: "bench",
                    label: Some(format!("kernel (genes {genes_label})")),
                    dataset_hash: content_hash(format!("kernel/{genes_label}").as_bytes()),
                    params_hash: content_hash(format!("{samples}/{min_ms}").as_bytes()),
                    report: &doc,
                    trace: None,
                    flame: None,
                })
            });
            match archived {
                Ok(id) => eprintln!("kernel run archived as {id} in {dir}"),
                Err(e) => {
                    eprintln!("cannot archive kernel run in {dir}: {e}");
                    return 2;
                }
            }
        }
    }
    0
}

fn usage(msg: &str) -> i32 {
    eprintln!(
        "usage:\n  \
         bench diff <baseline.json> <current.json> [--time-tol F] [--time-floor SECS] \
         [--mem-tol F] [--mem-floor BYTES] [--update]\n  \
         bench determinism <a.json> <b.json>\n  \
         bench scaling [--json PATH] [--threads N,N,...] [--trace-dir DIR]\n  \
         bench kernel [--json PATH] [--ledger DIR] [--genes N,N,...] [--samples N] \
         [--min-ms MS]\n({msg})"
    );
    2
}
