//! Renders the paper's figures as SVG images into `./results/`:
//!
//! * `fig7.svg` — the six parameter-sensitivity sweeps (measured live),
//! * `fig8.svg` — sample-curves of mined cluster C0 (one subplot per time),
//! * `fig9.svg` — time-curves (one subplot per sample),
//! * `fig10.svg` — gene-curves over time (one subplot per sample).
//!
//! ```sh
//! cargo run --release -p tricluster-bench --bin plots
//! TRICLUSTER_FULL=1 cargo run --release -p tricluster-bench --bin plots
//! ```

use std::fs;
use std::path::Path;
use tricluster_bench::{fig7_sweeps, full_scale, measure};
use tricluster_core::{mine, Params};
use tricluster_microarray::yeast::{self, YeastSpec};
use tricluster_plot::{Chart, SubplotGrid};

fn main() -> std::io::Result<()> {
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir)?;
    let full = full_scale();

    // ---- Figure 7 ----
    eprintln!(
        "measuring figure 7 sweeps ({} scale)…",
        if full { "paper" } else { "scaled" }
    );
    let mut grid = SubplotGrid::new(3);
    for (label, xlabel, points) in fig7_sweeps(full) {
        let series: Vec<(f64, f64)> = points
            .into_iter()
            .map(|(x, spec)| {
                let p = measure(&spec, x);
                (x, p.time.as_secs_f64())
            })
            .collect();
        grid = grid.add(
            Chart::new(label, xlabel, "seconds")
                .series("TriCluster", &series)
                .legend(false),
        );
    }
    fs::write(out_dir.join("fig7.svg"), grid.render())?;
    eprintln!("wrote results/fig7.svg");

    // ---- Figures 8–10 ----
    let spec = if full {
        YeastSpec::default()
    } else {
        YeastSpec::scaled(1500)
    };
    let ds = yeast::build(&spec);
    let params = Params::builder()
        .epsilon(yeast::PAPER_EPSILON)
        .epsilon_time(0.05)
        .min_genes(yeast::PAPER_MIN_GENES)
        .min_samples(yeast::PAPER_MIN_SAMPLES)
        .min_times(yeast::PAPER_MIN_TIMES)
        .build()
        .unwrap();
    let result = mine(&ds.matrix, &params).expect("plot inputs are valid");
    let c = result.triclusters.first().expect("cluster C0 mined");
    let genes: Vec<usize> = c.genes.to_vec();
    // plot a readable subset of genes as the curve family
    let shown: Vec<usize> = genes.iter().copied().take(12).collect();

    // Figure 8: expression vs gene index, one curve per sample, per time
    let mut fig8 = SubplotGrid::new(c.times.len().min(5));
    for &t in &c.times {
        let mut chart = Chart::new(
            format!("time {}", ds.labels.time(t)),
            "gene (rank in cluster)",
            "expression",
        );
        for &s in &c.samples {
            let pts: Vec<(f64, f64)> = genes
                .iter()
                .enumerate()
                .map(|(i, &g)| (i as f64, ds.matrix.get(g, s, t)))
                .collect();
            chart = chart.series(ds.labels.sample(s), &pts);
        }
        fig8 = fig8.add(chart);
    }
    fs::write(out_dir.join("fig8.svg"), fig8.render())?;
    eprintln!("wrote results/fig8.svg (sample-curves)");

    // Figure 9: expression vs gene, one curve per time, per sample
    let mut fig9 = SubplotGrid::new(c.samples.len().min(4));
    for &s in &c.samples {
        let mut chart = Chart::new(
            format!("sample {}", ds.labels.sample(s)),
            "gene (rank in cluster)",
            "expression",
        );
        for &t in &c.times {
            let pts: Vec<(f64, f64)> = genes
                .iter()
                .enumerate()
                .map(|(i, &g)| (i as f64, ds.matrix.get(g, s, t)))
                .collect();
            chart = chart.series(ds.labels.time(t), &pts);
        }
        fig9 = fig9.add(chart);
    }
    fs::write(out_dir.join("fig9.svg"), fig9.render())?;
    eprintln!("wrote results/fig9.svg (time-curves)");

    // Figure 10: expression vs time, one curve per gene, per sample
    let mut fig10 = SubplotGrid::new(c.samples.len().min(4));
    for &s in &c.samples {
        let mut chart = Chart::new(
            format!("sample {}", ds.labels.sample(s)),
            "time point",
            "expression",
        )
        .legend(false);
        for &g in &shown {
            let pts: Vec<(f64, f64)> = c
                .times
                .iter()
                .map(|&t| (t as f64, ds.matrix.get(g, s, t)))
                .collect();
            chart = chart.series(ds.labels.gene(g), &pts);
        }
        fig10 = fig10.add(chart);
    }
    fs::write(out_dir.join("fig10.svg"), fig10.render())?;
    eprintln!("wrote results/fig10.svg (gene-curves)");
    Ok(())
}
