//! E6 — Figures 8–10: the 2D expression curves of one mined cluster (C0).
//!
//! * Figure 8 (*sample-curves*): expression vs gene, one curve per sample,
//!   one sub-plot per time point.
//! * Figure 9 (*time-curves*): expression vs gene, one curve per time,
//!   one sub-plot per sample.
//! * Figure 10 (*gene-curves*): expression vs time, one curve per gene,
//!   one sub-plot per sample.
//!
//! Output is CSV per sub-plot, ready for any plotting tool.
//!
//! ```sh
//! cargo run --release -p tricluster-bench --bin curves > curves.csv
//! ```

use tricluster_bench::full_scale;
use tricluster_core::{mine, Params};
use tricluster_microarray::yeast::{self, YeastSpec};

fn main() {
    let spec = if full_scale() {
        YeastSpec::default()
    } else {
        YeastSpec::scaled(1500)
    };
    let ds = yeast::build(&spec);
    let params = Params::builder()
        .epsilon(yeast::PAPER_EPSILON)
        .epsilon_time(0.05)
        .min_genes(yeast::PAPER_MIN_GENES)
        .min_samples(yeast::PAPER_MIN_SAMPLES)
        .min_times(yeast::PAPER_MIN_TIMES)
        .build()
        .unwrap();
    let result = mine(&ds.matrix, &params).expect("inputs are valid");
    let c = result
        .triclusters
        .first()
        .expect("at least one cluster mined");
    let genes: Vec<usize> = c.genes.to_vec();
    println!(
        "# cluster C0: {} genes x {} samples x {} times",
        genes.len(),
        c.samples.len(),
        c.times.len()
    );

    println!("\n# Figure 8: sample-curves (one sub-plot per time point)");
    for &t in &c.times {
        println!("## subplot time={}", ds.labels.time(t));
        print!("gene");
        for &s in &c.samples {
            print!(",{}", ds.labels.sample(s));
        }
        println!();
        for &g in &genes {
            print!("{}", ds.labels.gene(g));
            for &s in &c.samples {
                print!(",{:.2}", ds.matrix.get(g, s, t));
            }
            println!();
        }
    }

    println!("\n# Figure 9: time-curves (one sub-plot per sample)");
    for &s in &c.samples {
        println!("## subplot sample={}", ds.labels.sample(s));
        print!("gene");
        for &t in &c.times {
            print!(",{}", ds.labels.time(t));
        }
        println!();
        for &g in &genes {
            print!("{}", ds.labels.gene(g));
            for &t in &c.times {
                print!(",{:.2}", ds.matrix.get(g, s, t));
            }
            println!();
        }
    }

    println!("\n# Figure 10: gene-curves (expression vs time, per sample)");
    for &s in &c.samples {
        println!("## subplot sample={}", ds.labels.sample(s));
        print!("time");
        for &g in genes.iter().take(10) {
            print!(",{}", ds.labels.gene(g));
        }
        println!();
        for &t in &c.times {
            print!("{}", ds.labels.time(t));
            for &g in genes.iter().take(10) {
                print!(",{:.2}", ds.matrix.get(g, s, t));
            }
            println!();
        }
    }
}
