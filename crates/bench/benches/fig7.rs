//! Criterion benches behind Figure 7: one representative point per
//! sub-figure dimension, at a scale small enough for statistical sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tricluster_bench::fig7_params;
use tricluster_core::mine;
use tricluster_synth::{generate, SynthSpec};

fn small_base() -> SynthSpec {
    SynthSpec {
        n_genes: 500,
        n_samples: 12,
        n_times: 6,
        n_clusters: 5,
        gene_range: (50, 50),
        sample_range: (5, 5),
        time_range: (3, 3),
        overlap_fraction: 0.2,
        noise: 0.02,
        seed: 9,
        ..SynthSpec::default()
    }
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // (a) genes per cluster
    for gx in [30usize, 60, 90] {
        let mut spec = small_base();
        spec.gene_range = (gx, gx);
        spec.n_genes = gx * 10;
        let data = generate(&spec);
        let params = fig7_params(&spec);
        group.bench_with_input(BenchmarkId::new("a_genes", gx), &gx, |b, _| {
            b.iter(|| mine(&data.matrix, &params))
        });
    }

    // (b) samples in the matrix
    for ns in [8usize, 12, 16] {
        let mut spec = small_base();
        spec.n_samples = ns;
        let data = generate(&spec);
        let params = fig7_params(&spec);
        group.bench_with_input(BenchmarkId::new("b_samples", ns), &ns, |b, _| {
            b.iter(|| mine(&data.matrix, &params))
        });
    }

    // (c) time slices
    for nt in [4usize, 6, 8] {
        let mut spec = small_base();
        spec.n_times = nt;
        let data = generate(&spec);
        let params = fig7_params(&spec);
        group.bench_with_input(BenchmarkId::new("c_times", nt), &nt, |b, _| {
            b.iter(|| mine(&data.matrix, &params))
        });
    }

    // (d) number of clusters
    for k in [3usize, 6, 9] {
        let mut spec = small_base();
        spec.n_clusters = k;
        spec.n_genes = 1000.max(k * 120);
        let data = generate(&spec);
        let params = fig7_params(&spec);
        group.bench_with_input(BenchmarkId::new("d_clusters", k), &k, |b, _| {
            b.iter(|| mine(&data.matrix, &params))
        });
    }

    // (e) overlap %
    for pct in [0usize, 40, 80] {
        let mut spec = small_base();
        spec.overlap_fraction = pct as f64 / 100.0;
        let data = generate(&spec);
        let params = fig7_params(&spec);
        group.bench_with_input(BenchmarkId::new("e_overlap", pct), &pct, |b, _| {
            b.iter(|| mine(&data.matrix, &params))
        });
    }

    // (f) noise %
    for noise_pct in [0usize, 2, 4] {
        let mut spec = small_base();
        spec.noise = noise_pct as f64 / 100.0;
        let data = generate(&spec);
        let params = fig7_params(&spec);
        group.bench_with_input(BenchmarkId::new("f_noise", noise_pct), &noise_pct, |b, _| {
            b.iter(|| mine(&data.matrix, &params))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
