//! Benches behind Figure 7: one representative point per sub-figure
//! dimension, at a scale small enough for repeated sampling.

use tricluster_bench::fig7_params;
use tricluster_bench::harness::bench;
use tricluster_core::mine;
use tricluster_synth::{generate, SynthSpec};

fn small_base() -> SynthSpec {
    SynthSpec {
        n_genes: 500,
        n_samples: 12,
        n_times: 6,
        n_clusters: 5,
        gene_range: (50, 50),
        sample_range: (5, 5),
        time_range: (3, 3),
        overlap_fraction: 0.2,
        noise: 0.02,
        seed: 9,
        ..SynthSpec::default()
    }
}

fn bench_point(label: &str, spec: &SynthSpec) {
    let data = generate(spec);
    let params = fig7_params(spec);
    bench(&format!("fig7/{label}"), || mine(&data.matrix, &params));
}

fn main() {
    // (a) genes per cluster
    for gx in [30usize, 60, 90] {
        let mut spec = small_base();
        spec.gene_range = (gx, gx);
        spec.n_genes = gx * 10;
        bench_point(&format!("a_genes/{gx}"), &spec);
    }
    // (b) samples in the matrix
    for ns in [8usize, 12, 16] {
        let mut spec = small_base();
        spec.n_samples = ns;
        bench_point(&format!("b_samples/{ns}"), &spec);
    }
    // (c) time slices
    for nt in [4usize, 6, 8] {
        let mut spec = small_base();
        spec.n_times = nt;
        bench_point(&format!("c_times/{nt}"), &spec);
    }
    // (d) number of clusters
    for k in [3usize, 6, 9] {
        let mut spec = small_base();
        spec.n_clusters = k;
        spec.n_genes = 1000.max(k * 120);
        bench_point(&format!("d_clusters/{k}"), &spec);
    }
    // (e) overlap %
    for pct in [0usize, 40, 80] {
        let mut spec = small_base();
        spec.overlap_fraction = pct as f64 / 100.0;
        bench_point(&format!("e_overlap/{pct}"), &spec);
    }
    // (f) noise %
    for noise_pct in [0usize, 2, 4] {
        let mut spec = small_base();
        spec.noise = noise_pct as f64 / 100.0;
        bench_point(&format!("f_noise/{noise_pct}"), &spec);
    }
}
