//! Bench behind E7: TriCluster's per-slice bicluster phase vs the pCluster
//! baseline on the same (simulated yeast) slice.

use tricluster_baselines::pcluster;
use tricluster_bench::harness::bench;
use tricluster_core::bicluster::mine_biclusters;
use tricluster_core::rangegraph::build_range_graph;
use tricluster_core::Params;
use tricluster_matrix::Matrix2;
use tricluster_microarray::yeast::{self, YeastSpec};

fn main() {
    let ds = yeast::build(&YeastSpec::scaled(1200));
    let params = Params::builder()
        .epsilon(yeast::PAPER_EPSILON)
        .min_genes(yeast::PAPER_MIN_GENES)
        .min_samples(yeast::PAPER_MIN_SAMPLES)
        .min_times(1)
        .build()
        .unwrap();
    let raw = ds.matrix.time_slice(0);
    let mut log_slice = Matrix2::zeros(raw.rows(), raw.cols());
    for r in 0..raw.rows() {
        for col in 0..raw.cols() {
            log_slice.set(r, col, raw.get(r, col).abs().max(1e-12).ln());
        }
    }
    let delta = (1.0 + yeast::PAPER_EPSILON).ln();

    bench("baseline_cmp/tricluster_slice", || {
        let rg = build_range_graph(&ds.matrix, 0, &params);
        mine_biclusters(&ds.matrix, &rg, &params)
    });
    bench("baseline_cmp/pcluster_slice", || {
        pcluster::mine_pclusters(
            &log_slice,
            delta,
            yeast::PAPER_MIN_GENES,
            yeast::PAPER_MIN_SAMPLES,
        )
    });
}
