//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * range multigraph vs recomputing pair ranges at every DFS node,
//! * extended/split/patched ranges on vs off,
//! * the merge/prune pass cost.

use tricluster_bench::harness::bench;
use tricluster_bench::nocache;
use tricluster_core::bicluster::mine_biclusters;
use tricluster_core::params::RangeExtension;
use tricluster_core::rangegraph::build_range_graph;
use tricluster_core::{mine, MergeParams, Params};
use tricluster_synth::{generate, SynthSpec};

fn spec() -> SynthSpec {
    SynthSpec {
        n_genes: 300,
        n_samples: 10,
        n_times: 4,
        n_clusters: 4,
        gene_range: (40, 40),
        sample_range: (4, 4),
        time_range: (3, 3),
        overlap_fraction: 0.2,
        noise: 0.02,
        seed: 13,
        ..SynthSpec::default()
    }
}

fn bench_multigraph_vs_nocache() {
    let s = spec();
    let data = generate(&s);
    let params = Params::builder()
        .epsilon(s.suggested_epsilon())
        .min_size(20, 3, 2)
        .build()
        .unwrap();
    bench("ablation_multigraph/with_range_multigraph", || {
        let rg = build_range_graph(&data.matrix, 0, &params);
        mine_biclusters(&data.matrix, &rg, &params)
    });
    bench("ablation_multigraph/ranges_recomputed_per_node", || {
        nocache::mine_biclusters_nocache(&data.matrix, 0, &params)
    });
}

fn bench_range_extension() {
    let s = spec();
    let data = generate(&s);
    for (label, ext) in [
        ("extension_on", RangeExtension::On),
        ("extension_off", RangeExtension::Off),
    ] {
        let params = Params::builder()
            .epsilon(s.suggested_epsilon())
            .min_size(30, 4, 2)
            .range_extension(ext)
            .build()
            .unwrap();
        bench(&format!("ablation_extension/{label}"), || {
            mine(&data.matrix, &params)
        });
    }
}

fn bench_merge_prune() {
    let s = SynthSpec {
        overlap_fraction: 0.6,
        ..spec()
    };
    let data = generate(&s);
    let base = Params::builder()
        .epsilon(s.suggested_epsilon())
        .min_size(25, 3, 2);
    let without = base.clone().build().unwrap();
    let with = base
        .merge(MergeParams {
            eta: 0.25,
            gamma: 0.1,
        })
        .build()
        .unwrap();
    bench("ablation_merge/without_merge_pass", || {
        mine(&data.matrix, &without)
    });
    bench("ablation_merge/with_merge_pass", || {
        mine(&data.matrix, &with)
    });
}

fn main() {
    bench_multigraph_vs_nocache();
    bench_range_extension();
    bench_merge_prune();
}
