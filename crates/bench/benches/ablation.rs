//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * range multigraph vs recomputing pair ranges at every DFS node,
//! * extended/split/patched ranges on vs off,
//! * the merge/prune pass cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tricluster_bench::nocache;
use tricluster_core::bicluster::mine_biclusters;
use tricluster_core::params::RangeExtension;
use tricluster_core::rangegraph::build_range_graph;
use tricluster_core::{mine, MergeParams, Params};
use tricluster_synth::{generate, SynthSpec};

fn spec() -> SynthSpec {
    SynthSpec {
        n_genes: 300,
        n_samples: 10,
        n_times: 4,
        n_clusters: 4,
        gene_range: (40, 40),
        sample_range: (4, 4),
        time_range: (3, 3),
        overlap_fraction: 0.2,
        noise: 0.02,
        seed: 13,
        ..SynthSpec::default()
    }
}

fn configure(group: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
}

fn bench_multigraph_vs_nocache(c: &mut Criterion) {
    let s = spec();
    let data = generate(&s);
    let params = Params::builder()
        .epsilon(s.suggested_epsilon())
        .min_size(20, 3, 2)
        .build()
        .unwrap();
    let mut group = c.benchmark_group("ablation_multigraph");
    configure(&mut group);
    group.bench_function("with_range_multigraph", |b| {
        b.iter(|| {
            let rg = build_range_graph(&data.matrix, 0, &params);
            mine_biclusters(&data.matrix, &rg, &params)
        })
    });
    group.bench_function("ranges_recomputed_per_node", |b| {
        b.iter(|| nocache::mine_biclusters_nocache(&data.matrix, 0, &params))
    });
    group.finish();
}

fn bench_range_extension(c: &mut Criterion) {
    let s = spec();
    let data = generate(&s);
    let mut group = c.benchmark_group("ablation_extension");
    configure(&mut group);
    for (label, ext) in [
        ("extension_on", RangeExtension::On),
        ("extension_off", RangeExtension::Off),
    ] {
        let params = Params::builder()
            .epsilon(s.suggested_epsilon())
            .min_size(30, 4, 2)
            .range_extension(ext)
            .build()
            .unwrap();
        group.bench_function(label, |b| b.iter(|| mine(&data.matrix, &params)));
    }
    group.finish();
}

fn bench_merge_prune(c: &mut Criterion) {
    let s = SynthSpec {
        overlap_fraction: 0.6,
        ..spec()
    };
    let data = generate(&s);
    let mut group = c.benchmark_group("ablation_merge");
    configure(&mut group);
    let base = Params::builder()
        .epsilon(s.suggested_epsilon())
        .min_size(25, 3, 2);
    let without = base.clone().build().unwrap();
    let with = base
        .merge(MergeParams {
            eta: 0.25,
            gamma: 0.1,
        })
        .build()
        .unwrap();
    group.bench_function("without_merge_pass", |b| {
        b.iter(|| mine(&data.matrix, &without))
    });
    group.bench_function("with_merge_pass", |b| b.iter(|| mine(&data.matrix, &with)));
    group.finish();
}

criterion_group!(
    benches,
    bench_multigraph_vs_nocache,
    bench_range_extension,
    bench_merge_prune
);
criterion_main!(benches);
