//! Micro-benchmarks of the hot substrates: gene-set intersection (bitset vs
//! `HashSet<u32>`), ratio-range finding, and maximal-clique enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;
use tricluster_bitset::BitSet;
use tricluster_core::params::RangeExtension;
use tricluster_core::range::{find_ranges, SignGroup};
use tricluster_graph::Graph;

fn bench_geneset_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("geneset_intersection");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [1000usize, 8000] {
        let a_items: Vec<usize> = (0..n).step_by(3).collect();
        let b_items: Vec<usize> = (0..n).step_by(5).collect();
        let a_bits = BitSet::from_indices(n, a_items.iter().copied());
        let b_bits = BitSet::from_indices(n, b_items.iter().copied());
        let a_hash: HashSet<u32> = a_items.iter().map(|&x| x as u32).collect();
        let b_hash: HashSet<u32> = b_items.iter().map(|&x| x as u32).collect();

        group.bench_with_input(BenchmarkId::new("bitset_and", n), &n, |bench, _| {
            bench.iter(|| a_bits.intersection_count(&b_bits))
        });
        group.bench_with_input(BenchmarkId::new("bitset_at_least_50", n), &n, |bench, _| {
            bench.iter(|| a_bits.intersection_count_at_least(&b_bits, 50))
        });
        group.bench_with_input(BenchmarkId::new("hashset_and", n), &n, |bench, _| {
            bench.iter(|| a_hash.intersection(&b_hash).count())
        });
    }
    group.finish();
}

fn bench_range_finding(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_finding");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [1000usize, 8000] {
        // clustered ratios: five tight groups plus uniform background
        let mut ratios: Vec<(f64, usize)> = Vec::with_capacity(n);
        let mut state = 0x0123_4567_89AB_CDEFu64;
        for g in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = if g % 4 == 0 {
                1.0 + (g % 5) as f64 + (state % 100) as f64 * 1e-5
            } else {
                0.5 + (state % 100_000) as f64 * 1e-4
            };
            ratios.push((r, g));
        }
        for ext in [RangeExtension::On, RangeExtension::Off] {
            let label = format!("{}_{:?}", n, ext);
            group.bench_function(BenchmarkId::new("find_ranges", label), |bench| {
                bench.iter(|| {
                    find_ranges(&ratios, SignGroup::Positive, 0.003, 50, n, ext)
                })
            });
        }
    }
    group.finish();
}

fn bench_clique_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_cliques");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [20usize, 40] {
        let mut g = Graph::new(n);
        let mut state = 0xDEAD_BEEFu64;
        for u in 0..n {
            for v in (u + 1)..n {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state % 100 < 40 {
                    g.add_edge(u, v);
                }
            }
        }
        group.bench_with_input(BenchmarkId::new("bron_kerbosch", n), &n, |bench, _| {
            bench.iter(|| g.maximal_cliques())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_geneset_intersection,
    bench_range_finding,
    bench_clique_enumeration
);
criterion_main!(benches);
