//! Micro-benchmarks of the hot substrates: gene-set intersection (bitset vs
//! `HashSet<u32>`), ratio-range finding, and maximal-clique enumeration.

use std::collections::HashSet;
use tricluster_bench::harness::bench;
use tricluster_bitset::BitSet;
use tricluster_core::params::RangeExtension;
use tricluster_core::range::{find_ranges, SignGroup};
use tricluster_graph::Graph;

fn bench_geneset_intersection() {
    for n in [1000usize, 8000] {
        let a_items: Vec<usize> = (0..n).step_by(3).collect();
        let b_items: Vec<usize> = (0..n).step_by(5).collect();
        let a_bits = BitSet::from_indices(n, a_items.iter().copied());
        let b_bits = BitSet::from_indices(n, b_items.iter().copied());
        let a_hash: HashSet<u32> = a_items.iter().map(|&x| x as u32).collect();
        let b_hash: HashSet<u32> = b_items.iter().map(|&x| x as u32).collect();

        bench(&format!("geneset_intersection/bitset_and/{n}"), || {
            a_bits.intersection_count(&b_bits)
        });
        bench(
            &format!("geneset_intersection/bitset_at_least_50/{n}"),
            || a_bits.intersection_count_at_least(&b_bits, 50),
        );
        bench(&format!("geneset_intersection/hashset_and/{n}"), || {
            a_hash.intersection(&b_hash).count()
        });
    }
}

fn bench_range_finding() {
    for n in [1000usize, 8000] {
        // clustered ratios: five tight groups plus uniform background
        let mut ratios: Vec<(f64, usize)> = Vec::with_capacity(n);
        let mut state = 0x0123_4567_89AB_CDEFu64;
        for g in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = if g % 4 == 0 {
                1.0 + (g % 5) as f64 + (state % 100) as f64 * 1e-5
            } else {
                0.5 + (state % 100_000) as f64 * 1e-4
            };
            ratios.push((r, g));
        }
        for ext in [RangeExtension::On, RangeExtension::Off] {
            bench(&format!("range_finding/find_ranges/{n}_{ext:?}"), || {
                find_ranges(&ratios, SignGroup::Positive, 0.003, 50, n, ext)
            });
        }
    }
}

fn bench_clique_enumeration() {
    for n in [20usize, 40] {
        let mut g = Graph::new(n);
        let mut state = 0xDEAD_BEEFu64;
        for u in 0..n {
            for v in (u + 1)..n {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state % 100 < 40 {
                    g.add_edge(u, v);
                }
            }
        }
        bench(&format!("maximal_cliques/bron_kerbosch/{n}"), || {
            g.maximal_cliques()
        });
    }
}

fn main() {
    bench_geneset_intersection();
    bench_range_finding();
    bench_clique_enumeration();
}
