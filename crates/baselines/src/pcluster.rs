//! pCluster (Wang et al., SIGMOD 2002) — the pattern-based 2D competitor.
//!
//! A pCluster is a submatrix `(R, C)` such that every 2×2 submatrix
//! satisfies the *pScore* bound
//! `|(d_xa − d_ya) − (d_xb − d_yb)| ≤ δ` — i.e. rows differ by an
//! approximately constant **additive** offset (the shifting pattern; on
//! log-transformed data this is the scaling pattern TriCluster mines
//! multiplicatively).
//!
//! This implementation follows the published structure:
//!
//! 1. For every column pair `(a, b)`, compute per-row differences
//!    `d_ra − d_rb` and find all maximal windows of width `≤ δ` spanning at
//!    least `min_rows` rows (the column-pair MDS — *maximal dimension
//!    sets*).
//! 2. Enumerate column subsets depth-first in a prefix tree, intersecting
//!    the row sets of the participating windows, pruning on `min_rows`,
//!    and keep the maximal clusters.
//!
//! The row-pair MDS pruning of the original paper is an additional filter
//! that cheapens step 2 on wide matrices; with the column counts of
//! microarray data (tens) the prefix enumeration dominates either way, and
//! omitting it does not change the output, only constants.

use tricluster_bitset::BitSet;
use tricluster_matrix::Matrix2;

/// A mined pCluster: a set of rows × a set of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PCluster {
    /// Row set (bitset over all rows).
    pub rows: BitSet,
    /// Column set, ascending.
    pub cols: Vec<usize>,
}

impl PCluster {
    /// `true` iff `self ⊆ other` dimension-wise.
    pub fn is_subcluster_of(&self, other: &PCluster) -> bool {
        self.rows.is_subset(&other.rows)
            && self
                .cols
                .iter()
                .all(|c| other.cols.binary_search(c).is_ok())
    }
}

/// A maximal difference window between one column pair.
#[derive(Debug, Clone)]
struct Window {
    rows: BitSet,
}

/// Mines all maximal pClusters of `m` with pScore bound `delta` and minimum
/// shape `min_rows × min_cols`.
pub fn mine_pclusters(m: &Matrix2, delta: f64, min_rows: usize, min_cols: usize) -> Vec<PCluster> {
    assert!(delta >= 0.0, "delta must be non-negative");
    assert!(min_rows >= 1 && min_cols >= 1);
    let (n_rows, n_cols) = m.dims();
    if n_rows == 0 || n_cols == 0 {
        return Vec::new();
    }

    // --- step 1: column-pair maximal windows over row differences ---
    // windows[a][b - a - 1] = list of maximal windows for pair (a, b)
    let mut pair_windows: Vec<Vec<Vec<Window>>> = Vec::with_capacity(n_cols);
    for a in 0..n_cols {
        let mut per_b = Vec::new();
        for b in (a + 1)..n_cols {
            per_b.push(column_pair_windows(m, a, b, delta, min_rows));
        }
        pair_windows.push(per_b);
    }

    // --- step 2: prefix enumeration over column subsets ---
    let mut results: Vec<PCluster> = Vec::new();
    let mut cols: Vec<usize> = Vec::new();
    let all_rows = BitSet::full(n_rows);
    enumerate(
        m,
        &pair_windows,
        &all_rows,
        &mut cols,
        0,
        n_cols,
        delta,
        min_rows,
        min_cols,
        &mut results,
    );
    results.sort_by(|x, y| {
        x.rows
            .to_vec()
            .cmp(&y.rows.to_vec())
            .then_with(|| x.cols.cmp(&y.cols))
    });
    results
}

/// Maximal windows of width ≤ delta over the sorted per-row differences
/// `d_ra − d_rb`.
fn column_pair_windows(
    m: &Matrix2,
    a: usize,
    b: usize,
    delta: f64,
    min_rows: usize,
) -> Vec<Window> {
    let n_rows = m.rows();
    let mut diffs: Vec<(f64, usize)> = (0..n_rows)
        .map(|r| (m.get(r, a) - m.get(r, b), r))
        .filter(|(d, _)| d.is_finite())
        .collect();
    diffs.sort_by(|x, y| x.0.total_cmp(&y.0));
    let n = diffs.len();
    let mut out = Vec::new();
    let mut right = 0usize;
    let mut prev_right = 0usize;
    for left in 0..n {
        if right < left {
            right = left;
        }
        while right < n && diffs[right].0 - diffs[left].0 <= delta {
            right += 1;
        }
        let maximal = left == 0 || right > prev_right;
        if maximal && right - left >= min_rows {
            out.push(Window {
                rows: BitSet::from_indices(n_rows, diffs[left..right].iter().map(|&(_, r)| r)),
            });
        }
        prev_right = right;
    }
    out
}

#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn enumerate(
    m: &Matrix2,
    pair_windows: &[Vec<Vec<Window>>],
    rows: &BitSet,
    cols: &mut Vec<usize>,
    next_col: usize,
    n_cols: usize,
    delta: f64,
    min_rows: usize,
    min_cols: usize,
    results: &mut Vec<PCluster>,
) {
    if cols.len() >= min_cols && rows.count() >= min_rows {
        let candidate = PCluster {
            rows: rows.clone(),
            cols: cols.clone(),
        };
        if !results.iter().any(|c| candidate.is_subcluster_of(c)) {
            results.retain(|c| !c.is_subcluster_of(&candidate));
            results.push(candidate);
        }
    }
    for b in next_col..n_cols {
        if cols.is_empty() {
            cols.push(b);
            enumerate(
                m,
                pair_windows,
                rows,
                cols,
                b + 1,
                n_cols,
                delta,
                min_rows,
                min_cols,
                results,
            );
            cols.pop();
            continue;
        }
        // candidate row sets: for every existing column a, intersect with a
        // window of (a, b); enumerate window combinations like the prefix
        // tree does, with row-count pruning.
        let mut seen: std::collections::HashSet<Vec<u64>> = std::collections::HashSet::new();
        let mut stack: Vec<(usize, BitSet)> = vec![(0, rows.clone())];
        while let Some((ci, acc)) = stack.pop() {
            if ci == cols.len() {
                if seen.insert(acc.as_blocks().to_vec()) {
                    cols.push(b);
                    enumerate(
                        m,
                        pair_windows,
                        &acc,
                        cols,
                        b + 1,
                        n_cols,
                        delta,
                        min_rows,
                        min_cols,
                        results,
                    );
                    cols.pop();
                }
                continue;
            }
            let a = cols[ci];
            let (lo, hi) = (a.min(b), a.max(b));
            for w in &pair_windows[lo][hi - lo - 1] {
                if w.rows.intersection_count_at_least(&acc, min_rows) {
                    let mut next = acc.clone();
                    next.intersect_with(&w.rows);
                    if next.count() >= min_rows {
                        stack.push((ci + 1, next));
                    }
                }
            }
        }
    }
}

/// Checks the pScore condition directly (test oracle).
pub fn is_pcluster(m: &Matrix2, rows: &[usize], cols: &[usize], delta: f64) -> bool {
    for (i, &x) in rows.iter().enumerate() {
        for &y in &rows[i + 1..] {
            for (j, &a) in cols.iter().enumerate() {
                for &b in &cols[j + 1..] {
                    let score = ((m.get(x, a) - m.get(y, a)) - (m.get(x, b) - m.get(y, b))).abs();
                    if score > delta {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 5x4 with rows 0..=2 forming an additive pattern on cols 0..=2.
    fn fixture() -> Matrix2 {
        let base = [1.0, 3.0, 2.0]; // column pattern
        let offsets = [0.0, 5.0, -2.0];
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for (r, off) in offsets.iter().enumerate() {
            let mut row: Vec<f64> = base.iter().map(|v| v + off).collect();
            row.push(40.0 + 13.7 * r as f64); // noise column
            rows.push(row);
        }
        rows.push(vec![17.1, 9.2, 25.6, 3.3]);
        rows.push(vec![8.8, 21.4, 5.5, 30.9]);
        Matrix2::from_rows(&rows)
    }

    #[test]
    fn finds_additive_cluster() {
        let m = fixture();
        let found = mine_pclusters(&m, 1e-9, 3, 3);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rows.to_vec(), vec![0, 1, 2]);
        assert_eq!(found[0].cols, vec![0, 1, 2]);
    }

    #[test]
    fn found_clusters_satisfy_pscore() {
        let m = fixture();
        for delta in [0.0, 0.5, 5.0] {
            for c in mine_pclusters(&m, delta, 2, 2) {
                assert!(
                    is_pcluster(&m, &c.rows.to_vec(), &c.cols, delta + 1e-9),
                    "delta={delta}: {c:?}"
                );
            }
        }
    }

    #[test]
    fn results_are_maximal() {
        let m = fixture();
        let found = mine_pclusters(&m, 2.0, 2, 2);
        for (i, a) in found.iter().enumerate() {
            for (j, b) in found.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subcluster_of(b), "{a:?} ⊆ {b:?}");
                }
            }
        }
    }

    #[test]
    fn brute_force_cross_check() {
        // exhaustive reference on a small matrix
        let m = fixture();
        let delta = 1.0;
        let (min_rows, min_cols) = (2, 2);
        let found = mine_pclusters(&m, delta, min_rows, min_cols);
        // every valid maximal (rows, cols) must be in `found`
        let nr = m.rows();
        let nc = m.cols();
        let mut brute: Vec<PCluster> = Vec::new();
        for rmask in 1u32..(1 << nr) {
            if (rmask.count_ones() as usize) < min_rows {
                continue;
            }
            for cmask in 1u32..(1 << nc) {
                if (cmask.count_ones() as usize) < min_cols {
                    continue;
                }
                let rows: Vec<usize> = (0..nr).filter(|i| rmask & (1 << i) != 0).collect();
                let cols: Vec<usize> = (0..nc).filter(|i| cmask & (1 << i) != 0).collect();
                if is_pcluster(&m, &rows, &cols, delta) {
                    let cand = PCluster {
                        rows: BitSet::from_indices(nr, rows),
                        cols,
                    };
                    if !brute.iter().any(|c| cand.is_subcluster_of(c)) {
                        brute.retain(|c| !c.is_subcluster_of(&cand));
                        brute.push(cand);
                    }
                }
            }
        }
        brute.sort_by(|x, y| {
            x.rows
                .to_vec()
                .cmp(&y.rows.to_vec())
                .then_with(|| x.cols.cmp(&y.cols))
        });
        assert_eq!(found, brute);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = Matrix2::zeros(0, 0);
        assert!(mine_pclusters(&empty, 1.0, 1, 1).is_empty());
        let tiny = Matrix2::from_rows(&[vec![1.0]]);
        let found = mine_pclusters(&tiny, 1.0, 1, 1);
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn min_sizes_prune() {
        let m = fixture();
        assert!(mine_pclusters(&m, 1e-9, 4, 3).is_empty());
        assert!(mine_pclusters(&m, 1e-9, 3, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "delta must be non-negative")]
    fn negative_delta_panics() {
        mine_pclusters(&Matrix2::zeros(2, 2), -1.0, 1, 1);
    }
}
