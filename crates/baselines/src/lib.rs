//! Baseline algorithms for comparison and cross-checking.
//!
//! * [`brute`] — an exact, exponential-time tricluster enumerator that
//!   checks the paper's cluster definition directly. On tiny matrices it is
//!   the *correctness oracle* for the real miner (see the cross-check
//!   integration tests).
//! * [`pcluster`] — a reimplementation of the pCluster model (Wang et al.,
//!   SIGMOD 2002), the pattern-based 2D competitor the paper compares
//!   against ("we show that it runs much slower than TriCluster on real
//!   microarray datasets"). pCluster mines *additive*-coherent submatrices
//!   via pairwise difference windows and a prefix enumeration.
//! * [`jiang`] — the gene-sample-time method of Jiang et al. (KDD 2004),
//!   the only prior 3D-adjacent approach (§3.1): Pearson correlation over
//!   *full* time vectors, illustrating exactly the limitation TriCluster
//!   lifts.
//! * [`chengchurch`] — the δ-biclustering algorithm of Cheng & Church
//!   (ISMB 2000): greedy mean-squared-residue node deletion/addition with
//!   random masking, the classic non-deterministic baseline whose
//!   limitations (local optima, masked overlaps) §3.3 discusses.
//! * [`opsm`] — order-preserving submatrices (Ben-Dor et al., RECOMB 2002):
//!   partial-model beam search plus an exact reference, demonstrating the
//!   incompleteness of narrow beams.
//! * [`xmotif`] — conserved expression motifs (Murali & Kasif, PSB 2003):
//!   the Monte Carlo method whose random sampling "cannot guarantee to find
//!   all the clusters".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod chengchurch;
pub mod jiang;
pub mod opsm;
pub mod pcluster;
pub mod xmotif;
