//! Jiang et al. (KDD 2004) — coherent gene clusters from gene-sample-time
//! data, the closest prior method §3.1 discusses.
//!
//! The method treats the 3D matrix as a gene × sample grid of *time
//! vectors* and calls two genes coherent on a sample when the Pearson
//! correlation of their time vectors exceeds a threshold. A *coherent gene
//! cluster* is a pair `(G, S)` such that every gene pair of `G` is coherent
//! on every sample of `S`. Mining follows the "sample-first" strategy:
//! precompute, for every gene pair, its maximal coherent sample set, then
//! enumerate gene subsets whose pairwise sample-set intersection stays
//! large.
//!
//! The limitation the TriCluster paper calls out is structural: the time
//! dimension is used **in full space** — a pattern holding on only a subset
//! of the time points is invisible (see
//! `full_time_dimension_misses_partial_trends` below), and the time axis
//! never appears in the output. TriCluster subsumes this method's outputs
//! with `Z = all times` while additionally mining time subsets.

use tricluster_bitset::BitSet;
use tricluster_matrix::Matrix3;

/// A coherent gene cluster: genes × samples (times are implicit: all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneSampleCluster {
    /// Gene set.
    pub genes: BitSet,
    /// Sample set, ascending.
    pub samples: Vec<usize>,
}

impl GeneSampleCluster {
    /// `true` iff `self ⊆ other` dimension-wise.
    pub fn is_subcluster_of(&self, other: &GeneSampleCluster) -> bool {
        self.genes.is_subset(&other.genes)
            && self
                .samples
                .iter()
                .all(|s| other.samples.binary_search(s).is_ok())
    }
}

/// Pearson correlation of two equal-length series. Returns 0 for
/// degenerate (constant) series.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series lengths differ");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Parameters for [`mine_gene_sample_clusters`].
#[derive(Debug, Clone, Copy)]
pub struct JiangParams {
    /// Minimum Pearson correlation for two genes to be coherent on a sample.
    pub min_correlation: f64,
    /// Minimum genes per cluster.
    pub min_genes: usize,
    /// Minimum samples per cluster.
    pub min_samples: usize,
}

impl Default for JiangParams {
    fn default() -> Self {
        JiangParams {
            min_correlation: 0.9,
            min_genes: 2,
            min_samples: 2,
        }
    }
}

/// Extracts the time vector of `(gene, sample)`.
fn time_vector(m: &Matrix3, g: usize, s: usize) -> Vec<f64> {
    (0..m.n_times()).map(|t| m.get(g, s, t)).collect()
}

/// Mines all maximal coherent gene clusters (sample-first strategy).
///
/// Intended for baseline comparisons at moderate gene counts — the gene
/// pair table is `O(n² · |S| · |T|)`.
pub fn mine_gene_sample_clusters(m: &Matrix3, params: &JiangParams) -> Vec<GeneSampleCluster> {
    let n = m.n_genes();
    let ns = m.n_samples();
    assert!(
        params.min_genes >= 2,
        "clusters need at least two genes for pairwise coherence"
    );

    // per gene/sample time vectors
    let vectors: Vec<Vec<Vec<f64>>> = (0..n)
        .map(|g| (0..ns).map(|s| time_vector(m, g, s)).collect())
        .collect();

    // pairwise coherent sample sets
    let pair_samples = |a: usize, b: usize| -> BitSet {
        let mut set = BitSet::new(ns);
        for (s, (va, vb)) in vectors[a].iter().zip(&vectors[b]).enumerate() {
            if pearson(va, vb) >= params.min_correlation {
                set.insert(s);
            }
        }
        set
    };
    let mut table: Vec<Vec<BitSet>> = Vec::with_capacity(n);
    for a in 0..n {
        let mut row = Vec::with_capacity(n - a);
        for b in (a + 1)..n {
            row.push(pair_samples(a, b));
        }
        table.push(row);
    }
    let samples_of = |a: usize, b: usize| -> &BitSet {
        let (lo, hi) = (a.min(b), a.max(b));
        &table[lo][hi - lo - 1]
    };

    // DFS over gene subsets in ascending order, intersecting sample sets
    struct Ctx<'a> {
        n: usize,
        min_genes: usize,
        min_samples: usize,
        samples_of: &'a dyn Fn(usize, usize) -> &'a BitSet,
        genes: Vec<usize>,
        results: Vec<GeneSampleCluster>,
    }
    impl Ctx<'_> {
        fn dfs(&mut self, samples: &BitSet, next: usize) {
            if self.genes.len() >= self.min_genes && samples.count() >= self.min_samples {
                let candidate = GeneSampleCluster {
                    genes: BitSet::from_indices(self.n, self.genes.iter().copied()),
                    samples: samples.to_vec(),
                };
                if !self.results.iter().any(|c| candidate.is_subcluster_of(c)) {
                    self.results.retain(|c| !c.is_subcluster_of(&candidate));
                    self.results.push(candidate);
                }
            }
            for g in next..self.n {
                let mut new_samples = samples.clone();
                for &prev in &self.genes {
                    new_samples.intersect_with((self.samples_of)(prev, g));
                    if new_samples.count() < self.min_samples {
                        break;
                    }
                }
                if new_samples.count() < self.min_samples {
                    continue;
                }
                self.genes.push(g);
                self.dfs(&new_samples, g + 1);
                self.genes.pop();
            }
        }
    }
    let mut ctx = Ctx {
        n,
        min_genes: params.min_genes,
        min_samples: params.min_samples,
        samples_of: &samples_of,
        genes: Vec::new(),
        results: Vec::new(),
    };
    let all = BitSet::full(ns);
    ctx.dfs(&all, 0);
    let mut results = ctx.results;
    results.sort_by(|x, y| {
        x.genes
            .to_vec()
            .cmp(&y.genes.to_vec())
            .then_with(|| x.samples.cmp(&y.samples))
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0, "constant series");
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "series lengths differ")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    /// Genes 0..2 share a temporal trend on samples 0..1; gene 3 is noise.
    fn fixture() -> Matrix3 {
        let mut m = Matrix3::zeros(4, 3, 4);
        let trend = [1.0, 3.0, 2.0, 4.0];
        for g in 0..3 {
            for s in 0..2 {
                for (t, &v) in trend.iter().enumerate() {
                    // affine per gene/sample transform keeps correlation 1
                    m.set(g, s, t, v * (g + 1) as f64 + s as f64);
                }
            }
            // sample 2: different trend per gene
            for t in 0..4 {
                m.set(g, 2, t, ((g * 7 + t * (g + 2)) % 5) as f64);
            }
        }
        let noise = [4.0, 1.0, 5.0, 2.0];
        for s in 0..3 {
            for (t, &v) in noise.iter().enumerate() {
                m.set(3, s, t, v + (s * t) as f64 * 1.3);
            }
        }
        m
    }

    #[test]
    fn finds_coherent_gene_cluster() {
        let m = fixture();
        let found = mine_gene_sample_clusters(&m, &JiangParams::default());
        assert!(
            found
                .iter()
                .any(|c| c.genes.to_vec() == vec![0, 1, 2] && c.samples == vec![0, 1]),
            "{found:?}"
        );
    }

    #[test]
    fn results_are_maximal() {
        let m = fixture();
        let found = mine_gene_sample_clusters(&m, &JiangParams::default());
        for (i, a) in found.iter().enumerate() {
            for (j, b) in found.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subcluster_of(b), "{a:?} ⊆ {b:?}");
                }
            }
        }
    }

    /// The structural limitation: a trend holding on only half the time
    /// points is invisible to full-time-dimension correlation, while
    /// TriCluster mines it (with the time subset in the output).
    #[test]
    fn full_time_dimension_misses_partial_trends() {
        use tricluster_core::{mine, Params};
        let mut m = Matrix3::zeros(4, 3, 6);
        // fill with incoherent background
        let mut v = 0.37;
        m.map_in_place(|_| {
            v = (v * 13.1) % 7.0 + 0.5;
            v
        });
        // genes 0..2 scale together on samples 0..2 but ONLY at times 0..2
        for g in 0..3 {
            for s in 0..3 {
                for t in 0..3 {
                    m.set(g, s, t, (g + 1) as f64 * (s + 1) as f64 * (t + 1) as f64);
                }
            }
        }
        let jiang = mine_gene_sample_clusters(
            &m,
            &JiangParams {
                min_correlation: 0.95,
                min_genes: 3,
                min_samples: 3,
            },
        );
        assert!(
            jiang.is_empty(),
            "full-space correlation should not find the half-time cluster: {jiang:?}"
        );
        let params = Params::builder()
            .epsilon(0.001)
            .min_size(3, 3, 3)
            .build()
            .unwrap();
        let tri = mine(&m, &params).unwrap();
        assert!(
            tri.triclusters
                .iter()
                .any(|c| c.genes.count() == 3 && c.samples.len() == 3 && c.times == vec![0, 1, 2]),
            "TriCluster finds the time-subset cluster: {:?}",
            tri.triclusters
        );
    }

    #[test]
    fn min_thresholds_prune() {
        let m = fixture();
        let none = mine_gene_sample_clusters(
            &m,
            &JiangParams {
                min_genes: 4,
                ..Default::default()
            },
        );
        assert!(none.iter().all(|c| c.genes.count() >= 4));
        let none = mine_gene_sample_clusters(
            &m,
            &JiangParams {
                min_samples: 4,
                ..Default::default()
            },
        );
        assert!(none.is_empty(), "only 3 samples exist");
    }

    #[test]
    #[should_panic(expected = "at least two genes")]
    fn min_genes_one_rejected() {
        mine_gene_sample_clusters(
            &fixture(),
            &JiangParams {
                min_genes: 1,
                ..Default::default()
            },
        );
    }
}
