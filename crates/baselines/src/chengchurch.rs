//! Cheng & Church δ-biclustering (ISMB 2000).
//!
//! The classic greedy baseline §3.3 discusses: a δ-bicluster is a submatrix
//! whose *mean squared residue*
//!
//! ```text
//! H(I, J) = 1/(|I||J|) Σ_{i∈I, j∈J} (a_ij − a_iJ − a_Ij + a_IJ)²
//! ```
//!
//! is below a threshold δ. Starting from the full matrix, the algorithm
//! greedily deletes the rows/columns contributing the most residue
//! (*multiple node deletion* with factor `α`, then *single node deletion*),
//! then adds back rows/columns that do not raise the residue (*node
//! addition*). After each bicluster is reported, its cells are masked with
//! random values and the search repeats — which is exactly why it misses
//! overlapping clusters, the weakness TriCluster's §3.3 calls out.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tricluster_matrix::Matrix2;

/// One δ-bicluster.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaBicluster {
    /// Selected rows, ascending.
    pub rows: Vec<usize>,
    /// Selected columns, ascending.
    pub cols: Vec<usize>,
    /// Mean squared residue of the final submatrix.
    pub residue: f64,
}

/// Parameters for [`mine_delta_biclusters`].
#[derive(Debug, Clone, Copy)]
pub struct CcParams {
    /// Residue threshold δ.
    pub delta: f64,
    /// Multiple-deletion aggressiveness `α` (Cheng & Church use 1.2).
    pub alpha: f64,
    /// Number of biclusters to extract.
    pub n_clusters: usize,
    /// Minimum rows/cols for a reported bicluster.
    pub min_rows: usize,
    /// Minimum columns.
    pub min_cols: usize,
    /// Mask replacement range (random uniform).
    pub mask_range: (f64, f64),
    /// RNG seed for masking.
    pub seed: u64,
}

impl Default for CcParams {
    fn default() -> Self {
        CcParams {
            delta: 0.1,
            alpha: 1.2,
            n_clusters: 5,
            min_rows: 2,
            min_cols: 2,
            mask_range: (0.0, 800.0),
            seed: 2000,
        }
    }
}

/// Mean squared residue of the submatrix `rows × cols`.
pub fn mean_squared_residue(m: &Matrix2, rows: &[usize], cols: &[usize]) -> f64 {
    if rows.is_empty() || cols.is_empty() {
        return 0.0;
    }
    let (row_means, col_means, mean) = means(m, rows, cols);
    let mut acc = 0.0;
    for (ri, &r) in rows.iter().enumerate() {
        for (ci, &c) in cols.iter().enumerate() {
            let resid = m.get(r, c) - row_means[ri] - col_means[ci] + mean;
            acc += resid * resid;
        }
    }
    acc / (rows.len() * cols.len()) as f64
}

fn means(m: &Matrix2, rows: &[usize], cols: &[usize]) -> (Vec<f64>, Vec<f64>, f64) {
    let mut row_means = vec![0.0; rows.len()];
    let mut col_means = vec![0.0; cols.len()];
    let mut mean = 0.0;
    for (ri, &r) in rows.iter().enumerate() {
        for (ci, &c) in cols.iter().enumerate() {
            let v = m.get(r, c);
            row_means[ri] += v;
            col_means[ci] += v;
            mean += v;
        }
    }
    for rm in &mut row_means {
        *rm /= cols.len() as f64;
    }
    for cm in &mut col_means {
        *cm /= rows.len() as f64;
    }
    mean /= (rows.len() * cols.len()) as f64;
    (row_means, col_means, mean)
}

/// Per-row residue contributions `d(i)`.
fn row_residues(m: &Matrix2, rows: &[usize], cols: &[usize]) -> Vec<f64> {
    let (row_means, col_means, mean) = means(m, rows, cols);
    rows.iter()
        .enumerate()
        .map(|(ri, &r)| {
            cols.iter()
                .enumerate()
                .map(|(ci, &c)| {
                    let v = m.get(r, c) - row_means[ri] - col_means[ci] + mean;
                    v * v
                })
                .sum::<f64>()
                / cols.len() as f64
        })
        .collect()
}

fn col_residues(m: &Matrix2, rows: &[usize], cols: &[usize]) -> Vec<f64> {
    let (row_means, col_means, mean) = means(m, rows, cols);
    cols.iter()
        .enumerate()
        .map(|(ci, &c)| {
            rows.iter()
                .enumerate()
                .map(|(ri, &r)| {
                    let v = m.get(r, c) - row_means[ri] - col_means[ci] + mean;
                    v * v
                })
                .sum::<f64>()
                / rows.len() as f64
        })
        .collect()
}

/// Runs one greedy deletion + addition pass on (a copy of) `m`, returning
/// the resulting bicluster.
pub fn find_one(m: &Matrix2, params: &CcParams) -> DeltaBicluster {
    let mut rows: Vec<usize> = (0..m.rows()).collect();
    let mut cols: Vec<usize> = (0..m.cols()).collect();

    // multiple node deletion
    loop {
        let h = mean_squared_residue(m, &rows, &cols);
        if h <= params.delta || rows.len() <= params.min_rows || cols.len() <= params.min_cols {
            break;
        }
        let before = (rows.len(), cols.len());
        let rres = row_residues(m, &rows, &cols);
        let keep_rows: Vec<usize> = rows
            .iter()
            .zip(&rres)
            .filter(|&(_, &d)| d <= params.alpha * h)
            .map(|(&r, _)| r)
            .collect();
        if keep_rows.len() >= params.min_rows {
            rows = keep_rows;
        }
        let h = mean_squared_residue(m, &rows, &cols);
        if h <= params.delta {
            break;
        }
        let cres = col_residues(m, &rows, &cols);
        let keep_cols: Vec<usize> = cols
            .iter()
            .zip(&cres)
            .filter(|&(_, &d)| d <= params.alpha * h)
            .map(|(&c, _)| c)
            .collect();
        if keep_cols.len() >= params.min_cols {
            cols = keep_cols;
        }
        if (rows.len(), cols.len()) == before {
            break; // multiple deletion stalled; fall through to single
        }
    }

    // single node deletion
    loop {
        let h = mean_squared_residue(m, &rows, &cols);
        if h <= params.delta || (rows.len() <= params.min_rows && cols.len() <= params.min_cols) {
            break;
        }
        let rres = row_residues(m, &rows, &cols);
        let cres = col_residues(m, &rows, &cols);
        let (worst_row, worst_row_d) = rres
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &d)| (i, d))
            .unwrap_or((0, 0.0));
        let (worst_col, worst_col_d) = cres
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &d)| (i, d))
            .unwrap_or((0, 0.0));
        if worst_row_d >= worst_col_d && rows.len() > params.min_rows {
            rows.remove(worst_row);
        } else if cols.len() > params.min_cols {
            cols.remove(worst_col);
        } else if rows.len() > params.min_rows {
            rows.remove(worst_row);
        } else {
            break;
        }
    }

    // node addition (one pass): add back rows/cols not raising the residue
    let h = mean_squared_residue(m, &rows, &cols);
    let (row_means_all, _, _) = means(m, &rows, &cols);
    let _ = row_means_all;
    for c in 0..m.cols() {
        if cols.contains(&c) {
            continue;
        }
        let mut trial = cols.clone();
        trial.push(c);
        trial.sort_unstable();
        if mean_squared_residue(m, &rows, &trial) <= h {
            cols = trial;
        }
    }
    for r in 0..m.rows() {
        if rows.contains(&r) {
            continue;
        }
        let mut trial = rows.clone();
        trial.push(r);
        trial.sort_unstable();
        if mean_squared_residue(m, &trial, &cols) <= h {
            rows = trial;
        }
    }

    let residue = mean_squared_residue(m, &rows, &cols);
    DeltaBicluster {
        rows,
        cols,
        residue,
    }
}

/// Extracts up to `n_clusters` δ-biclusters, masking each with random
/// values before searching for the next (the Cheng–Church protocol).
pub fn mine_delta_biclusters(m: &Matrix2, params: &CcParams) -> Vec<DeltaBicluster> {
    let mut work = m.clone();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut out = Vec::new();
    for _ in 0..params.n_clusters {
        let bc = find_one(&work, params);
        if bc.rows.len() < params.min_rows || bc.cols.len() < params.min_cols {
            break;
        }
        // mask the found bicluster
        for &r in &bc.rows {
            for &c in &bc.cols {
                work.set(
                    r,
                    c,
                    rng.gen_range(params.mask_range.0..=params.mask_range.1),
                );
            }
        }
        out.push(bc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An additive (shifting) block has zero residue.
    fn additive_block() -> Matrix2 {
        let mut rows = Vec::new();
        for r in 0..4 {
            let row: Vec<f64> = (0..5).map(|c| r as f64 * 2.0 + c as f64 * 3.0).collect();
            rows.push(row);
        }
        Matrix2::from_rows(&rows)
    }

    #[test]
    fn residue_zero_for_additive_pattern() {
        let m = additive_block();
        let rows: Vec<usize> = (0..4).collect();
        let cols: Vec<usize> = (0..5).collect();
        assert!(mean_squared_residue(&m, &rows, &cols) < 1e-18);
    }

    #[test]
    fn residue_positive_for_noise() {
        let m = Matrix2::from_rows(&[
            vec![1.0, 9.0, 2.0],
            vec![8.0, 0.5, 7.0],
            vec![3.0, 6.5, 1.5],
        ]);
        assert!(mean_squared_residue(&m, &[0, 1, 2], &[0, 1, 2]) > 1.0);
    }

    #[test]
    fn residue_of_empty_is_zero() {
        let m = additive_block();
        assert_eq!(mean_squared_residue(&m, &[], &[0]), 0.0);
    }

    #[test]
    fn finds_clean_block_in_noise() {
        // rows 0..3 / cols 0..3 additive; elsewhere large noise
        let mut rows = Vec::new();
        for r in 0..6 {
            let mut row = Vec::new();
            for c in 0..6 {
                if r < 3 && c < 3 {
                    row.push(r as f64 * 2.0 + c as f64);
                } else {
                    row.push(100.0 + ((r * 31 + c * 17) % 97) as f64 * 3.0);
                }
            }
            rows.push(row);
        }
        let m = Matrix2::from_rows(&rows);
        let bc = find_one(
            &m,
            &CcParams {
                delta: 0.01,
                ..Default::default()
            },
        );
        assert!(bc.residue <= 0.01, "residue {}", bc.residue);
        assert!(bc.rows.len() >= 2 && bc.cols.len() >= 2);
        // the clean block should be (a subset of) rows/cols 0..3
        assert!(bc.rows.iter().all(|&r| r < 3), "{bc:?}");
        assert!(bc.cols.iter().all(|&c| c < 3), "{bc:?}");
    }

    #[test]
    fn masking_yields_distinct_clusters() {
        // two disjoint clean blocks
        let mut rows = Vec::new();
        for r in 0..8 {
            let mut row = Vec::new();
            for c in 0..8 {
                let v = if r < 4 && c < 4 {
                    r as f64 + c as f64
                } else if r >= 4 && c >= 4 {
                    50.0 + r as f64 * 3.0 + c as f64 * 2.0
                } else {
                    1000.0 + ((r * 37 + c * 23) % 89) as f64 * 7.0
                };
                row.push(v);
            }
            rows.push(row);
        }
        let m = Matrix2::from_rows(&rows);
        let found = mine_delta_biclusters(
            &m,
            &CcParams {
                delta: 0.01,
                n_clusters: 2,
                mask_range: (0.0, 2000.0),
                ..Default::default()
            },
        );
        assert_eq!(found.len(), 2);
        // the two clusters should not coincide
        assert_ne!(
            (&found[0].rows, &found[0].cols),
            (&found[1].rows, &found[1].cols)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let m = additive_block();
        let p = CcParams::default();
        assert_eq!(mine_delta_biclusters(&m, &p), mine_delta_biclusters(&m, &p));
    }

    #[test]
    fn respects_minimum_shape() {
        let m = additive_block();
        let bc = find_one(
            &m,
            &CcParams {
                delta: 1e-12,
                min_rows: 3,
                min_cols: 4,
                ..Default::default()
            },
        );
        assert!(bc.rows.len() >= 3);
        assert!(bc.cols.len() >= 4);
    }
}
