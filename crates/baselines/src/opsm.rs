//! OPSM — order-preserving submatrices (Ben-Dor et al., RECOMB 2002),
//! the stochastic pattern-based competitor §3.3 discusses.
//!
//! An OPSM is a set of rows `R` and a *sequence* of columns `π = (c_1 … c_k)`
//! such that every row's values strictly increase along `π`. Ben-Dor's
//! algorithm grows *partial models* `(head, tail)` — the first and last
//! columns of the hypothetical order — keeping the `ℓ` best by supporting
//! row count at each size (a beam search). It is **not complete**: with a
//! narrow beam, high-support orders can be lost, which is exactly the
//! "cannot guarantee to find all the clusters" drawback the TriCluster
//! paper points out for this family. [`mine_opsm_exact`] provides the
//! exhaustive reference for small inputs so tests can demonstrate the gap.

use tricluster_bitset::BitSet;
use tricluster_matrix::Matrix2;

/// An order-preserving submatrix: supporting rows plus the column order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Opsm {
    /// Rows whose values strictly increase along `columns`.
    pub rows: BitSet,
    /// The column sequence (a permutation of a column subset).
    pub columns: Vec<usize>,
}

impl Opsm {
    /// Number of supporting rows.
    pub fn support(&self) -> usize {
        self.rows.count()
    }
}

/// Rows of `m` whose values strictly increase along `order`.
pub fn supporting_rows(m: &Matrix2, order: &[usize]) -> BitSet {
    let mut rows = BitSet::new(m.rows());
    'rows: for r in 0..m.rows() {
        for w in order.windows(2) {
            let (a, b) = (m.get(r, w[0]), m.get(r, w[1]));
            if !a.is_finite() || !b.is_finite() || a >= b {
                continue 'rows;
            }
        }
        rows.insert(r);
    }
    rows
}

/// Ben-Dor's partial-model beam search.
///
/// Grows models of size `2, 3, …, k` keeping the `beam` highest-support
/// models at each size; returns the best full models of size `k` with
/// support at least `min_rows` (sorted by support, descending).
pub fn mine_opsm_beam(m: &Matrix2, k: usize, beam: usize, min_rows: usize) -> Vec<Opsm> {
    let n_cols = m.cols();
    assert!(k >= 2, "an order needs at least two columns");
    assert!(beam >= 1, "beam width must be at least 1");
    if k > n_cols || m.rows() == 0 {
        return Vec::new();
    }
    // size-2 models: every ordered column pair
    let mut models: Vec<Opsm> = Vec::new();
    for a in 0..n_cols {
        for b in 0..n_cols {
            if a == b {
                continue;
            }
            let rows = supporting_rows(m, &[a, b]);
            if rows.count() >= min_rows {
                models.push(Opsm {
                    rows,
                    columns: vec![a, b],
                });
            }
        }
    }
    trim(&mut models, beam);

    // grow: append one unused column at the end or the front
    for _size in 3..=k {
        let mut next: Vec<Opsm> = Vec::new();
        for model in &models {
            for c in 0..n_cols {
                if model.columns.contains(&c) {
                    continue;
                }
                for place_front in [false, true] {
                    let mut cols = model.columns.clone();
                    if place_front {
                        cols.insert(0, c);
                    } else {
                        cols.push(c);
                    }
                    let rows = supporting_rows(m, &cols);
                    if rows.count() >= min_rows {
                        next.push(Opsm {
                            rows,
                            columns: cols,
                        });
                    }
                }
            }
        }
        // dedupe identical column sequences
        next.sort_by(|x, y| x.columns.cmp(&y.columns));
        next.dedup_by(|x, y| x.columns == y.columns);
        trim(&mut next, beam);
        models = next;
        if models.is_empty() {
            break;
        }
    }
    models.sort_by(|x, y| {
        y.support()
            .cmp(&x.support())
            .then_with(|| x.columns.cmp(&y.columns))
    });
    models
}

fn trim(models: &mut Vec<Opsm>, beam: usize) {
    models.sort_by(|x, y| {
        y.support()
            .cmp(&x.support())
            .then_with(|| x.columns.cmp(&y.columns))
    });
    models.truncate(beam);
}

/// Exhaustive reference: the highest-support column order of size `k`
/// (ties broken lexicographically). Enumerates all `P(n_cols, k)` orders —
/// use only for small matrices in tests.
pub fn mine_opsm_exact(m: &Matrix2, k: usize, min_rows: usize) -> Option<Opsm> {
    let n_cols = m.cols();
    assert!(k >= 2 && n_cols <= 8, "exact search limited to 8 columns");
    let mut best: Option<Opsm> = None;
    let mut order: Vec<usize> = Vec::with_capacity(k);
    fn recurse(
        m: &Matrix2,
        k: usize,
        min_rows: usize,
        order: &mut Vec<usize>,
        best: &mut Option<Opsm>,
    ) {
        if order.len() == k {
            let rows = supporting_rows(m, order);
            if rows.count() >= min_rows {
                let better = match best {
                    None => true,
                    Some(b) => {
                        rows.count() > b.support()
                            || (rows.count() == b.support() && order[..] < b.columns[..])
                    }
                };
                if better {
                    *best = Some(Opsm {
                        rows,
                        columns: order.clone(),
                    });
                }
            }
            return;
        }
        for c in 0..m.cols() {
            if order.contains(&c) {
                continue;
            }
            order.push(c);
            recurse(m, k, min_rows, order, best);
            order.pop();
        }
    }
    recurse(m, k, min_rows, &mut order, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 6x4: rows 0..=3 increase along (2, 0, 3, 1); rows 4, 5 are noise.
    fn fixture() -> Matrix2 {
        let mut rows = Vec::new();
        for r in 0..4 {
            // order (2,0,3,1): col2 < col0 < col3 < col1
            let base = r as f64 * 10.0;
            rows.push(vec![base + 2.0, base + 4.0, base + 1.0, base + 3.0]);
        }
        rows.push(vec![9.0, 1.0, 5.0, 2.0]);
        rows.push(vec![1.0, 2.0, 8.0, 0.5]);
        Matrix2::from_rows(&rows)
    }

    #[test]
    fn supporting_rows_checks_strict_increase() {
        let m = fixture();
        let rows = supporting_rows(&m, &[2, 0, 3, 1]);
        assert_eq!(rows.to_vec(), vec![0, 1, 2, 3]);
        // a constant pair is not strictly increasing
        let mut flat = Matrix2::zeros(1, 2);
        flat.set(0, 0, 1.0);
        flat.set(0, 1, 1.0);
        assert!(supporting_rows(&flat, &[0, 1]).is_empty());
    }

    #[test]
    fn beam_finds_planted_order() {
        let m = fixture();
        let found = mine_opsm_beam(&m, 4, 8, 3);
        assert!(!found.is_empty());
        assert_eq!(found[0].columns, vec![2, 0, 3, 1], "{found:?}");
        assert_eq!(found[0].support(), 4);
    }

    #[test]
    fn exact_matches_wide_beam() {
        let m = fixture();
        let exact = mine_opsm_exact(&m, 3, 1).unwrap();
        let beam = mine_opsm_beam(&m, 3, 64, 1);
        assert_eq!(beam[0].support(), exact.support());
    }

    /// The incompleteness §3.3 alludes to: a beam of 1 can lose the best
    /// full order when its size-2 prefix is not the top-supported pair.
    #[test]
    fn narrow_beam_can_miss_best_order() {
        // rows 0..=2 support (0,1,2); rows 0..=4 support pair (2,1) but no
        // size-3 extension. The greedy beam keeps (2,1) at size 2 — support
        // 5 beats (0,1)'s 3 — then fails to extend it.
        let mut rows = Vec::new();
        for r in 0..3 {
            let base = r as f64;
            rows.push(vec![base + 1.0, base + 2.0, base + 3.0]);
        }
        rows.push(vec![5.0, 9.0, 1.0]);
        rows.push(vec![6.0, 8.0, 2.0]);
        let m = Matrix2::from_rows(&rows);
        // pair supports: (0,1): 5 rows; (1,2): 3; (2,1): 2 ... check beam 1
        let narrow = mine_opsm_beam(&m, 3, 1, 1);
        let exact = mine_opsm_exact(&m, 3, 1).unwrap();
        let wide = mine_opsm_beam(&m, 3, 64, 1);
        assert_eq!(wide[0].support(), exact.support());
        // the property we document: narrow beams are permitted to be worse
        assert!(
            narrow.is_empty() || narrow[0].support() <= exact.support(),
            "beam never beats exact"
        );
    }

    #[test]
    fn min_rows_prunes() {
        let m = fixture();
        assert!(mine_opsm_beam(&m, 4, 8, 5).is_empty());
        assert!(mine_opsm_exact(&m, 4, 5).is_none());
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Matrix2::zeros(0, 4);
        assert!(mine_opsm_beam(&empty, 2, 4, 1).is_empty());
        let m = fixture();
        assert!(mine_opsm_beam(&m, 9, 4, 1).is_empty(), "k > columns");
    }

    #[test]
    #[should_panic(expected = "at least two columns")]
    fn k_one_panics() {
        mine_opsm_beam(&fixture(), 1, 4, 1);
    }

    #[test]
    fn nan_rows_never_support() {
        let mut m = Matrix2::zeros(2, 2);
        m.set(0, 0, f64::NAN);
        m.set(0, 1, 1.0);
        m.set(1, 0, 0.0);
        m.set(1, 1, 1.0);
        assert_eq!(supporting_rows(&m, &[0, 1]).to_vec(), vec![1]);
    }
}
