//! xMotif (Murali & Kasif, PSB 2003) — conserved gene expression motifs,
//! the Monte Carlo competitor §3.3 discusses.
//!
//! An xMotif is a set of genes and a set of samples such that every gene is
//! in the same *state* across those samples; following the usual practical
//! instantiation, a gene is conserved over a sample set when its values
//! there span at most `alpha` (an interval width). Mining is randomized:
//! repeatedly pick a *seed* sample and a small *discriminating set* of
//! samples, collect the genes conserved across them, then keep the motif
//! covering the most cells. Because of the random sampling it "cannot
//! guarantee to find all the clusters" — the drawback the TriCluster paper
//! notes — which `randomness_affects_results` demonstrates.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tricluster_bitset::BitSet;
use tricluster_matrix::Matrix2;

/// One mined motif.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XMotif {
    /// Conserved genes.
    pub genes: BitSet,
    /// The samples the genes are conserved across (seed + discriminating
    /// set + all other samples that keep every gene conserved).
    pub samples: Vec<usize>,
}

impl XMotif {
    /// Covered cells.
    pub fn size(&self) -> usize {
        self.genes.count() * self.samples.len()
    }
}

/// Parameters for [`mine_xmotifs`].
#[derive(Debug, Clone, Copy)]
pub struct XMotifParams {
    /// Maximum value spread for a gene to count as conserved.
    pub alpha: f64,
    /// Discriminating-set size (samples drawn besides the seed).
    pub set_size: usize,
    /// Monte Carlo iterations.
    pub iterations: usize,
    /// Minimum genes for a motif to be kept.
    pub min_genes: usize,
    /// Minimum samples.
    pub min_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XMotifParams {
    fn default() -> Self {
        XMotifParams {
            alpha: 0.1,
            set_size: 2,
            iterations: 50,
            min_genes: 2,
            min_samples: 2,
            seed: 2003,
        }
    }
}

/// Is gene `g` conserved (spread ≤ alpha) over `samples`?
fn conserved(m: &Matrix2, g: usize, samples: &[usize], alpha: f64) -> bool {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &s in samples {
        let v = m.get(g, s);
        if !v.is_finite() {
            return false;
        }
        lo = lo.min(v);
        hi = hi.max(v);
    }
    hi - lo <= alpha
}

/// Runs the Monte Carlo search and returns the best motif found, if any
/// meets the minimum shape.
pub fn mine_xmotifs(m: &Matrix2, params: &XMotifParams) -> Option<XMotif> {
    let (n_genes, n_samples) = m.dims();
    if n_genes == 0 || n_samples == 0 {
        return None;
    }
    assert!(params.alpha >= 0.0, "alpha must be non-negative");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut best: Option<XMotif> = None;
    for _ in 0..params.iterations {
        // seed + discriminating set
        let mut pool: Vec<usize> = (0..n_samples).collect();
        pool.shuffle(&mut rng);
        let take = (1 + params.set_size).min(n_samples);
        let chosen: Vec<usize> = pool[..take].to_vec();
        let _ = rng.gen::<u32>(); // decorrelate iterations with equal pools

        // genes conserved across the chosen samples
        let genes: Vec<usize> = (0..n_genes)
            .filter(|&g| conserved(m, g, &chosen, params.alpha))
            .collect();
        if genes.len() < params.min_genes {
            continue;
        }
        // extend with every other sample that keeps all genes conserved
        let mut samples = chosen.clone();
        for s in 0..n_samples {
            if samples.contains(&s) {
                continue;
            }
            let mut trial = samples.clone();
            trial.push(s);
            if genes.iter().all(|&g| conserved(m, g, &trial, params.alpha)) {
                samples = trial;
            }
        }
        if samples.len() < params.min_samples {
            continue;
        }
        samples.sort_unstable();
        let motif = XMotif {
            genes: BitSet::from_indices(n_genes, genes),
            samples,
        };
        if best.as_ref().is_none_or(|b| motif.size() > b.size()) {
            best = Some(motif);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Genes 0..=3 hold near-constant values on samples 0..=3; the rest is
    /// spread out.
    fn fixture() -> Matrix2 {
        let mut rows = Vec::new();
        for g in 0..4 {
            let level = 1.0 + g as f64;
            let mut row: Vec<f64> = (0..4).map(|s| level + s as f64 * 0.01).collect();
            row.push(50.0 + g as f64 * 7.0); // sample 4 breaks conservation
            rows.push(row);
        }
        for g in 0..3 {
            let row: Vec<f64> = (0..5).map(|s| (g * 13 + s * 29) as f64 % 17.0).collect();
            rows.push(row);
        }
        Matrix2::from_rows(&rows)
    }

    #[test]
    fn finds_conserved_block() {
        let m = fixture();
        let motif = mine_xmotifs(
            &m,
            &XMotifParams {
                alpha: 0.05,
                iterations: 200,
                ..Default::default()
            },
        )
        .expect("motif found");
        assert_eq!(motif.genes.to_vec(), vec![0, 1, 2, 3], "{motif:?}");
        assert_eq!(motif.samples, vec![0, 1, 2, 3]);
    }

    #[test]
    fn conserved_respects_alpha() {
        let m = fixture();
        assert!(conserved(&m, 0, &[0, 1, 2, 3], 0.05));
        assert!(!conserved(&m, 0, &[0, 4], 0.05));
        assert!(!conserved(&m, 0, &[0, 1], 0.0), "0.01 spread > 0");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = fixture();
        let p = XMotifParams::default();
        assert_eq!(mine_xmotifs(&m, &p), mine_xmotifs(&m, &p));
    }

    /// The §3.3 drawback: results depend on the random draws — with few
    /// iterations, different seeds can find different (or no) motifs.
    #[test]
    fn randomness_affects_results() {
        let m = fixture();
        let outcomes: std::collections::HashSet<Option<usize>> = (0..12)
            .map(|seed| {
                mine_xmotifs(
                    &m,
                    &XMotifParams {
                        alpha: 0.05,
                        iterations: 1, // a single draw
                        seed,
                        ..Default::default()
                    },
                )
                .map(|motif| motif.size())
            })
            .collect();
        assert!(
            outcomes.len() > 1,
            "single-draw runs should disagree across seeds: {outcomes:?}"
        );
    }

    #[test]
    fn min_shape_enforced() {
        let m = fixture();
        assert!(mine_xmotifs(
            &m,
            &XMotifParams {
                alpha: 0.05,
                min_genes: 10,
                iterations: 50,
                ..Default::default()
            }
        )
        .is_none());
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix2::zeros(0, 0);
        assert!(mine_xmotifs(&m, &XMotifParams::default()).is_none());
    }
}
