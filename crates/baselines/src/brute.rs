//! Exact brute-force tricluster enumeration (correctness oracle).
//!
//! Enumerates **every** subset combination `X × Y × Z` of a (tiny) matrix,
//! keeps those that satisfy the paper's cluster definition — ratio
//! coherence within `ε`/`ε_time` (checked by
//! [`tricluster_core::validate::is_coherent_region`]), the `δ` range
//! thresholds, and the minimum sizes — and filters to maximal clusters.
//!
//! Complexity is `O(2^{n+m+l})` cells-checked, so this is strictly a test
//! oracle; the cross-check tests keep dimensions at or below `8 × 4 × 3`.

use tricluster_bitset::BitSet;
use tricluster_core::validate::{deltas_ok, is_coherent_region};
use tricluster_core::{Params, Tricluster};
use tricluster_matrix::Matrix3;

/// Enumerates all maximal valid triclusters of `m` under `params`, by
/// exhaustive search.
///
/// # Panics
/// Panics if any dimension exceeds 16 (the search would not terminate in
/// reasonable time).
pub fn mine_exhaustive(m: &Matrix3, params: &Params) -> Vec<Tricluster> {
    let (n, s, t) = m.dims();
    assert!(
        n <= 16 && s <= 16 && t <= 16,
        "brute-force oracle limited to 16 indices per dimension, got {:?}",
        m.dims()
    );
    let gene_subsets = subsets_of_size_at_least(n, params.min_genes);
    let sample_subsets = subsets_of_size_at_least(s, params.min_samples);
    let time_subsets = subsets_of_size_at_least(t, params.min_times);

    let mut results: Vec<Tricluster> = Vec::new();
    for genes_mask in &gene_subsets {
        let genes = BitSet::from_indices(n, bits(*genes_mask));
        for samples_mask in &sample_subsets {
            let samples: Vec<usize> = bits(*samples_mask).collect();
            for times_mask in &time_subsets {
                let times: Vec<usize> = bits(*times_mask).collect();
                if !is_coherent_region(
                    m,
                    &genes,
                    &samples,
                    &times,
                    params.epsilon,
                    params.epsilon_time,
                ) {
                    continue;
                }
                let candidate = Tricluster::new(genes.clone(), samples.clone(), times);
                if !deltas_ok(
                    m,
                    &candidate,
                    params.delta_gene,
                    params.delta_sample,
                    params.delta_time,
                ) {
                    continue;
                }
                insert_maximal(&mut results, candidate);
            }
        }
    }
    results.sort_by(|a, b| {
        a.genes
            .to_vec()
            .cmp(&b.genes.to_vec())
            .then_with(|| a.samples.cmp(&b.samples))
            .then_with(|| a.times.cmp(&b.times))
    });
    results
}

fn insert_maximal(results: &mut Vec<Tricluster>, candidate: Tricluster) {
    if results.iter().any(|c| candidate.is_subcluster_of(c)) {
        return;
    }
    results.retain(|c| !c.is_subcluster_of(&candidate));
    results.push(candidate);
}

fn subsets_of_size_at_least(n: usize, min: usize) -> Vec<u32> {
    (1u32..(1 << n))
        .filter(|mask| mask.count_ones() as usize >= min)
        .collect()
}

fn bits(mask: u32) -> impl Iterator<Item = usize> {
    (0..32).filter(move |i| mask & (1 << i) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(eps: f64, mx: usize, my: usize, mz: usize) -> Params {
        Params::builder()
            .epsilon(eps)
            .min_genes(mx)
            .min_samples(my)
            .min_times(mz)
            .build()
            .unwrap()
    }

    /// A hand-built 4x3x2 matrix with one obvious scaling cluster.
    fn tiny() -> Matrix3 {
        let mut m = Matrix3::zeros(4, 3, 2);
        // genes 0,1 scale (factor 3) over samples 0..2, times 0..1
        for t in 0..2 {
            for s in 0..3 {
                let v = (s + 1) as f64 * (t + 1) as f64;
                m.set(0, s, t, v);
                m.set(1, s, t, 3.0 * v);
            }
        }
        // genes 2,3: arbitrary incoherent values
        let noise = [
            7.3, 11.9, 5.1, 13.7, 8.9, 10.3, 6.7, 12.1, 9.7, 5.9, 11.3, 7.9,
        ];
        let mut k = 0;
        for g in 2..4 {
            for s in 0..3 {
                for t in 0..2 {
                    m.set(g, s, t, noise[k]);
                    k += 1;
                }
            }
        }
        m
    }

    #[test]
    fn finds_the_embedded_cluster() {
        let m = tiny();
        let found = mine_exhaustive(&m, &params(0.001, 2, 2, 2));
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].genes.to_vec(), vec![0, 1]);
        assert_eq!(found[0].samples, vec![0, 1, 2]);
        assert_eq!(found[0].times, vec![0, 1]);
    }

    #[test]
    fn results_are_maximal() {
        let m = tiny();
        let found = mine_exhaustive(&m, &params(0.001, 2, 2, 1));
        for (i, a) in found.iter().enumerate() {
            for (j, b) in found.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subcluster_of(b), "{a:?} ⊆ {b:?}");
                }
            }
        }
    }

    #[test]
    fn min_size_filters() {
        let m = tiny();
        assert!(mine_exhaustive(&m, &params(0.001, 3, 2, 2)).is_empty());
        assert!(mine_exhaustive(&m, &params(0.001, 2, 4, 2)).is_empty());
    }

    #[test]
    fn delta_thresholds_respected() {
        let m = tiny();
        let p = Params::builder()
            .epsilon(0.001)
            .min_genes(2)
            .min_samples(2)
            .min_times(2)
            .delta_sample(1.0) // gene 1 spans 3..9 over samples -> killed
            .build()
            .unwrap();
        assert!(mine_exhaustive(&m, &p).is_empty());
    }

    #[test]
    #[should_panic(expected = "limited to 16")]
    fn too_large_matrix_panics() {
        let m = Matrix3::zeros(20, 3, 2);
        mine_exhaustive(&m, &params(0.01, 2, 2, 2));
    }

    #[test]
    fn uniform_matrix_is_one_cluster() {
        let mut m = Matrix3::zeros(3, 3, 2);
        m.map_in_place(|_| 4.2);
        let found = mine_exhaustive(&m, &params(0.0, 2, 2, 2));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].span_size(), 18);
    }
}
