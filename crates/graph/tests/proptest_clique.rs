//! Property tests: Bron–Kerbosch output vs the definition of a maximal
//! clique, on random graphs.

use proptest::prelude::*;
use tricluster_graph::{maximal_cliques, Graph};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..11).prop_flat_map(|n| {
        let n_pairs = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::ANY, n_pairs).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if bits[k] {
                        g.add_edge(u, v);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

fn is_clique(g: &Graph, members: &[usize]) -> bool {
    members
        .iter()
        .enumerate()
        .all(|(i, &u)| members[i + 1..].iter().all(|&v| g.has_edge(u, v)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_output_is_a_maximal_clique(g in arb_graph()) {
        let cliques = maximal_cliques(&g);
        for c in &cliques {
            prop_assert!(is_clique(&g, c), "not a clique: {c:?}");
            // maximality: no vertex outside is adjacent to all members
            let maximal = (0..g.vertex_count())
                .filter(|v| !c.contains(v))
                .all(|v| !c.iter().all(|&u| g.has_edge(u, v)));
            prop_assert!(maximal, "not maximal: {c:?}");
        }
    }

    #[test]
    fn every_vertex_appears_in_some_clique(g in arb_graph()) {
        let cliques = maximal_cliques(&g);
        for v in 0..g.vertex_count() {
            prop_assert!(
                cliques.iter().any(|c| c.contains(&v)),
                "vertex {v} missing from all cliques"
            );
        }
    }

    #[test]
    fn no_duplicate_cliques(g in arb_graph()) {
        let cliques = maximal_cliques(&g);
        let mut sorted = cliques.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), cliques.len());
    }

    #[test]
    fn matches_exhaustive_enumeration(g in arb_graph()) {
        let n = g.vertex_count();
        let mut brute: Vec<Vec<usize>> = Vec::new();
        for mask in 1u32..(1 << n) {
            let members: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            if !is_clique(&g, &members) {
                continue;
            }
            let maximal = (0..n)
                .filter(|v| !members.contains(v))
                .all(|v| !members.iter().all(|&u| g.has_edge(u, v)));
            if maximal {
                brute.push(members);
            }
        }
        brute.sort();
        prop_assert_eq!(maximal_cliques(&g), brute);
    }

    #[test]
    fn degeneracy_bounds_max_clique(g in arb_graph()) {
        let (_, d) = g.degeneracy_ordering();
        for c in maximal_cliques(&g) {
            prop_assert!(
                c.len() <= d + 1,
                "clique of size {} exceeds degeneracy {} + 1",
                c.len(),
                d
            );
        }
    }
}
