//! Simple undirected graph over a fixed vertex set.

use tricluster_bitset::BitSet;

/// An undirected graph over vertices `0..n`, stored as per-vertex adjacency
/// bitsets (the representation Bron–Kerbosch wants).
///
/// Self-loops are ignored; adding an edge twice is a no-op.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    adjacency: Vec<BitSet>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adjacency: (0..n).map(|_| BitSet::new(n)).collect(),
            edge_count: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if newly added;
    /// self-loops return `false` and are not stored.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range for {} vertices",
            self.n
        );
        if u == v {
            return false;
        }
        let added = self.adjacency[u].insert(v);
        self.adjacency[v].insert(u);
        if added {
            self.edge_count += 1;
        }
        added
    }

    /// `true` iff `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && self.adjacency[u].contains(v)
    }

    /// The neighbor set of `v`.
    pub fn neighbors(&self, v: usize) -> &BitSet {
        &self.adjacency[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].count()
    }

    /// Enumerates all maximal cliques; see [`crate::maximal_cliques`].
    pub fn maximal_cliques(&self) -> Vec<Vec<usize>> {
        crate::maximal_cliques(self)
    }

    /// A degeneracy ordering of the vertices (repeatedly remove a
    /// minimum-degree vertex), along with the degeneracy (the largest degree
    /// seen at removal time).
    ///
    /// Used to linearize the outer level of Bron–Kerbosch, which bounds the
    /// recursion by the graph's degeneracy rather than its max degree.
    pub fn degeneracy_ordering(&self) -> (Vec<usize>, usize) {
        let n = self.n;
        let mut degree: Vec<usize> = (0..n).map(|v| self.degree(v)).collect();
        let mut removed = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut degeneracy = 0;
        // simple O(n^2) selection; n here is samples/biclusters (small)
        for _ in 0..n {
            let v = (0..n)
                .filter(|&v| !removed[v])
                .min_by_key(|&v| degree[v])
                .expect("vertex remains");
            degeneracy = degeneracy.max(degree[v]);
            removed[v] = true;
            order.push(v);
            for u in self.adjacency[v].iter() {
                if !removed[u] {
                    degree[u] -= 1;
                }
            }
        }
        (order, degeneracy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate edge not re-added");
        assert!(!g.add_edge(2, 2), "self loop rejected");
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Graph::new(2).add_edge(0, 5);
    }

    #[test]
    fn neighbors_bitset() {
        let mut g = Graph::new(5);
        g.add_edge(2, 0);
        g.add_edge(2, 4);
        assert_eq!(g.neighbors(2).to_vec(), vec![0, 4]);
        assert_eq!(g.neighbors(1).to_vec(), Vec::<usize>::new());
    }

    #[test]
    fn degeneracy_of_path_is_one() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let (order, d) = g.degeneracy_ordering();
        assert_eq!(order.len(), 4);
        assert_eq!(d, 1);
    }

    #[test]
    fn degeneracy_of_complete_graph() {
        let mut g = Graph::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        let (_, d) = g.degeneracy_ordering();
        assert_eq!(d, 4);
    }
}
