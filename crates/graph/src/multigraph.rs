//! Directed multigraph with payload-carrying parallel edges.

/// A reference to one edge of a [`MultiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef<'a, E> {
    /// Source vertex.
    pub from: usize,
    /// Destination vertex.
    pub to: usize,
    /// Position of this edge among the parallel edges of `(from, to)`.
    pub index: usize,
    /// Borrowed edge payload.
    pub payload: &'a E,
}

/// A directed multigraph over vertices `0..n` whose edges carry payloads of
/// type `E`.
///
/// Parallel edges between the same ordered pair are kept in insertion order.
/// In the range multigraph, `E` is a ratio range plus its gene-set, vertices
/// are sample columns, and edges always go from the lower-numbered column to
/// the higher one (`a < b`), matching the paper's construction.
#[derive(Debug, Clone)]
pub struct MultiGraph<E> {
    n: usize,
    /// `edges[a]` holds `(b, payloads)` lists sorted by `b`.
    adjacency: Vec<Vec<(usize, Vec<E>)>>,
    edge_count: usize,
}

impl<E> MultiGraph<E> {
    /// Creates a multigraph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        MultiGraph {
            n,
            adjacency: (0..n).map(|_| Vec::new()).collect(),
            edge_count: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Total number of edges (counting parallel edges individually).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds an edge `from -> to` with the given payload. Parallel edges are
    /// allowed and preserved in insertion order.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, payload: E) {
        assert!(
            from < self.n && to < self.n,
            "edge ({from},{to}) out of range for {} vertices",
            self.n
        );
        let list = &mut self.adjacency[from];
        match list.binary_search_by_key(&to, |(b, _)| *b) {
            Ok(i) => list[i].1.push(payload),
            Err(i) => list.insert(i, (to, vec![payload])),
        }
        self.edge_count += 1;
    }

    /// Adds every payload yielded by `payloads` as parallel edges
    /// `from -> to`, preserving iteration order — one adjacency search for
    /// the whole batch instead of one per edge (the range-graph absorb step
    /// inserts dozens of parallel edges per column pair).
    ///
    /// An empty batch inserts nothing: no adjacency entry is created, so
    /// [`MultiGraph::has_edge`] stays `false` exactly as if `add_edge` had
    /// never been called.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edges_between<I: IntoIterator<Item = E>>(
        &mut self,
        from: usize,
        to: usize,
        payloads: I,
    ) -> usize {
        assert!(
            from < self.n && to < self.n,
            "edge ({from},{to}) out of range for {} vertices",
            self.n
        );
        let mut payloads = payloads.into_iter().peekable();
        if payloads.peek().is_none() {
            return 0;
        }
        let list = &mut self.adjacency[from];
        let slot = match list.binary_search_by_key(&to, |(b, _)| *b) {
            Ok(i) => &mut list[i].1,
            Err(i) => {
                list.insert(i, (to, Vec::new()));
                &mut list[i].1
            }
        };
        let before = slot.len();
        slot.extend(payloads);
        let added = slot.len() - before;
        self.edge_count += added;
        added
    }

    /// The parallel edges from `from` to `to` (empty slice when none).
    pub fn edges_between(&self, from: usize, to: usize) -> &[E] {
        if from >= self.n {
            return &[];
        }
        match self.adjacency[from].binary_search_by_key(&to, |(b, _)| *b) {
            Ok(i) => &self.adjacency[from][i].1,
            Err(_) => &[],
        }
    }

    /// `true` iff at least one edge `from -> to` exists.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        !self.edges_between(from, to).is_empty()
    }

    /// Iterates over all out-neighbors of `v` (each once, regardless of edge
    /// multiplicity), in ascending order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjacency.get(v).into_iter().flatten().map(|(b, _)| *b)
    }

    /// Iterates over every edge of the graph as [`EdgeRef`]s.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(a, list)| {
            list.iter().flat_map(move |(b, payloads)| {
                payloads.iter().enumerate().map(move |(i, p)| EdgeRef {
                    from: a,
                    to: *b,
                    index: i,
                    payload: p,
                })
            })
        })
    }

    /// Out-degree of `v` counting parallel edges.
    pub fn out_degree(&self, v: usize) -> usize {
        self.adjacency
            .get(v)
            .map_or(0, |l| l.iter().map(|(_, p)| p.len()).sum())
    }

    /// Removes all edges `from -> to`, returning their payloads.
    pub fn remove_edges_between(&mut self, from: usize, to: usize) -> Vec<E> {
        if from >= self.n {
            return Vec::new();
        }
        match self.adjacency[from].binary_search_by_key(&to, |(b, _)| *b) {
            Ok(i) => {
                let (_, payloads) = self.adjacency[from].remove(i);
                self.edge_count -= payloads.len();
                payloads
            }
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g: MultiGraph<u32> = MultiGraph::new(3);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.neighbors(0).count(), 0);
    }

    #[test]
    fn parallel_edges_preserved_in_order() {
        let mut g = MultiGraph::new(4);
        g.add_edge(0, 2, "first");
        g.add_edge(0, 2, "second");
        g.add_edge(0, 1, "other");
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edges_between(0, 2), &["first", "second"]);
        assert_eq!(g.edges_between(0, 1), &["other"]);
        assert_eq!(g.edges_between(2, 0), &[] as &[&str], "directed");
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.out_degree(1), 0);
    }

    #[test]
    fn neighbors_sorted_unique() {
        let mut g = MultiGraph::new(5);
        g.add_edge(1, 4, ());
        g.add_edge(1, 2, ());
        g.add_edge(1, 4, ());
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn add_edges_between_matches_repeated_add_edge() {
        let mut batch = MultiGraph::new(4);
        let mut single = MultiGraph::new(4);
        for p in [1, 2, 3] {
            single.add_edge(0, 2, p);
        }
        single.add_edge(0, 1, 9);
        assert_eq!(batch.add_edges_between(0, 2, [1, 2, 3]), 3);
        assert_eq!(batch.add_edges_between(0, 1, [9]), 1);
        assert_eq!(batch.edge_count(), single.edge_count());
        assert_eq!(batch.edges_between(0, 2), single.edges_between(0, 2));
        assert_eq!(batch.edges_between(0, 1), single.edges_between(0, 1));
        // Appending to an existing pair keeps insertion order.
        assert_eq!(batch.add_edges_between(0, 2, [4]), 1);
        assert_eq!(batch.edges_between(0, 2), &[1, 2, 3, 4]);
    }

    #[test]
    fn add_edges_between_empty_batch_creates_nothing() {
        let mut g: MultiGraph<u32> = MultiGraph::new(3);
        assert_eq!(g.add_edges_between(0, 1, std::iter::empty()), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(0, 1), "no empty adjacency entry left behind");
        assert_eq!(g.neighbors(0).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edges_between_out_of_range_panics() {
        let mut g: MultiGraph<()> = MultiGraph::new(2);
        g.add_edges_between(0, 5, [()]);
    }

    #[test]
    fn edges_iterator_visits_all() {
        let mut g = MultiGraph::new(3);
        g.add_edge(0, 1, 10);
        g.add_edge(0, 1, 20);
        g.add_edge(1, 2, 30);
        let mut seen: Vec<(usize, usize, usize, i32)> = g
            .edges()
            .map(|e| (e.from, e.to, e.index, *e.payload))
            .collect();
        seen.sort();
        assert_eq!(seen, vec![(0, 1, 0, 10), (0, 1, 1, 20), (1, 2, 0, 30)]);
    }

    #[test]
    fn remove_edges_between_returns_payloads() {
        let mut g = MultiGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 1, 2);
        g.add_edge(0, 2, 3);
        let removed = g.remove_edges_between(0, 1);
        assert_eq!(removed, vec![1, 2]);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.remove_edges_between(0, 1).is_empty());
        assert!(g.remove_edges_between(99, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g: MultiGraph<()> = MultiGraph::new(2);
        g.add_edge(0, 2, ());
    }

    #[test]
    fn out_of_range_queries_are_empty() {
        let g: MultiGraph<()> = MultiGraph::new(2);
        assert!(g.edges_between(5, 0).is_empty());
        assert_eq!(g.neighbors(5).count(), 0);
        assert_eq!(g.out_degree(5), 0);
    }
}
