//! Graph substrate for TriCluster: a directed weighted multigraph and
//! maximal-clique enumeration.
//!
//! TriCluster's first phase compresses each time slice into a *range
//! multigraph*: vertices are sample columns and each valid ratio range
//! between a column pair becomes a parallel edge carrying its gene-set.
//! [`MultiGraph`] stores exactly that shape — ordered vertex pairs with any
//! number of payload-carrying parallel edges — without committing to the
//! payload type.
//!
//! [`Graph`] is a simple undirected graph with [Bron–Kerbosch maximal clique
//! enumeration](Graph::maximal_cliques) (pivoting + degeneracy ordering at the
//! outer level). The TriCluster miner itself uses a *constrained* clique
//! search specialized to the range multigraph (in `tricluster-core`), but the
//! generic enumerator is used by the baselines and by tests that cross-check
//! the specialized search.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clique;
mod multigraph;
mod simple;

pub use clique::maximal_cliques;
pub use multigraph::{EdgeRef, MultiGraph};
pub use simple::Graph;
