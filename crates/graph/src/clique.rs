//! Maximal clique enumeration (Bron–Kerbosch with pivoting).

use crate::Graph;
use tricluster_bitset::BitSet;

/// Enumerates all maximal cliques of `g`.
///
/// Uses Bron–Kerbosch with pivot selection (Tomita et al.) and a degeneracy
/// ordering at the outermost level, which gives `O(d · n · 3^{d/3})` time for
/// a graph of degeneracy `d`. Every returned clique is sorted ascending;
/// isolated vertices are returned as singleton cliques.
///
/// In this workspace the enumerator is used by the baselines and by tests
/// that cross-check TriCluster's constrained clique search; the graphs it
/// sees (samples, time points, biclusters) are small.
pub fn maximal_cliques(g: &Graph) -> Vec<Vec<usize>> {
    let n = g.vertex_count();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    let (order, _) = g.degeneracy_ordering();
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v] = i;
    }

    let mut r: Vec<usize> = Vec::new();
    for &v in &order {
        // P = later neighbors, X = earlier neighbors (w.r.t. the ordering)
        let mut p = BitSet::new(n);
        let mut x = BitSet::new(n);
        for u in g.neighbors(v).iter() {
            if position[u] > position[v] {
                p.insert(u);
            } else {
                x.insert(u);
            }
        }
        r.push(v);
        bron_kerbosch_pivot(g, &mut r, p, x, &mut out);
        r.pop();
    }
    for clique in &mut out {
        clique.sort_unstable();
    }
    out.sort();
    out
}

fn bron_kerbosch_pivot(
    g: &Graph,
    r: &mut Vec<usize>,
    p: BitSet,
    mut x: BitSet,
    out: &mut Vec<Vec<usize>>,
) {
    if p.is_empty() && x.is_empty() {
        out.push(r.clone());
        return;
    }
    // pivot u from P ∪ X maximizing |P ∩ N(u)|
    let pivot = p
        .iter()
        .chain(x.iter())
        .max_by_key(|&u| p.intersection_count(g.neighbors(u)))
        .expect("P ∪ X nonempty");
    let mut candidates = p.clone();
    candidates.subtract_with(g.neighbors(pivot));

    let mut p = p;
    for v in candidates.iter() {
        let nv = g.neighbors(v);
        let new_p = p.intersection(nv);
        let new_x = x.intersection(nv);
        r.push(v);
        bron_kerbosch_pivot(g, r, new_p, new_x, out);
        r.pop();
        p.remove(v);
        x.insert(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> Graph {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn empty_graph_has_no_cliques() {
        let g = Graph::new(0);
        assert!(maximal_cliques(&g).is_empty());
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = Graph::new(3);
        assert_eq!(maximal_cliques(&g), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn single_edge() {
        let g = graph_from_edges(2, &[(0, 1)]);
        assert_eq!(maximal_cliques(&g), vec![vec![0, 1]]);
    }

    #[test]
    fn triangle_plus_pendant() {
        // triangle 0-1-2 and pendant 3 attached to 2
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(maximal_cliques(&g), vec![vec![0, 1, 2], vec![2, 3]]);
    }

    #[test]
    fn complete_graph_single_clique() {
        let mut g = Graph::new(6);
        for u in 0..6 {
            for v in (u + 1)..6 {
                g.add_edge(u, v);
            }
        }
        assert_eq!(maximal_cliques(&g), vec![(0..6).collect::<Vec<_>>()]);
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        assert_eq!(maximal_cliques(&g), vec![vec![0, 1, 2], vec![2, 3, 4]]);
    }

    #[test]
    fn cycle_of_four_has_four_edges_as_cliques() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(
            maximal_cliques(&g),
            vec![vec![0, 1], vec![0, 3], vec![1, 2], vec![2, 3]]
        );
    }

    /// Brute-force reference: check every subset for maximal-clique-ness.
    fn brute_force(g: &Graph) -> Vec<Vec<usize>> {
        let n = g.vertex_count();
        let is_clique = |s: &[usize]| {
            s.iter()
                .enumerate()
                .all(|(i, &u)| s[i + 1..].iter().all(|&v| g.has_edge(u, v)))
        };
        let mut cliques = Vec::new();
        for mask in 1u32..(1 << n) {
            let members: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            if !is_clique(&members) {
                continue;
            }
            let maximal = (0..n)
                .filter(|i| !members.contains(i))
                .all(|v| !members.iter().all(|&u| g.has_edge(u, v)));
            if maximal {
                cliques.push(members);
            }
        }
        cliques.sort();
        cliques
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        // deterministic pseudo-random graphs via a simple LCG
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let n = 3 + (trial % 8); // up to 10 vertices
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if next() % 100 < 45 {
                        g.add_edge(u, v);
                    }
                }
            }
            assert_eq!(
                maximal_cliques(&g),
                brute_force(&g),
                "mismatch on trial {trial} (n={n})"
            );
        }
    }
}
