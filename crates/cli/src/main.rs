//! `tricluster` — command-line TriCluster mining.
//!
//! ```text
//! tricluster mine <stacked.tsv> [--eps 0.01] [--eps-time E] [--mx 3] [--my 3]
//!                 [--mz 2] [--delta-x D] [--delta-y D] [--delta-z D]
//!                 [--merge ETA GAMMA] [--threads N] [--shifting] [--auto]
//!                 [--deadline SECS] [--max-memory BYTES]
//!                 [--names] [-v|-vv] [--trace] [--report-json out.json]
//! tricluster synth <out.tsv> [--genes 1000] [--samples 15] [--times 8]
//!                 [--clusters 8] [--noise 0.03] [--overlap 0.2] [--seed 42]
//! tricluster demo
//! tricluster runs <list|show|diff|top> <LEDGER-DIR> ...
//! tricluster watch <URL> [--interval SECS] [--once] [--get PATH] [--jobs]
//! tricluster serve <HOST:PORT> [--workers N] [--queue-depth N]
//!                 [--memory-budget BYTES] [--cap-deadline SECS]
//!                 [--cap-memory BYTES] [--cap-candidates N] [--cap-threads N]
//!                 [--max-body BYTES] [--ledger DIR] [--cache-entries N]
//! tricluster submit <URL> <stacked.tsv> [mine param flags] [--label L]
//!                 [--by-path] [--wait] [--poll SECS] [--report-json out.json]
//! tricluster submit <URL> --cancel ID | --shutdown drain|cancel
//! ```
//!
//! Exit codes: `0` success, `1` mining/runtime error (unreadable input,
//! non-finite cells, escaped panic), `2` usage error (unknown flag, invalid
//! parameter value).

use std::io::Write;
use std::process::ExitCode;

mod args;
mod commands;
mod serve;

use commands::CliError;

/// With `--features track-alloc`, route every heap allocation through the
/// byte-accounting allocator so run reports carry measured
/// `memory.alloc.*` counters (total bytes/calls, peak live bytes).
#[cfg(feature = "track-alloc")]
#[global_allocator]
static ALLOC: tricluster_core::obs::alloc::TrackingAlloc =
    tricluster_core::obs::alloc::TrackingAlloc;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Run(msg)) => {
            let _ = writeln!(std::io::stderr(), "error: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(msg)) => {
            let _ = writeln!(std::io::stderr(), "usage error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<(), CliError> {
    match argv.first().map(String::as_str) {
        Some("mine") => commands::mine(&argv[1..]),
        Some("synth") => commands::synth(&argv[1..]),
        Some("demo") => commands::demo(&argv[1..]),
        Some("runs") => commands::runs(&argv[1..]),
        Some("watch") => commands::watch(&argv[1..]),
        Some("serve") => serve::serve(&argv[1..]),
        Some("submit") => serve::submit(&argv[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?}; run `tricluster --help`"
        ))),
    }
}
