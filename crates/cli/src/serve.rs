//! The `tricluster serve` daemon and its `submit` client.
//!
//! `serve` turns the one-shot miner into a long-lived multi-tenant
//! service on top of [`Engine`]/[`Session`] (core) and [`HttpServer`]
//! (obs). The headline property is robustness: no single job — oversized
//! matrix, panicking worker, blown budget, vanished client — can take
//! down or contaminate the others.
//!
//! # Endpoints
//!
//! | endpoint | effect |
//! |---|---|
//! | `POST /jobs` | submit a job (JSON body, dataset inline or by path) |
//! | `GET /jobs` | list all retained jobs |
//! | `GET /jobs/<id>` | one job's status, live progress, final report |
//! | `DELETE /jobs/<id>` | cancel (dequeue if queued, trip mid-flight if running) |
//! | `GET /stats` | queue depth, admitted bytes, dataset-cache hits, counters |
//! | `GET /metrics` | daemon-lifetime OpenMetrics exposition (see below) |
//! | `GET /healthz` | liveness |
//! | `POST /shutdown` | graceful drain (`{"mode":"drain"}`) or cancel-all |
//!
//! # Observability
//!
//! A process-lifetime [`ServiceRegistry`] accumulates job-lifecycle
//! counters (accepted / rejected / clamped / completed / failed /
//! cancelled), queue-wait vs. run vs. archive latency histograms, and —
//! at scrape time — live gauges (queue depth, admitted bytes, busy
//! workers, retained jobs, dataset-cache hits/misses/evictions), exposed
//! as `GET /metrics`. Every HTTP request gets a monotonic request ID; with
//! `--access-log PATH` each request is appended as one JSONL audit record
//! (method, path, status, bytes, duration, clamp verdict, shed reason).
//! The submission's request ID is threaded into the job record, its
//! report (a `serve` section, outside the deterministic sections), its
//! ledger entry, and its Chrome trace — which also carries the job's
//! enqueued/started/finished lifecycle instants, so queue wait is visible
//! on the trace. None of this feeds back into mining: a served job's
//! deterministic report sections stay byte-identical to a one-shot
//! `mine`.
//!
//! # Admission control
//!
//! A submission is rejected with a machine-readable JSON body when the
//! daemon is draining (503 `"draining"`), the bounded queue is full
//! (429 `"queue_full"`), or admitting the parsed matrix would exceed the
//! server-wide `--memory-budget` (429 `"memory_budget"`). Tenant budget
//! requests (deadline / max-memory / max-candidates / threads) are
//! clamped against the server's `--cap-*` ceilings; the response says so
//! (`"clamped": true`).
//!
//! # Isolation
//!
//! Every job runs behind its own `catch_unwind` (on top of the miner's
//! internal worker isolation): a panicking job becomes a structured
//! `"failed"` record and the worker thread moves on to the next job. The
//! HTTP layer adds its own isolation (handler panics → 500). The
//! `serve.*` failpoint sites ([`SERVE_FAILPOINTS`]) inject faults at the
//! admission decision, the enqueue step, the job spawn, and the response
//! write; the fault-injection suite proves each degrades into a
//! well-formed response without crossing job boundaries.

use crate::args;
use crate::commands::{mine_params_from, parse_bytes, CliError, HistogramTap};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tricluster_core::obs::httpd::{
    http_get_retry, http_post, Handler, HttpServer, Request, Response,
};
use tricluster_core::obs::json::Json;
use tricluster_core::obs::ledger::{content_hash, Ledger, NewEntry};
use tricluster_core::obs::names;
use tricluster_core::obs::progress::{Progress, ProgressSink};
use tricluster_core::obs::service::ServiceRegistry;
use tricluster_core::obs::timeline::{self, Timeline};
use tricluster_core::obs::{EventSink, Fanout};
use tricluster_core::runreport;
use tricluster_core::{
    cluster_metrics_observed, CancelHandle, Dataset, Engine, MineError, Params, TenantCaps,
};

/// Fault-injection sites of the serve layer, in request order. (The
/// `serve.response.write` site lives in `obs::httpd`; the rest are here.)
///
/// | site | unit | on `Error` action |
/// |---|---|---|
/// | `serve.admission` | admission decision | structured 503, job rejected |
/// | `serve.queue` | enqueue step | structured 503, job rejected |
/// | `serve.job.spawn` | one job's execution | structured failed-job record |
/// | `serve.response.write` | one HTTP response | response lost, daemon serves on |
#[cfg_attr(not(test), allow(dead_code))] // release builds compile the sites out
pub const SERVE_FAILPOINTS: &[&str] = &[
    "serve.admission",
    "serve.queue",
    "serve.job.spawn",
    "serve.response.write",
];

/// How many finished (done/failed/cancelled) jobs the daemon retains for
/// `GET /jobs/<id>` before evicting the oldest.
const KEEP_FINISHED: usize = 64;

/// Daemon configuration, assembled from the `serve` command line.
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0`.
    pub addr: String,
    /// Mining worker threads (concurrent jobs).
    pub workers: usize,
    /// Most jobs waiting in the queue (running jobs don't count).
    pub queue_depth: usize,
    /// Aggregate logical-bytes budget across queued + running matrices.
    pub memory_budget: Option<u64>,
    /// Server-wide ceilings clamped onto every job's requested budgets.
    pub caps: TenantCaps,
    /// Largest accepted request body (inline datasets).
    pub max_body: usize,
    /// Archive finished jobs into this run ledger.
    pub ledger_dir: Option<String>,
    /// Parsed datasets retained by the content-hash cache.
    pub cache_entries: usize,
    /// Append one JSONL audit record per HTTP request to this file.
    pub access_log: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 16,
            memory_budget: None,
            caps: TenantCaps::unlimited(),
            max_body: 64 << 20,
            ledger_dir: None,
            cache_entries: 8,
            access_log: None,
        }
    }
}

/// How `POST /shutdown` treats in-flight jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShutdownMode {
    /// Stop admitting, finish queued + running jobs, then exit.
    Drain,
    /// Stop admitting, cancel queued + running jobs, then exit.
    Cancel,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn is_finished(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// What a finished job left behind.
struct Outcome {
    clusters: usize,
    truncation: Option<String>,
    error: Option<String>,
    secs: f64,
    report: Option<Json>,
}

/// One tenant job, from admission to retention.
struct Job {
    id: u64,
    /// Request ID of the submission that admitted this job.
    request_id: u64,
    label: String,
    dataset_hash: String,
    matrix_bytes: u64,
    cached: bool,
    clamped: bool,
    state: JobState,
    cancelling: bool,
    cancel: CancelHandle,
    progress: Arc<Progress>,
    /// Lifecycle instants (enqueued/started/finished/cancelled) plus the
    /// miner's own spans; archived as the job's Chrome trace.
    timeline: Arc<Timeline>,
    // Held only while queued/running; dropped with the job's completion
    // so finished jobs stop pinning their matrices.
    dataset: Option<Arc<Dataset>>,
    params: Option<Params>,
    submitted: Instant,
    outcome: Option<Outcome>,
}

impl Job {
    /// Listing summary (no report body).
    fn summary_json(&self) -> Json {
        let mut j = Json::obj()
            .with("id", Json::U64(self.id))
            .with("request_id", Json::U64(self.request_id))
            .with("label", Json::Str(self.label.clone()))
            .with("state", Json::Str(self.state.as_str().into()))
            .with("dataset_hash", Json::Str(self.dataset_hash.clone()))
            .with("matrix_bytes", Json::U64(self.matrix_bytes))
            .with("cached", Json::Bool(self.cached))
            .with("clamped", Json::Bool(self.clamped))
            .with(
                "age_secs",
                Json::F64(self.submitted.elapsed().as_secs_f64()),
            );
        if self.cancelling && !self.state.is_finished() {
            j = j.with("cancelling", Json::Bool(true));
        }
        if let Some(outcome) = &self.outcome {
            j = j.with("secs", Json::F64(outcome.secs));
            if let Some(err) = &outcome.error {
                j = j.with("error", Json::Str(err.clone()));
            } else {
                j = j.with("clusters", Json::U64(outcome.clusters as u64));
            }
            if let Some(reason) = &outcome.truncation {
                j = j.with("truncation", Json::Str(reason.clone()));
            }
        }
        j
    }
}

/// Mutable daemon state, all under one lock.
struct State {
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
    admitted_bytes: u64,
    draining: Option<ShutdownMode>,
}

struct Shared {
    cfg: ServeConfig,
    engine: Engine,
    // `Ledger::archive` reads the index to sequence ids, so concurrent
    // archives must serialize.
    ledger: Option<Mutex<Ledger>>,
    state: Mutex<State>,
    /// Daemon-lifetime counters and latency histograms (`GET /metrics`).
    /// Its locks are leaves: never take `state` while holding them.
    service: ServiceRegistry,
    /// Monotonic per-request IDs, assigned before routing.
    next_request_id: AtomicU64,
    /// JSONL audit sink (`--access-log`); whole-line single writes.
    access_log: Option<Mutex<std::fs::File>>,
    /// Wakes workers (new job, or drain requested).
    work: Condvar,
    /// Wakes the main thread (shutdown requested).
    shutdown: Condvar,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A running daemon: HTTP listener + mining workers.
pub struct Daemon {
    server: Option<HttpServer>,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listener, spawns the workers, and starts admitting jobs.
    pub fn start(cfg: ServeConfig) -> Result<Daemon, CliError> {
        let ledger = match &cfg.ledger_dir {
            Some(dir) => {
                Some(Mutex::new(Ledger::open(dir).map_err(|e| {
                    CliError::Run(format!("cannot open ledger {dir}: {e}"))
                })?))
            }
            None => None,
        };
        let access_log = match &cfg.access_log {
            Some(path) => {
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| CliError::Run(format!("cannot open access log {path}: {e}")))?;
                Some(Mutex::new(file))
            }
            None => None,
        };
        let engine = Engine::with_cache_entries(cfg.caps.clone(), cfg.cache_entries);
        let addr = cfg.addr.clone();
        let max_body = cfg.max_body;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            engine,
            ledger,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: BTreeMap::new(),
                next_id: 1,
                admitted_bytes: 0,
                draining: None,
            }),
            service: ServiceRegistry::new(),
            next_request_id: AtomicU64::new(1),
            access_log,
            work: Condvar::new(),
            shutdown: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| CliError::Run(format!("cannot spawn worker: {e}")))?;
            handles.push(handle);
        }
        let handler: Handler = {
            let shared = shared.clone();
            Arc::new(move |req| handle_request(&shared, req))
        };
        let server = HttpServer::serve(&addr, max_body, handler)
            .map_err(|e| CliError::Run(format!("cannot bind {addr}: {e}")))?;
        Ok(Daemon {
            server: Some(server),
            shared,
            workers: handles,
        })
    }

    /// Base URL of the bound listener.
    pub fn url(&self) -> String {
        self.server
            .as_ref()
            .expect("server runs until wait()")
            .url()
    }

    /// Blocks until a `POST /shutdown` arrives, then drains: workers are
    /// joined (they finish or cancel in-flight jobs per the shutdown
    /// mode; ledger entries are written eagerly as each job completes),
    /// and only then is the listener closed — status queries keep working
    /// through the drain.
    pub fn wait(mut self) {
        {
            let mut state = self.shared.lock();
            while state.draining.is_none() {
                state = self
                    .shared
                    .shutdown
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.server.take(); // drop: stop accepting, join the accept thread
    }
}

/// One mining worker: pull, run isolated, record, repeat. Exits once the
/// daemon drains and the queue is empty.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (id, request_id, dataset, params, cancel, progress, tl, queue_wait) = {
            let mut state = shared.lock();
            loop {
                if let Some(&id) = state.queue.front() {
                    state.queue.pop_front();
                    let job = state.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running;
                    let dataset = job.dataset.clone().expect("queued job holds its dataset");
                    let params = job.params.clone().expect("queued job holds its params");
                    break (
                        id,
                        job.request_id,
                        dataset,
                        params,
                        job.cancel.clone(),
                        job.progress.clone(),
                        job.timeline.clone(),
                        job.submitted.elapsed(),
                    );
                }
                if state.draining.is_some() {
                    return;
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        shared.service.observe(names::SV_QUEUE_WAIT, queue_wait);
        let started = Instant::now();
        // Per-job isolation: a panic anywhere in this job (including one
        // escaping the miner's own boundaries) is downgraded to a failed
        // record; the worker and every other job are untouched.
        let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(
                shared, id, request_id, &tl, &dataset, &params, &cancel, &progress,
            )
        }))
        .unwrap_or_else(|payload| Err(FailedJob::Panic(payload)));
        shared.service.observe(names::SV_RUN, started.elapsed());
        let outcome = match ran {
            Ok((clusters, truncation, report)) => Outcome {
                clusters,
                truncation,
                error: None,
                secs: started.elapsed().as_secs_f64(),
                report: Some(report),
            },
            Err(message) => Outcome {
                clusters: 0,
                truncation: None,
                error: Some(match message {
                    FailedJob::Message(m) => m,
                    FailedJob::Panic(payload) => format!(
                        "job panicked: {}",
                        payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into())
                    ),
                }),
                secs: started.elapsed().as_secs_f64(),
                report: None,
            },
        };
        finish_job(shared, id, outcome);
    }
}

/// Why a job produced no result.
enum FailedJob {
    Message(String),
    Panic(Box<dyn std::any::Any + Send>),
}

/// Runs one admitted job end to end: mine, metrics, v2 report. The sink
/// stack matches `mine --report-json` exactly (histograms on, progress
/// gauges live), so the deterministic report sections are byte-identical
/// to a one-shot run over the same dataset and params.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn run_job(
    shared: &Arc<Shared>,
    id: u64,
    request_id: u64,
    tl: &Arc<Timeline>,
    dataset: &Dataset,
    params: &Params,
    cancel: &CancelHandle,
    progress: &Arc<Progress>,
) -> Result<(usize, Option<String>, Json), FailedJob> {
    if let Some(msg) = tricluster_failpoint::trigger("serve.job.spawn") {
        return Err(FailedJob::Message(msg));
    }
    let att = tl.attach("serve-worker");
    timeline::instant(names::T_SV_STARTED);
    let progress_sink = ProgressSink(progress.clone());
    let hist = HistogramTap;
    let sink = Fanout(vec![&hist as &dyn EventSink, &progress_sink, tl.as_ref()]);
    progress.set_budgets(params.deadline, params.max_memory, params.max_candidates);
    let result =
        tricluster_core::mine_observed_cancellable(&dataset.matrix, params, &sink, cancel.clone())
            .map_err(|e: MineError| FailedJob::Message(e.to_string()))?;
    let mut report = result.report.clone();
    let rec = tricluster_core::obs::Recorder::new();
    let met = cluster_metrics_observed(&dataset.matrix, &result.triclusters, &rec);
    report.merge(&rec.snapshot());
    timeline::instant(names::T_SV_FINISHED);
    // Flush this thread's event ring before rendering the trace below.
    drop(att);
    // The `serve` section carries the job's provenance (which submission
    // produced it); it is NOT one of the deterministic sections, so a
    // served report still matches a one-shot `mine` byte-for-byte where
    // it counts.
    let doc = runreport::report_to_json_v2(&dataset.matrix, &result, &report, &met).with(
        "serve",
        Json::obj()
            .with("request_id", Json::U64(request_id))
            .with("job_id", Json::U64(id)),
    );
    if let Some(ledger) = &shared.ledger {
        // Eager per-job flush: by the time a drain finishes joining the
        // workers, every completed job is already on disk.
        let archive_started = Instant::now();
        let trace = tl
            .to_chrome_json()
            .with("request_id", Json::U64(request_id))
            .render();
        let entry = NewEntry {
            kind: "serve",
            label: Some(dataset.hash.clone()),
            dataset_hash: dataset.hash.clone(),
            params_hash: content_hash(format!("{params:?}").as_bytes()),
            report: &doc,
            trace: Some(&trace),
            flame: None,
        };
        let ledger = ledger
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Err(e) = ledger.archive(&entry) {
            eprintln!("serve: ledger archive failed: {e}");
        }
        drop(ledger);
        shared
            .service
            .observe(names::SV_ARCHIVE, archive_started.elapsed());
    }
    Ok((
        result.triclusters.len(),
        result.truncation.map(|r| r.as_str().to_owned()),
        doc,
    ))
}

/// Records a finished job: state, counters, retention, memory release.
fn finish_job(shared: &Arc<Shared>, id: u64, outcome: Outcome) {
    let mut state = shared.lock();
    let job = state.jobs.get_mut(&id).expect("running job exists");
    job.state = if outcome.error.is_some() {
        JobState::Failed
    } else if outcome.truncation.as_deref() == Some("cancelled") {
        JobState::Cancelled
    } else {
        JobState::Done
    };
    let released = job.matrix_bytes;
    let finished = job.state;
    job.dataset = None;
    job.params = None;
    job.outcome = Some(outcome);
    state.admitted_bytes = state.admitted_bytes.saturating_sub(released);
    evict_finished(&mut state);
    drop(state);
    shared.service.incr(match finished {
        JobState::Failed => names::SV_JOBS_FAILED,
        JobState::Cancelled => names::SV_JOBS_CANCELLED,
        _ => names::SV_JOBS_COMPLETED,
    });
    // A worker slot freed; drain waiters and peers may care.
    shared.work.notify_all();
    shared.shutdown.notify_all();
}

/// Drops the oldest finished jobs beyond the retention window. Queued and
/// running jobs are never evicted.
fn evict_finished(state: &mut State) {
    let finished: Vec<u64> = state
        .jobs
        .values()
        .filter(|j| j.state.is_finished())
        .map(|j| j.id)
        .collect();
    if finished.len() > KEEP_FINISHED {
        for id in &finished[..finished.len() - KEEP_FINISHED] {
            state.jobs.remove(id);
        }
    }
}

/// Per-request audit context, filled in by the routing layer and emitted
/// as part of the access-log record.
#[derive(Default)]
struct Audit {
    /// The job this request created or addressed.
    job_id: Option<u64>,
    /// Tenant-clamp verdict of a submission.
    clamped: Option<bool>,
    /// Why a submission was shed (`draining` / `queue_full` /
    /// `memory_budget`).
    shed_reason: Option<&'static str>,
}

/// Entry point for one HTTP request: assigns the monotonic request ID,
/// routes, then emits the audit record. Runs on a connection thread
/// behind the listener's own `catch_unwind`.
fn handle_request(shared: &Arc<Shared>, req: Request) -> Response {
    let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let mut audit = Audit::default();
    let response = route(shared, &req, request_id, &mut audit);
    shared.service.incr(names::SV_HTTP_REQUESTS);
    log_access(
        shared,
        request_id,
        &req,
        &response,
        started.elapsed(),
        &audit,
    );
    response
}

/// Appends one whole-line JSONL audit record for a finished request.
fn log_access(
    shared: &Shared,
    request_id: u64,
    req: &Request,
    response: &Response,
    elapsed: Duration,
    audit: &Audit,
) {
    let Some(log) = &shared.access_log else {
        return;
    };
    let record = Json::obj()
        .with("request_id", Json::U64(request_id))
        .with("method", Json::Str(req.method.clone()))
        .with("path", Json::Str(req.path.clone()))
        .with("status", Json::U64(u64::from(response.status)))
        .with("bytes", Json::U64(response.body.len() as u64))
        .with("duration_secs", Json::F64(elapsed.as_secs_f64()))
        .maybe_with("job_id", audit.job_id.map(Json::U64))
        .maybe_with("clamped", audit.clamped.map(Json::Bool))
        .maybe_with(
            "shed_reason",
            audit.shed_reason.map(|r| Json::Str(r.into())),
        );
    let mut line = record.render();
    line.push('\n');
    // One write per record (the JsonLinesSink discipline): records from
    // concurrent connection threads never interleave mid-line.
    let mut file = log.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Err(e) = file.write_all(line.as_bytes()) {
        eprintln!("serve: access log write failed: {e}");
    }
}

/// Routes one HTTP request.
fn route(shared: &Arc<Shared>, req: &Request, request_id: u64, audit: &mut Audit) -> Response {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/stats") => stats_response(shared),
        ("GET", "/metrics") => metrics_response(shared),
        ("GET", "/jobs") => list_jobs(shared),
        ("POST", "/jobs") => submit_job(shared, &req.body, request_id, audit),
        ("POST", "/shutdown") => shutdown(shared, &req.body),
        _ => {
            if let Some(id) = path.strip_prefix("/jobs/") {
                let Ok(id) = id.parse::<u64>() else {
                    return error_response(400, "bad_request", "job id must be an integer");
                };
                audit.job_id = Some(id);
                return match req.method.as_str() {
                    "GET" => job_status(shared, id),
                    "DELETE" => cancel_job(shared, id),
                    _ => error_response(405, "method_not_allowed", "use GET or DELETE"),
                };
            }
            error_response(
                404,
                "not_found",
                "try /jobs, /jobs/<id>, /metrics, /stats, /healthz, /shutdown",
            )
        }
    }
}

/// A machine-readable error body: `{"error": <code>, "detail": <human>}`.
fn error_response(status: u16, code: &str, detail: &str) -> Response {
    let body = Json::obj()
        .with("error", Json::Str(code.into()))
        .with("detail", Json::Str(detail.into()));
    Response::json(status, body.render() + "\n")
}

fn stats_response(shared: &Arc<Shared>) -> Response {
    let (hits, misses, evictions) = shared.engine.cache_stats();
    let svc = &shared.service;
    let counters = Json::obj()
        .with(
            "submitted",
            Json::U64(svc.counter_value(names::SV_JOBS_ACCEPTED)),
        )
        .with(
            "rejected_queue",
            Json::U64(svc.counter_value(names::SV_JOBS_REJECTED_QUEUE_FULL)),
        )
        .with(
            "rejected_memory",
            Json::U64(svc.counter_value(names::SV_JOBS_REJECTED_MEMORY)),
        )
        .with(
            "clamped",
            Json::U64(svc.counter_value(names::SV_JOBS_CLAMPED)),
        )
        .with(
            "completed",
            Json::U64(svc.counter_value(names::SV_JOBS_COMPLETED)),
        )
        .with(
            "failed",
            Json::U64(svc.counter_value(names::SV_JOBS_FAILED)),
        )
        .with(
            "cancelled",
            Json::U64(svc.counter_value(names::SV_JOBS_CANCELLED)),
        )
        .with(
            "http_requests",
            Json::U64(svc.counter_value(names::SV_HTTP_REQUESTS)),
        );
    let state = shared.lock();
    let running = state
        .jobs
        .values()
        .filter(|j| j.state == JobState::Running)
        .count();
    let body = Json::obj()
        .with("queue_depth", Json::U64(state.queue.len() as u64))
        .with("queue_capacity", Json::U64(shared.cfg.queue_depth as u64))
        .with("running", Json::U64(running as u64))
        .with("workers", Json::U64(shared.cfg.workers as u64))
        .with("admitted_bytes", Json::U64(state.admitted_bytes))
        .with(
            "memory_budget",
            match shared.cfg.memory_budget {
                Some(b) => Json::U64(b),
                None => Json::Null,
            },
        )
        .with("draining", Json::Bool(state.draining.is_some()))
        .with(
            "dataset_cache",
            Json::obj()
                .with("hits", Json::U64(hits))
                .with("misses", Json::U64(misses))
                .with("evictions", Json::U64(evictions))
                .with("entries", Json::U64(shared.engine.cached_datasets() as u64)),
        )
        .with("counters", counters);
    Response::json(200, body.render_pretty() + "\n")
}

/// `GET /metrics`: the daemon-lifetime OpenMetrics exposition. Counters
/// and latency histograms come from the [`ServiceRegistry`]; gauges are
/// sampled here, under the daemon lock, at scrape time.
fn metrics_response(shared: &Arc<Shared>) -> Response {
    let (hits, misses, evictions) = shared.engine.cache_stats();
    let (queue_depth, admitted_bytes, running, retained) = {
        let state = shared.lock();
        let running = state
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count();
        let retained = state
            .jobs
            .values()
            .filter(|j| j.state.is_finished())
            .count();
        (state.queue.len(), state.admitted_bytes, running, retained)
    };
    let gauges = [
        (names::SV_QUEUE_DEPTH, queue_depth as f64),
        (names::SV_ADMITTED_BYTES, admitted_bytes as f64),
        (names::SV_WORKERS_BUSY, running as f64),
        (names::SV_JOBS_RETAINED, retained as f64),
        (names::SV_CACHE_HITS, hits as f64),
        (names::SV_CACHE_MISSES, misses as f64),
        (names::SV_CACHE_EVICTIONS, evictions as f64),
    ];
    Response {
        status: 200,
        content_type: "application/openmetrics-text; version=1.0.0; charset=utf-8".into(),
        body: shared.service.render_openmetrics(&gauges),
    }
}

fn list_jobs(shared: &Arc<Shared>) -> Response {
    let (hits, misses, evictions) = shared.engine.cache_stats();
    let svc = &shared.service;
    let service = Json::obj()
        .with(
            "accepted",
            Json::U64(svc.counter_value(names::SV_JOBS_ACCEPTED)),
        )
        .with(
            "completed",
            Json::U64(svc.counter_value(names::SV_JOBS_COMPLETED)),
        )
        .with(
            "failed",
            Json::U64(svc.counter_value(names::SV_JOBS_FAILED)),
        )
        .with(
            "cancelled",
            Json::U64(svc.counter_value(names::SV_JOBS_CANCELLED)),
        );
    let state = shared.lock();
    let running = state
        .jobs
        .values()
        .filter(|j| j.state == JobState::Running)
        .count();
    let jobs: Vec<Json> = state.jobs.values().map(Job::summary_json).collect();
    let body = Json::obj()
        .with("jobs", Json::Arr(jobs))
        .with(
            "service",
            service
                .with("queue_depth", Json::U64(state.queue.len() as u64))
                .with("running", Json::U64(running as u64)),
        )
        .with(
            "dataset_cache",
            Json::obj()
                .with("hits", Json::U64(hits))
                .with("misses", Json::U64(misses))
                .with("evictions", Json::U64(evictions)),
        );
    Response::json(200, body.render_pretty() + "\n")
}

fn job_status(shared: &Arc<Shared>, id: u64) -> Response {
    let state = shared.lock();
    let Some(job) = state.jobs.get(&id) else {
        return error_response(404, "not_found", "no such job (or already evicted)");
    };
    let mut body = Json::obj().with("job", job.summary_json());
    if job.state == JobState::Running {
        body = body.with("progress", job.progress.snapshot_json());
    }
    if let Some(report) = job.outcome.as_ref().and_then(|o| o.report.as_ref()) {
        body = body.with("report", report.clone());
    }
    Response::json(200, body.render_pretty() + "\n")
}

/// `POST /jobs`: parse, admit, enqueue. Body schema:
///
/// ```json
/// {"label": "...",                    // optional
///  "dataset": "<stacked TSV text>",   // inline, or:
///  "dataset_path": "/path/on/server", // server-side file
///  "params": ["--eps", "0.012"]}      // mine-style flags, optional
/// ```
fn submit_job(shared: &Arc<Shared>, body: &[u8], request_id: u64, audit: &mut Audit) -> Response {
    if let Some(msg) = tricluster_failpoint::trigger("serve.admission") {
        return error_response(503, "fault_injected", &msg);
    }
    // Cheap rejections (no parse work) first: drain state and queue depth.
    {
        let state = shared.lock();
        if state.draining.is_some() {
            audit.shed_reason = Some("draining");
            return error_response(503, "draining", "daemon is shutting down");
        }
        if state.queue.len() >= shared.cfg.queue_depth {
            let depth = state.queue.len();
            drop(state);
            shared.service.incr(names::SV_JOBS_REJECTED_QUEUE_FULL);
            audit.shed_reason = Some("queue_full");
            return rejection(
                "queue_full",
                &format!("queue depth {depth} reached"),
                shared,
            );
        }
    }
    let Ok(text) = std::str::from_utf8(body) else {
        return error_response(400, "bad_request", "body is not UTF-8");
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return error_response(400, "bad_request", &format!("body is not JSON: {e}")),
    };
    let label = doc
        .get("label")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_owned();
    // Dataset: inline TSV string, or a server-side path. The hit-counter
    // delta says whether this submission reused a cached parse (racy
    // across concurrent submissions, but the flag is informational).
    let (hits_before, _, _) = shared.engine.cache_stats();
    let dataset = if let Some(tsv) = doc.get("dataset").and_then(Json::as_str) {
        shared.engine.dataset_from_bytes(tsv.as_bytes())
    } else if let Some(path) = doc.get("dataset_path").and_then(Json::as_str) {
        shared.engine.dataset_from_path(std::path::Path::new(path))
    } else {
        return error_response(400, "bad_request", "need \"dataset\" or \"dataset_path\"");
    };
    let dataset = match dataset {
        Ok(d) => d,
        Err(e) => return error_response(400, "bad_dataset", &e.to_string()),
    };
    let was_cached = shared.engine.cache_stats().0 > hits_before;
    // Params arrive as mine-style flags and go through the exact same
    // parser as the CLI, so a daemon job cannot drift from a one-shot run.
    let params_argv: Vec<String> = doc
        .get("params")
        .and_then(Json::as_arr)
        .map(|items| {
            items
                .iter()
                .filter_map(|v| v.as_str().map(str::to_owned))
                .collect()
        })
        .unwrap_or_default();
    let parsed = args::parse(
        &params_argv,
        &[
            ("eps", 1),
            ("eps-time", 1),
            ("mx", 1),
            ("my", 1),
            ("mz", 1),
            ("delta-x", 1),
            ("delta-y", 1),
            ("delta-z", 1),
            ("merge", 2),
            ("max-candidates", 1),
            ("deadline", 1),
            ("max-memory", 1),
            ("threads", 1),
            ("fanout", 1),
        ],
        &[],
    );
    let requested = match parsed.and_then(|a| mine_params_from(&a)) {
        Ok(p) => p,
        Err(e) => return error_response(400, "bad_params", &e),
    };
    let session = shared.engine.session(&requested);
    let clamped = session.was_clamped();
    let params = session.params().clone();
    let (ng, ns, nt) = dataset.matrix.dims();
    let matrix_bytes = (ng * ns * nt * std::mem::size_of::<f64>()) as u64;
    // The job's timeline starts on the HTTP thread: the enqueued instant
    // anchors the queue-wait gap visible in the Chrome trace.
    let tl = Arc::new(Timeline::new());
    {
        let _att = tl.attach("serve-http");
        timeline::instant(names::T_SV_ENQUEUED);
    }

    let mut state = shared.lock();
    // Re-check under the lock: admission raced other submissions.
    if state.draining.is_some() {
        audit.shed_reason = Some("draining");
        return error_response(503, "draining", "daemon is shutting down");
    }
    if state.queue.len() >= shared.cfg.queue_depth {
        let depth = state.queue.len();
        drop(state);
        shared.service.incr(names::SV_JOBS_REJECTED_QUEUE_FULL);
        audit.shed_reason = Some("queue_full");
        return rejection(
            "queue_full",
            &format!("queue depth {depth} reached"),
            shared,
        );
    }
    if let Some(budget) = shared.cfg.memory_budget {
        if state.admitted_bytes + matrix_bytes > budget {
            let admitted = state.admitted_bytes;
            drop(state);
            shared.service.incr(names::SV_JOBS_REJECTED_MEMORY);
            audit.shed_reason = Some("memory_budget");
            return rejection(
                "memory_budget",
                &format!(
                    "admitting {matrix_bytes} B on top of {admitted} B would exceed \
                     the {budget} B aggregate budget"
                ),
                shared,
            );
        }
    }
    if let Some(msg) = tricluster_failpoint::trigger("serve.queue") {
        return error_response(503, "fault_injected", &msg);
    }
    let id = state.next_id;
    state.next_id += 1;
    state.admitted_bytes += matrix_bytes;
    let job = Job {
        id,
        request_id,
        label: if label.is_empty() {
            format!("job-{id}")
        } else {
            label
        },
        dataset_hash: dataset.hash.clone(),
        matrix_bytes,
        cached: was_cached,
        clamped,
        state: JobState::Queued,
        cancelling: false,
        cancel: session.cancel_handle(),
        progress: Arc::new(Progress::new()),
        timeline: tl,
        dataset: Some(dataset.clone()),
        params: Some(params),
        submitted: Instant::now(),
        outcome: None,
    };
    state.queue.push_back(id);
    state.jobs.insert(id, job);
    drop(state);
    shared.service.incr(names::SV_JOBS_ACCEPTED);
    if clamped {
        shared.service.incr(names::SV_JOBS_CLAMPED);
    }
    audit.job_id = Some(id);
    audit.clamped = Some(clamped);
    shared.work.notify_all();
    let body = Json::obj()
        .with("id", Json::U64(id))
        .with("request_id", Json::U64(request_id))
        .with("status_url", Json::Str(format!("/jobs/{id}")))
        .with("dataset_hash", Json::Str(dataset.hash.clone()))
        .with("clamped", Json::Bool(clamped));
    Response::json(202, body.render() + "\n")
}

/// A 429-style shed-load rejection with the queue/memory numbers the
/// client needs to back off intelligently.
fn rejection(reason: &str, detail: &str, shared: &Arc<Shared>) -> Response {
    let state = shared.lock();
    let body = Json::obj()
        .with("error", Json::Str("rejected".into()))
        .with("reason", Json::Str(reason.into()))
        .with("detail", Json::Str(detail.into()))
        .with("queue_depth", Json::U64(state.queue.len() as u64))
        .with("queue_capacity", Json::U64(shared.cfg.queue_depth as u64))
        .with("admitted_bytes", Json::U64(state.admitted_bytes));
    Response::json(429, body.render() + "\n")
}

fn cancel_job(shared: &Arc<Shared>, id: u64) -> Response {
    let mut state = shared.lock();
    let Some(job) = state.jobs.get_mut(&id) else {
        return error_response(404, "not_found", "no such job (or already evicted)");
    };
    match job.state {
        JobState::Queued => {
            job.state = JobState::Cancelled;
            job.cancelling = true;
            job.dataset = None;
            job.params = None;
            job.outcome = Some(Outcome {
                clusters: 0,
                truncation: Some("cancelled".into()),
                error: None,
                secs: 0.0,
                report: None,
            });
            {
                let _att = job.timeline.attach("serve-http");
                timeline::instant(names::T_SV_CANCELLED);
            }
            let released = job.matrix_bytes;
            state.queue.retain(|&q| q != id);
            state.admitted_bytes = state.admitted_bytes.saturating_sub(released);
            drop(state);
            shared.service.incr(names::SV_JOBS_CANCELLED);
            let body = Json::obj()
                .with("id", Json::U64(id))
                .with("state", Json::Str("cancelled".into()));
            Response::json(200, body.render() + "\n")
        }
        JobState::Running => {
            // Cooperative: trip the handle, let the run wind down into a
            // truncated (reason "cancelled") result. State flips (and the
            // cancelled counter bumps) when the worker finishes.
            job.cancelling = true;
            job.cancel.cancel();
            {
                let _att = job.timeline.attach("serve-http");
                timeline::instant(names::T_SV_CANCELLED);
            }
            let body = Json::obj()
                .with("id", Json::U64(id))
                .with("state", Json::Str("running".into()))
                .with("cancelling", Json::Bool(true));
            Response::json(200, body.render() + "\n")
        }
        finished => error_response(
            409,
            "already_finished",
            &format!("job is {}", finished.as_str()),
        ),
    }
}

/// `POST /shutdown`: stop admitting and wake the drain. Body (optional):
/// `{"mode": "drain"}` (default — finish in-flight and queued jobs) or
/// `{"mode": "cancel"}` (cancel queued jobs, trip running ones).
fn shutdown(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let mode = match std::str::from_utf8(body)
        .ok()
        .filter(|t| !t.trim().is_empty())
    {
        None => ShutdownMode::Drain,
        Some(text) => match Json::parse(text) {
            Ok(doc) => match doc.get("mode").and_then(Json::as_str) {
                None | Some("drain") => ShutdownMode::Drain,
                Some("cancel") => ShutdownMode::Cancel,
                Some(other) => {
                    return error_response(
                        400,
                        "bad_request",
                        &format!("unknown shutdown mode {other:?} (drain | cancel)"),
                    )
                }
            },
            Err(e) => return error_response(400, "bad_request", &format!("body: {e}")),
        },
    };
    let mut state = shared.lock();
    let already = state.draining.is_some();
    state.draining = Some(mode);
    let mut cancelled_now = 0u64;
    if mode == ShutdownMode::Cancel {
        // Queued jobs become cancelled records; running jobs get tripped.
        let queued: Vec<u64> = state.queue.drain(..).collect();
        for id in queued {
            if let Some(job) = state.jobs.get_mut(&id) {
                job.state = JobState::Cancelled;
                job.dataset = None;
                job.params = None;
                job.outcome = Some(Outcome {
                    clusters: 0,
                    truncation: Some("cancelled".into()),
                    error: None,
                    secs: 0.0,
                    report: None,
                });
                {
                    let _att = job.timeline.attach("serve-http");
                    timeline::instant(names::T_SV_CANCELLED);
                }
                let released = job.matrix_bytes;
                state.admitted_bytes = state.admitted_bytes.saturating_sub(released);
                cancelled_now += 1;
            }
        }
        for job in state.jobs.values_mut() {
            if job.state == JobState::Running {
                job.cancelling = true;
                job.cancel.cancel();
                let _att = job.timeline.attach("serve-http");
                timeline::instant(names::T_SV_CANCELLED);
            }
        }
    }
    drop(state);
    if cancelled_now > 0 {
        shared.service.add(names::SV_JOBS_CANCELLED, cancelled_now);
    }
    shared.work.notify_all();
    shared.shutdown.notify_all();
    let body = Json::obj()
        .with("draining", Json::Bool(true))
        .with(
            "mode",
            Json::Str(match mode {
                ShutdownMode::Drain => "drain".into(),
                ShutdownMode::Cancel => "cancel".into(),
            }),
        )
        .with("already_draining", Json::Bool(already));
    Response::json(200, body.render() + "\n")
}

const SERVE_FLAGS: &[(&str, usize)] = &[
    ("workers", 1),
    ("queue-depth", 1),
    ("memory-budget", 1),
    ("cap-deadline", 1),
    ("cap-memory", 1),
    ("cap-candidates", 1),
    ("cap-threads", 1),
    ("max-body", 1),
    ("ledger", 1),
    ("cache-entries", 1),
    ("access-log", 1),
];

/// The `serve` command: parse flags, start the daemon, announce the bound
/// address, block until a `POST /shutdown` drains it.
pub fn serve(argv: &[String]) -> Result<(), CliError> {
    let a = args::parse(argv, SERVE_FLAGS, &[]).map_err(CliError::Usage)?;
    let Some(addr) = a.positional.first() else {
        return Err(CliError::Usage(
            "serve: missing bind address (HOST:PORT, e.g. 127.0.0.1:7171)".into(),
        ));
    };
    let mut cfg = ServeConfig {
        addr: addr.clone(),
        ..ServeConfig::default()
    };
    if let Some(n) = a.get_usize("workers").map_err(CliError::Usage)? {
        if n == 0 {
            return Err(CliError::Usage("--workers must be at least 1".into()));
        }
        cfg.workers = n;
    }
    if let Some(n) = a.get_usize("queue-depth").map_err(CliError::Usage)? {
        cfg.queue_depth = n;
    }
    if let Some(s) = a.get_str("memory-budget") {
        cfg.memory_budget = Some(parse_bytes("memory-budget", s).map_err(CliError::Usage)?);
    }
    if let Some(secs) = a.get_f64("cap-deadline").map_err(CliError::Usage)? {
        if !secs.is_finite() || secs <= 0.0 {
            return Err(CliError::Usage(format!(
                "--cap-deadline expects a positive number of seconds, got {secs}"
            )));
        }
        cfg.caps.max_deadline = Some(Duration::from_secs_f64(secs));
    }
    if let Some(s) = a.get_str("cap-memory") {
        cfg.caps.max_memory = Some(parse_bytes("cap-memory", s).map_err(CliError::Usage)?);
    }
    if let Some(n) = a.get_u64("cap-candidates").map_err(CliError::Usage)? {
        cfg.caps.max_candidates = Some(n);
    }
    if let Some(n) = a.get_usize("cap-threads").map_err(CliError::Usage)? {
        cfg.caps.max_threads = Some(n);
    }
    if let Some(s) = a.get_str("max-body") {
        cfg.max_body = parse_bytes("max-body", s).map_err(CliError::Usage)? as usize;
    }
    cfg.ledger_dir = a.get_str("ledger").map(str::to_string);
    if let Some(n) = a.get_usize("cache-entries").map_err(CliError::Usage)? {
        cfg.cache_entries = n;
    }
    cfg.access_log = a.get_str("access-log").map(str::to_string);
    let daemon = Daemon::start(cfg)?;
    eprintln!("serve: listening on {}", daemon.url());
    daemon.wait();
    eprintln!("serve: drained, exiting");
    Ok(())
}

/// The `submit` command: client for a running daemon.
///
/// ```text
/// tricluster submit URL DATA.tsv [mine param flags] [--label L] [--by-path]
///                   [--wait [--poll SECS]] [--report-json PATH]
/// tricluster submit URL --cancel ID
/// tricluster submit URL --shutdown [drain|cancel]
/// ```
pub fn submit(argv: &[String]) -> Result<(), CliError> {
    let a = args::parse(
        argv,
        &[
            ("eps", 1),
            ("eps-time", 1),
            ("mx", 1),
            ("my", 1),
            ("mz", 1),
            ("delta-x", 1),
            ("delta-y", 1),
            ("delta-z", 1),
            ("merge", 2),
            ("max-candidates", 1),
            ("deadline", 1),
            ("max-memory", 1),
            ("threads", 1),
            ("fanout", 1),
            ("label", 1),
            ("poll", 1),
            ("report-json", 1),
            ("cancel", 1),
            ("shutdown", 1),
        ],
        &["by-path", "wait"],
    )
    .map_err(CliError::Usage)?;
    let Some(url) = a.positional.first() else {
        return Err(CliError::Usage(
            "submit: missing daemon URL (as printed by serve, e.g. http://127.0.0.1:7171)".into(),
        ));
    };
    let base = url.trim_end_matches('/').to_string();

    if let Some(id) = a.get_str("cancel") {
        let (status, body) = tricluster_core::obs::httpd::http_delete(&format!("{base}/jobs/{id}"))
            .map_err(CliError::Run)?;
        print!("{body}");
        return if status == 200 {
            Ok(())
        } else {
            Err(CliError::Run(format!("DELETE /jobs/{id}: HTTP {status}")))
        };
    }
    if let Some(mode) = a.get_str("shutdown") {
        let body = format!("{{\"mode\":\"{mode}\"}}");
        let (status, body) = http_post(
            &format!("{base}/shutdown"),
            "application/json",
            body.as_bytes(),
        )
        .map_err(CliError::Run)?;
        print!("{body}");
        return if status == 200 {
            Ok(())
        } else {
            Err(CliError::Run(format!("POST /shutdown: HTTP {status}")))
        };
    }

    let Some(path) = a.positional.get(1) else {
        return Err(CliError::Usage(
            "submit: missing dataset file (stacked TSV), or --cancel ID / --shutdown MODE".into(),
        ));
    };
    // Forward the param flags verbatim — the daemon runs them through the
    // same parser as `mine`, after validating them here for a fast local
    // usage error.
    mine_params_from(&a).map_err(CliError::Usage)?;
    let mut params_argv: Vec<Json> = Vec::new();
    for (flag, arity) in &[
        ("eps", 1),
        ("eps-time", 1),
        ("mx", 1),
        ("my", 1),
        ("mz", 1),
        ("delta-x", 1),
        ("delta-y", 1),
        ("delta-z", 1),
        ("merge", 2),
        ("max-candidates", 1),
        ("deadline", 1),
        ("max-memory", 1),
        ("threads", 1),
        ("fanout", 1),
    ] {
        if *arity == 2 {
            if let Some((x, y)) = a.get_pair_f64(flag).map_err(CliError::Usage)? {
                params_argv.push(Json::Str(format!("--{flag}")));
                params_argv.push(Json::Str(x.to_string()));
                params_argv.push(Json::Str(y.to_string()));
            }
        } else if let Some(v) = a.get_str(flag) {
            params_argv.push(Json::Str(format!("--{flag}")));
            params_argv.push(Json::Str(v.to_owned()));
        }
    }
    let mut body = Json::obj();
    if let Some(label) = a.get_str("label") {
        body = body.with("label", Json::Str(label.to_owned()));
    }
    if a.has("by-path") {
        let canonical = std::fs::canonicalize(path)
            .map_err(|e| CliError::Run(format!("cannot resolve {path}: {e}")))?;
        body = body.with(
            "dataset_path",
            Json::Str(canonical.to_string_lossy().into_owned()),
        );
    } else {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Run(format!("cannot read {path}: {e}")))?;
        body = body.with("dataset", Json::Str(text));
    }
    body = body.with("params", Json::Arr(params_argv));
    let (status, response) = http_post(
        &format!("{base}/jobs"),
        "application/json",
        body.render().as_bytes(),
    )
    .map_err(CliError::Run)?;
    if status != 202 {
        print!("{response}");
        return Err(CliError::Run(format!("POST /jobs: HTTP {status}")));
    }
    let accepted = Json::parse(response.trim())
        .map_err(|e| CliError::Run(format!("unparseable acceptance: {e}")))?;
    let id = accepted
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| CliError::Run("acceptance carries no job id".into()))?;
    eprintln!(
        "submitted as job {id} (dataset {}, request {})",
        accepted
            .get("dataset_hash")
            .and_then(Json::as_str)
            .unwrap_or("?"),
        accepted
            .get("request_id")
            .and_then(Json::as_u64)
            .map(|r| r.to_string())
            .unwrap_or_else(|| "?".into())
    );
    if !a.has("wait") {
        println!("{id}");
        return Ok(());
    }
    let poll = a.get_f64("poll").map_err(CliError::Usage)?.unwrap_or(0.2);
    if !poll.is_finite() || poll <= 0.0 {
        return Err(CliError::Usage(format!(
            "--poll expects a positive number of seconds, got {poll}"
        )));
    }
    let status_url = format!("{base}/jobs/{id}");
    loop {
        let (code, body) = http_get_retry(&status_url, 5, Duration::from_millis(50))
            .into_result()
            .map_err(CliError::Run)?;
        if code != 200 {
            return Err(CliError::Run(format!("GET /jobs/{id}: HTTP {code}")));
        }
        let doc = Json::parse(body.trim())
            .map_err(|e| CliError::Run(format!("unparseable status: {e}")))?;
        let state = doc
            .get_path(&["job", "state"])
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned();
        match state.as_str() {
            "queued" | "running" => {
                std::thread::sleep(Duration::from_secs_f64(poll));
            }
            _ => {
                if let Some(out_path) = a.get_str("report-json") {
                    match doc.get("report") {
                        Some(report) => {
                            std::fs::write(out_path, report.render_pretty() + "\n").map_err(
                                |e| CliError::Run(format!("cannot write {out_path}: {e}")),
                            )?;
                        }
                        None => {
                            return Err(CliError::Run(format!(
                                "job {id} finished {state} without a report"
                            )))
                        }
                    }
                }
                if let Some(summary) = doc.get("job") {
                    println!("{}", summary.render_pretty());
                }
                return match state.as_str() {
                    "done" | "cancelled" => Ok(()),
                    other => Err(CliError::Run(format!("job {id} finished {other}"))),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufWriter;
    use tricluster_core::obs::httpd::{http_delete, http_get, http_post};
    use tricluster_core::obs::ledger::Ledger;
    use tricluster_failpoint::{self as failpoint, Action};
    use tricluster_matrix::{io as mio, Labels};

    fn table1_tsv() -> String {
        let m = tricluster_core::testdata::paper_table1();
        let labels = Labels::default_for(m.n_genes(), m.n_samples(), m.n_times());
        let mut buf = Vec::new();
        {
            let mut w = BufWriter::new(&mut buf);
            mio::write_stacked_tsv(&mut w, &m, &labels).unwrap();
        }
        String::from_utf8(buf).unwrap()
    }

    fn test_cfg() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        }
    }

    fn submit_body(label: &str, params: &[&str]) -> String {
        Json::obj()
            .with("label", Json::Str(label.into()))
            .with("dataset", Json::Str(table1_tsv()))
            .with(
                "params",
                Json::Arr(params.iter().map(|p| Json::Str((*p).into())).collect()),
            )
            .render()
    }

    fn post_job(base: &str, body: &str) -> (u16, Json) {
        let (status, text) =
            http_post(&format!("{base}/jobs"), "application/json", body.as_bytes()).unwrap();
        (status, Json::parse(text.trim()).unwrap())
    }

    /// Polls `GET /jobs/<id>` until the job leaves queued/running.
    fn wait_finished(base: &str, id: u64) -> Json {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (status, text) = http_get(&format!("{base}/jobs/{id}")).unwrap();
            assert_eq!(status, 200, "{text}");
            let doc = Json::parse(text.trim()).unwrap();
            let state = doc
                .get_path(&["job", "state"])
                .and_then(Json::as_str)
                .unwrap()
                .to_owned();
            if state != "queued" && state != "running" {
                return doc;
            }
            assert!(Instant::now() < deadline, "job {id} never finished");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn shut_down(daemon: Daemon) {
        let base = daemon.url();
        let (status, _) = http_post(&format!("{base}/shutdown"), "application/json", b"").unwrap();
        assert_eq!(status, 200);
        daemon.wait();
    }

    #[test]
    fn end_to_end_submit_status_report_and_cache() {
        let daemon = Daemon::start(test_cfg()).unwrap();
        let base = daemon.url();
        let (status, text) = http_get(&format!("{base}/healthz")).unwrap();
        assert_eq!((status, text.as_str()), (200, "ok\n"));

        let (status, accepted) = post_job(&base, &submit_body("first", &["--eps", "0.01"]));
        assert_eq!(status, 202, "{accepted:?}");
        let id = accepted.get("id").unwrap().as_u64().unwrap();
        assert_eq!(
            accepted.get("status_url").unwrap().as_str().unwrap(),
            format!("/jobs/{id}")
        );
        assert!(accepted
            .get("dataset_hash")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("fnv1a:"));

        let doc = wait_finished(&base, id);
        assert_eq!(
            doc.get_path(&["job", "state"]).unwrap().as_str(),
            Some("done")
        );
        assert!(
            doc.get_path(&["job", "clusters"])
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        let report = doc.get("report").expect("finished job carries its report");
        assert_eq!(
            report.get("schema").and_then(Json::as_str),
            Some("tricluster.report/v2")
        );

        // Identical bytes resubmitted: the parse cache must hit.
        let (status, accepted2) = post_job(&base, &submit_body("second", &[]));
        assert_eq!(status, 202);
        let id2 = accepted2.get("id").unwrap().as_u64().unwrap();
        wait_finished(&base, id2);
        let (_, stats) = http_get(&format!("{base}/stats")).unwrap();
        let stats = Json::parse(stats.trim()).unwrap();
        assert!(
            stats
                .get_path(&["dataset_cache", "hits"])
                .unwrap()
                .as_u64()
                .unwrap()
                >= 1,
            "{stats:?}"
        );
        assert_eq!(
            stats
                .get_path(&["counters", "completed"])
                .unwrap()
                .as_u64()
                .unwrap(),
            2
        );

        // The listing names both jobs.
        let (_, listing) = http_get(&format!("{base}/jobs")).unwrap();
        let listing = Json::parse(listing.trim()).unwrap();
        assert_eq!(listing.get("jobs").unwrap().as_arr().unwrap().len(), 2);
        shut_down(daemon);
    }

    #[test]
    fn admission_errors_are_machine_readable() {
        // Queue capacity zero: every submission sheds with reason queue_full.
        let daemon = Daemon::start(ServeConfig {
            queue_depth: 0,
            ..test_cfg()
        })
        .unwrap();
        let base = daemon.url();
        let (status, body) = post_job(&base, &submit_body("shed", &[]));
        assert_eq!(status, 429);
        assert_eq!(body.get("error").unwrap().as_str(), Some("rejected"));
        assert_eq!(body.get("reason").unwrap().as_str(), Some("queue_full"));
        assert!(body.get("queue_capacity").is_some());
        shut_down(daemon);

        // One-byte aggregate memory budget: parses fine, rejected on bytes.
        let daemon = Daemon::start(ServeConfig {
            memory_budget: Some(1),
            ..test_cfg()
        })
        .unwrap();
        let base = daemon.url();
        let (status, body) = post_job(&base, &submit_body("heavy", &[]));
        assert_eq!(status, 429);
        assert_eq!(body.get("reason").unwrap().as_str(), Some("memory_budget"));

        // Malformed submissions: structured 400s, daemon unaffected.
        let (status, text) =
            http_post(&format!("{base}/jobs"), "application/json", b"not json").unwrap();
        assert_eq!(status, 400);
        assert!(text.contains("bad_request"), "{text}");
        let (status, text) = http_post(
            &format!("{base}/jobs"),
            "application/json",
            b"{\"params\":[]}",
        )
        .unwrap();
        assert_eq!(status, 400);
        assert!(text.contains("dataset"), "{text}");
        let (status, text) = http_post(
            &format!("{base}/jobs"),
            "application/json",
            submit_body("bad", &["--eps", "minus-four"]).as_bytes(),
        )
        .unwrap();
        assert_eq!(status, 400);
        assert!(text.contains("bad_params"), "{text}");
        let (status, text) = http_post(
            &format!("{base}/jobs"),
            "application/json",
            b"{\"dataset\":\"g\\ts0\\nnot-a-matrix\"}",
        )
        .unwrap();
        assert_eq!(status, 400);
        assert!(text.contains("bad_dataset"), "{text}");

        // Unknown routes and ids.
        let (status, _) = http_get(&format!("{base}/jobs/999")).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_get(&format!("{base}/jobs/xyz")).unwrap();
        assert_eq!(status, 400);
        let (status, _) = http_get(&format!("{base}/nope")).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_delete(&format!("{base}/jobs")).unwrap();
        assert_eq!(status, 404);
        shut_down(daemon);
    }

    #[test]
    fn tenant_quotas_clamp_and_over_quota_jobs_fail_structurally() {
        let daemon = Daemon::start(ServeConfig {
            caps: TenantCaps {
                max_candidates: Some(100),
                ..TenantCaps::unlimited()
            },
            ..test_cfg()
        })
        .unwrap();
        let base = daemon.url();
        // Requesting more than the server-wide cap: admitted, but clamped.
        let (status, accepted) = post_job(
            &base,
            &submit_body("greedy", &["--max-candidates", "999999"]),
        );
        assert_eq!(status, 202);
        assert_eq!(accepted.get("clamped").unwrap().as_bool(), Some(true));
        wait_finished(&base, accepted.get("id").unwrap().as_u64().unwrap());

        // A per-job memory quota below the matrix size: the job becomes a
        // structured failed record; the daemon keeps serving.
        let (status, accepted) =
            post_job(&base, &submit_body("over-quota", &["--max-memory", "64"]));
        assert_eq!(status, 202);
        let id = accepted.get("id").unwrap().as_u64().unwrap();
        let doc = wait_finished(&base, id);
        assert_eq!(
            doc.get_path(&["job", "state"]).unwrap().as_str(),
            Some("failed")
        );
        let error = doc
            .get_path(&["job", "error"])
            .and_then(Json::as_str)
            .unwrap();
        assert!(error.contains("memory"), "{error}");
        assert!(doc.get("report").is_none());

        // Unharmed: a clean job still runs to completion.
        let (_, accepted) = post_job(&base, &submit_body("after", &[]));
        let doc = wait_finished(&base, accepted.get("id").unwrap().as_u64().unwrap());
        assert_eq!(
            doc.get_path(&["job", "state"]).unwrap().as_str(),
            Some("done")
        );
        shut_down(daemon);
    }

    #[test]
    fn cancellation_dequeues_queued_and_trips_running_jobs() {
        let _scenario = failpoint::scenario();
        let daemon = Daemon::start(test_cfg()).unwrap();
        let base = daemon.url();
        // Hold the single worker inside job 1 long enough to observe it
        // running and to enqueue job 2 behind it.
        failpoint::configure_once("serve.job.spawn", Action::Delay(Duration::from_millis(400)));
        let (_, a1) = post_job(&base, &submit_body("running", &[]));
        let id1 = a1.get("id").unwrap().as_u64().unwrap();
        let (_, a2) = post_job(&base, &submit_body("queued", &[]));
        let id2 = a2.get("id").unwrap().as_u64().unwrap();

        // Wait until job 1 is actually running.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (_, text) = http_get(&format!("{base}/jobs/{id1}")).unwrap();
            let doc = Json::parse(text.trim()).unwrap();
            match doc.get_path(&["job", "state"]).and_then(Json::as_str) {
                Some("running") => break,
                Some("queued") => {
                    assert!(Instant::now() < deadline, "job 1 never started");
                    std::thread::sleep(Duration::from_millis(2));
                }
                other => panic!("unexpected state {other:?}"),
            }
        }

        // Cancel the queued job: immediate, releases its queue slot.
        let (status, text) = http_delete(&format!("{base}/jobs/{id2}")).unwrap();
        assert_eq!(status, 200, "{text}");
        assert!(text.contains("\"cancelled\""), "{text}");
        // Cancel the running job: cooperative trip.
        let (status, text) = http_delete(&format!("{base}/jobs/{id1}")).unwrap();
        assert_eq!(status, 200, "{text}");
        assert!(text.contains("\"cancelling\":true"), "{text}");

        let doc = wait_finished(&base, id1);
        assert_eq!(
            doc.get_path(&["job", "state"]).unwrap().as_str(),
            Some("cancelled")
        );
        assert_eq!(
            doc.get_path(&["job", "truncation"]).unwrap().as_str(),
            Some("cancelled")
        );
        // Cancelling a finished job is a structured conflict.
        let (status, text) = http_delete(&format!("{base}/jobs/{id1}")).unwrap();
        assert_eq!(status, 409);
        assert!(text.contains("already_finished"), "{text}");

        // The worker survives to run a clean job.
        let (_, a3) = post_job(&base, &submit_body("after", &[]));
        let doc = wait_finished(&base, a3.get("id").unwrap().as_u64().unwrap());
        assert_eq!(
            doc.get_path(&["job", "state"]).unwrap().as_str(),
            Some("done")
        );
        shut_down(daemon);
    }

    /// The tentpole guarantee: every `serve.*` site, hit with every action,
    /// degrades into a well-formed response or a structured failed-job
    /// record — and the daemon then completes a clean follow-up job.
    #[test]
    fn fault_matrix_every_site_and_action_stays_contained() {
        let _scenario = failpoint::scenario();
        for &site in SERVE_FAILPOINTS {
            for action in [
                Action::Error,
                Action::Panic,
                Action::Delay(Duration::from_millis(20)),
            ] {
                let daemon = Daemon::start(test_cfg()).unwrap();
                let base = daemon.url();
                failpoint::configure_once(site, action.clone());
                let outcome = http_post(
                    &format!("{base}/jobs"),
                    "application/json",
                    submit_body("faulted", &[]).as_bytes(),
                );
                match (site, action.clone()) {
                    // Admission-path faults reject the submission itself.
                    ("serve.admission" | "serve.queue", Action::Error) => {
                        let (status, text) = outcome.unwrap();
                        assert_eq!(status, 503, "{site}: {text}");
                        assert!(text.contains("fault_injected"), "{site}: {text}");
                    }
                    ("serve.admission" | "serve.queue", Action::Panic) => {
                        // The listener's catch_unwind downgrades the panic.
                        let (status, text) = outcome.unwrap();
                        assert_eq!(status, 500, "{site}: {text}");
                        assert!(text.contains("internal"), "{site}: {text}");
                    }
                    // A job-spawn fault is the job's problem, not the
                    // daemon's: accepted, then a structured failed record.
                    ("serve.job.spawn", Action::Error | Action::Panic) => {
                        let (status, accepted) = outcome.unwrap();
                        let accepted = Json::parse(accepted.trim()).unwrap();
                        assert_eq!(status, 202, "{site}");
                        let id = accepted.get("id").unwrap().as_u64().unwrap();
                        let doc = wait_finished(&base, id);
                        assert_eq!(
                            doc.get_path(&["job", "state"]).unwrap().as_str(),
                            Some("failed"),
                            "{site}: {doc:?}"
                        );
                        let error = doc
                            .get_path(&["job", "error"])
                            .and_then(Json::as_str)
                            .unwrap();
                        assert!(error.contains("injected"), "{site}: {error}");
                    }
                    // A response-write fault loses that one response; the
                    // job itself is unaffected.
                    ("serve.response.write", Action::Error | Action::Panic) => {
                        assert!(outcome.is_err(), "{site}: {outcome:?}");
                    }
                    // Delays are slow paths, not failures.
                    (_, Action::Delay(_)) => {
                        let (status, accepted) = outcome.unwrap();
                        assert_eq!(status, 202, "{site}");
                        let accepted = Json::parse(accepted.trim()).unwrap();
                        let id = accepted.get("id").unwrap().as_u64().unwrap();
                        let doc = wait_finished(&base, id);
                        assert_eq!(
                            doc.get_path(&["job", "state"]).unwrap().as_str(),
                            Some("done"),
                            "{site}: {doc:?}"
                        );
                    }
                    other => unreachable!("unmapped matrix cell {other:?}"),
                }
                // No cross-job leakage: with the site disarmed (configured
                // once), a clean job must run to completion.
                let (status, accepted) = post_job(&base, &submit_body("clean", &[]));
                assert_eq!(status, 202, "{site}/{action:?}: daemon stopped admitting");
                let id = accepted.get("id").unwrap().as_u64().unwrap();
                let doc = wait_finished(&base, id);
                assert_eq!(
                    doc.get_path(&["job", "state"]).unwrap().as_str(),
                    Some("done"),
                    "{site}/{action:?}: {doc:?}"
                );
                shut_down(daemon);
            }
        }
    }

    /// A job mined through the daemon must reproduce the one-shot `mine`
    /// report byte-for-byte across every deterministic section.
    #[test]
    fn serve_reports_match_one_shot_mine_sections() {
        let dir = std::env::temp_dir().join(format!("tricluster-serve-det-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("table1.tsv");
        std::fs::write(&data, table1_tsv()).unwrap();
        let oneshot_path = dir.join("oneshot.json");
        crate::commands::mine(&[
            data.to_str().unwrap().to_string(),
            "--report-json".into(),
            oneshot_path.to_str().unwrap().to_string(),
        ])
        .unwrap();
        let oneshot = Json::parse(std::fs::read_to_string(&oneshot_path).unwrap().trim()).unwrap();

        let daemon = Daemon::start(test_cfg()).unwrap();
        let base = daemon.url();
        let (status, accepted) = post_job(&base, &submit_body("det", &[]));
        assert_eq!(status, 202);
        let doc = wait_finished(&base, accepted.get("id").unwrap().as_u64().unwrap());
        let served = doc.get("report").unwrap();

        for section in [
            &["clusters"][..],
            &["truncated"],
            &["metrics"],
            &["report", "counters"],
            &["histograms"],
            &["search_space"],
            &["memory"],
        ] {
            let a = oneshot.get_path(section).map(Json::render);
            let b = served.get_path(section).map(Json::render);
            assert!(a.is_some(), "one-shot report lacks section {section:?}");
            assert_eq!(a, b, "section {section:?} diverges between serve and mine");
        }
        shut_down(daemon);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drain_finishes_queued_jobs_and_flushes_the_ledger() {
        let dir =
            std::env::temp_dir().join(format!("tricluster-serve-drain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let daemon = Daemon::start(ServeConfig {
            ledger_dir: Some(dir.to_str().unwrap().to_string()),
            ..test_cfg()
        })
        .unwrap();
        let base = daemon.url();
        let (_, a1) = post_job(&base, &submit_body("one", &[]));
        let (_, a2) = post_job(&base, &submit_body("two", &[]));
        assert!(a1.get("id").is_some() && a2.get("id").is_some());
        // Drain immediately: both jobs (likely one queued) must still
        // complete and be archived before the daemon exits.
        let (status, text) = http_post(
            &format!("{base}/shutdown"),
            "application/json",
            b"{\"mode\":\"drain\"}",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(text.contains("\"draining\":true"), "{text}");
        // New submissions are shed while draining.
        let (status, text) = http_post(&format!("{base}/jobs"), "application/json", b"{}").unwrap();
        assert_eq!(status, 503, "{text}");
        assert!(text.contains("draining"), "{text}");
        daemon.wait();
        let ledger = Ledger::open(&dir).unwrap();
        let entries = ledger.list().unwrap();
        assert_eq!(entries.len(), 2, "drain must flush every completed job");
        assert!(entries.iter().all(|e| e.kind == "serve"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// One float sample from an OpenMetrics text body, by exact name.
    fn metric_value(text: &str, name: &str) -> Option<f64> {
        text.lines().find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .and_then(|v| v.parse().ok())
        })
    }

    /// Scrapes `/metrics` until `name` reaches `want` (counters bump just
    /// after the job's state flips, so one fetch could race).
    fn wait_metric(base: &str, name: &str, want: f64) -> String {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (status, text) = http_get(&format!("{base}/metrics")).unwrap();
            assert_eq!(status, 200, "{text}");
            if metric_value(&text, name) == Some(want) {
                return text;
            }
            assert!(
                Instant::now() < deadline,
                "{name} never reached {want}:\n{text}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// The tentpole surface: daemon-lifetime metrics accumulate across
    /// jobs and expose counters, latency histograms, and cache gauges.
    #[test]
    fn metrics_endpoint_aggregates_across_jobs() {
        let daemon = Daemon::start(test_cfg()).unwrap();
        let base = daemon.url();
        for label in ["first", "second"] {
            let (status, accepted) = post_job(&base, &submit_body(label, &[]));
            assert_eq!(status, 202);
            wait_finished(&base, accepted.get("id").unwrap().as_u64().unwrap());
        }
        let text = wait_metric(&base, "tricluster_serve_jobs_completed_total", 2.0);
        assert_eq!(text.lines().last(), Some("# EOF"));
        assert_eq!(
            metric_value(&text, "tricluster_serve_jobs_accepted_total"),
            Some(2.0),
            "{text}"
        );
        // Never-touched counters stay out of the exposition entirely.
        assert_eq!(
            metric_value(&text, "tricluster_serve_jobs_failed_total").unwrap_or(0.0),
            0.0
        );
        assert_eq!(
            metric_value(&text, "tricluster_serve_job_queue_wait_seconds_count"),
            Some(2.0)
        );
        assert_eq!(
            metric_value(&text, "tricluster_serve_job_run_seconds_count"),
            Some(2.0)
        );
        // Identical submissions: the second parse must have hit the cache.
        assert!(
            metric_value(&text, "tricluster_serve_cache_hits").unwrap() >= 1.0,
            "{text}"
        );
        assert!(metric_value(&text, "tricluster_serve_cache_misses").unwrap() >= 1.0);
        assert_eq!(
            metric_value(&text, "tricluster_serve_queue_depth"),
            Some(0.0)
        );
        assert_eq!(
            metric_value(&text, "tricluster_serve_workers_busy"),
            Some(0.0)
        );
        assert_eq!(
            metric_value(&text, "tricluster_serve_jobs_retained"),
            Some(2.0)
        );
        assert!(metric_value(&text, "tricluster_serve_http_requests_total").unwrap() >= 4.0);
        // The run histogram is cumulative: its +Inf bucket equals _count.
        assert!(
            text.contains("tricluster_serve_job_run_seconds_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        shut_down(daemon);
    }

    /// Satellite e2e: with a Delay failpoint holding the single worker
    /// inside job 1, job 2's time on the queue must land in the
    /// queue-wait histogram.
    #[test]
    fn queue_wait_histogram_grows_when_the_queue_backs_up() {
        let _scenario = failpoint::scenario();
        failpoint::configure_once("serve.job.spawn", Action::Delay(Duration::from_millis(300)));
        let daemon = Daemon::start(test_cfg()).unwrap();
        let base = daemon.url();
        let (_, a1) = post_job(&base, &submit_body("held", &[]));
        let (_, a2) = post_job(&base, &submit_body("waiting", &[]));
        wait_finished(&base, a1.get("id").unwrap().as_u64().unwrap());
        wait_finished(&base, a2.get("id").unwrap().as_u64().unwrap());
        let text = wait_metric(&base, "tricluster_serve_job_queue_wait_seconds_count", 2.0);
        let sum = metric_value(&text, "tricluster_serve_job_queue_wait_seconds_sum").unwrap();
        assert!(
            sum >= 0.25,
            "job 2 queued behind a 300ms delay, yet queue-wait sum is {sum}s:\n{text}"
        );
        shut_down(daemon);
    }

    /// One request ID ties the whole submission together: the 202 body,
    /// the job summary, the report's `serve` section, the ledger index
    /// entry, the archived Chrome trace, and the access-log record.
    #[test]
    fn request_ids_thread_through_report_ledger_trace_and_access_log() {
        let dir = std::env::temp_dir().join(format!("tricluster-serve-rid-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let access = dir.join("access.jsonl");
        let daemon = Daemon::start(ServeConfig {
            ledger_dir: Some(dir.to_str().unwrap().to_string()),
            access_log: Some(access.to_str().unwrap().to_string()),
            ..test_cfg()
        })
        .unwrap();
        let base = daemon.url();
        let (status, accepted) = post_job(&base, &submit_body("audited", &[]));
        assert_eq!(status, 202);
        let id = accepted.get("id").unwrap().as_u64().unwrap();
        let rid = accepted
            .get("request_id")
            .expect("acceptance carries the request id")
            .as_u64()
            .unwrap();
        assert!(rid >= 1);

        let doc = wait_finished(&base, id);
        assert_eq!(
            doc.get_path(&["job", "request_id"]).and_then(Json::as_u64),
            Some(rid)
        );
        assert_eq!(
            doc.get_path(&["report", "serve", "request_id"])
                .and_then(Json::as_u64),
            Some(rid),
            "report carries its originating request id"
        );
        assert_eq!(
            doc.get_path(&["report", "serve", "job_id"])
                .and_then(Json::as_u64),
            Some(id)
        );
        shut_down(daemon);

        // Ledger: the index entry lifts the id; the trace carries it plus
        // the lifecycle instants (queue wait is visible on the trace).
        let ledger = Ledger::open(&dir).unwrap();
        let entries = ledger.list().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].request_id, Some(rid));
        let trace_path = ledger.trace_path(&entries[0].id);
        assert!(trace_path.is_file(), "served jobs archive their trace");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains(&format!("\"request_id\":{rid}")), "{trace}");
        for instant in [
            "serve.job.enqueued",
            "serve.job.started",
            "serve.job.finished",
        ] {
            assert!(trace.contains(instant), "trace lacks {instant}");
        }

        // Access log: one whole-line JSON record per request; the
        // submission's record carries the same id, the job id, and the
        // clamp verdict.
        let log = std::fs::read_to_string(&access).unwrap();
        let submit_record = log
            .lines()
            .map(|l| Json::parse(l).expect("access log lines are JSON"))
            .find(|r| r.get("request_id").and_then(Json::as_u64) == Some(rid))
            .expect("submission request logged");
        assert_eq!(
            submit_record.get("method").and_then(Json::as_str),
            Some("POST")
        );
        assert_eq!(
            submit_record.get("path").and_then(Json::as_str),
            Some("/jobs")
        );
        assert_eq!(
            submit_record.get("status").and_then(Json::as_u64),
            Some(202)
        );
        assert_eq!(submit_record.get("job_id").and_then(Json::as_u64), Some(id));
        assert_eq!(
            submit_record.get("clamped").and_then(Json::as_bool),
            Some(false)
        );
        assert!(submit_record.get("duration_secs").is_some());
        assert!(
            log.lines().count() >= 2,
            "status polls must be audited too:\n{log}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancel_shutdown_aborts_queued_jobs_quickly() {
        let _scenario = failpoint::scenario();
        // Hold the worker so the second job stays queued at shutdown time.
        failpoint::configure_once("serve.job.spawn", Action::Delay(Duration::from_millis(300)));
        let daemon = Daemon::start(test_cfg()).unwrap();
        let base = daemon.url();
        post_job(&base, &submit_body("running", &[]));
        post_job(&base, &submit_body("queued", &[]));
        let started = Instant::now();
        let (status, _) = http_post(
            &format!("{base}/shutdown"),
            "application/json",
            b"{\"mode\":\"cancel\"}",
        )
        .unwrap();
        assert_eq!(status, 200);
        daemon.wait();
        // The queued job was dropped, the running one tripped: the drain
        // must not serialize two full delays.
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "cancel-mode shutdown took {:?}",
            started.elapsed()
        );
    }
}
