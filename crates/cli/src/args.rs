//! Minimal flag parser: `--name value` pairs, boolean switches, and
//! positional arguments, with typed accessors and unknown-flag rejection.
//!
//! Switches are listed without dashes (`"auto"` matches `--auto`) except
//! short switches, which are listed verbatim (`"-v"` matches `-v`); query
//! both with the spelling used in the list ([`Args::has`]).

use std::collections::HashMap;

#[derive(Debug)]
pub struct Args {
    pub positional: Vec<String>,
    flags: HashMap<String, Vec<String>>,
    switches: Vec<String>,
}

/// Parses `argv` given the set of value-taking flags (`takes_value`) and
/// boolean switches. `arity` maps a flag to how many values it consumes
/// (default 1 for value flags).
pub fn parse(
    argv: &[String],
    value_flags: &[(&str, usize)],
    switch_flags: &[&str],
) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut flags: HashMap<String, Vec<String>> = HashMap::new();
    let mut switches: Vec<String> = Vec::new();
    // Repeating a flag is rejected rather than silently last-wins: a
    // command line with `--threads 2 ... --threads 8` is almost always an
    // editing accident, and which value applied was previously invisible.
    let seen = |switches: &[String], flags: &HashMap<String, Vec<String>>, name: &str| {
        if switches.iter().any(|s| s == name) || flags.contains_key(name) {
            Err(format!("--{name} given more than once"))
        } else {
            Ok(())
        }
    };
    let mut i = 0;
    while i < argv.len() {
        let tok = &argv[i];
        // Short switches (e.g. `-v`) are listed with their dash; anything
        // else starting with a single dash stays positional for
        // compatibility (negative numbers, `-`-prefixed paths).
        if !tok.starts_with("--") && switch_flags.contains(&tok.as_str()) {
            if switches.contains(tok) {
                return Err(format!("{tok} given more than once"));
            }
            switches.push(tok.clone());
            i += 1;
            continue;
        }
        if let Some(name) = tok.strip_prefix("--") {
            // `--name=value`: switches accept an optional inline value
            // (`--progress=0.5` is both the switch and its setting);
            // single-value flags accept it as an alternative spelling.
            if let Some((name, value)) = name.split_once('=') {
                if switch_flags.contains(&name) {
                    seen(&switches, &flags, name)?;
                    switches.push(name.to_string());
                    flags.insert(name.to_string(), vec![value.to_string()]);
                    i += 1;
                    continue;
                }
                match value_flags.iter().find(|(f, _)| *f == name) {
                    Some(&(_, 1)) => {
                        seen(&switches, &flags, name)?;
                        flags.insert(name.to_string(), vec![value.to_string()]);
                        i += 1;
                        continue;
                    }
                    Some(&(_, arity)) => {
                        return Err(format!(
                            "--{name} expects {arity} values; --{name}=... takes only one"
                        ));
                    }
                    None => return Err(format!("unknown flag --{name}")),
                }
            }
            if switch_flags.contains(&name) {
                seen(&switches, &flags, name)?;
                switches.push(name.to_string());
                i += 1;
                continue;
            }
            let Some(&(_, arity)) = value_flags.iter().find(|(f, _)| *f == name) else {
                return Err(format!("unknown flag --{name}"));
            };
            seen(&switches, &flags, name)?;
            let mut values = Vec::with_capacity(arity);
            for k in 0..arity {
                let Some(v) = argv.get(i + 1 + k) else {
                    return Err(format!("--{name} expects {arity} value(s)"));
                };
                values.push(v.clone());
            }
            flags.insert(name.to_string(), values);
            i += 1 + arity;
        } else {
            positional.push(tok.clone());
            i += 1;
        }
    }
    Ok(Args {
        positional,
        flags,
        switches,
    })
}

impl Args {
    pub fn get_f64(&self, name: &str) -> Result<Option<f64>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v[0]
                .parse::<f64>()
                .map(Some)
                .map_err(|_| format!("--{name}: {:?} is not a number", v[0])),
        }
    }

    pub fn get_usize(&self, name: &str) -> Result<Option<usize>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v[0]
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("--{name}: {:?} is not an integer", v[0])),
        }
    }

    pub fn get_u64(&self, name: &str) -> Result<Option<u64>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v[0]
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("--{name}: {:?} is not an integer", v[0])),
        }
    }

    pub fn get_pair_f64(&self, name: &str) -> Result<Option<(f64, f64)>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => {
                let a = v[0]
                    .parse::<f64>()
                    .map_err(|_| format!("--{name}: {:?} is not a number", v[0]))?;
                let b = v[1]
                    .parse::<f64>()
                    .map_err(|_| format!("--{name}: {:?} is not a number", v[1]))?;
                Ok(Some((a, b)))
            }
        }
    }

    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|v| v[0].as_str())
    }

    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positional_and_flags() {
        let a = parse(
            &argv(&["file.tsv", "--eps", "0.01", "--auto"]),
            &[("eps", 1)],
            &["auto"],
        )
        .unwrap();
        assert_eq!(a.positional, vec!["file.tsv"]);
        assert_eq!(a.get_f64("eps").unwrap(), Some(0.01));
        assert!(a.has("auto"));
        assert!(!a.has("names"));
        assert_eq!(a.get_f64("missing").unwrap(), None);
    }

    #[test]
    fn short_switches_and_string_flags() {
        let a = parse(
            &argv(&["f.tsv", "-vv", "--report-json", "out.json"]),
            &[("report-json", 1)],
            &["-v", "-vv"],
        )
        .unwrap();
        assert_eq!(a.positional, vec!["f.tsv"]);
        assert!(a.has("-vv"));
        assert!(!a.has("-v"));
        assert_eq!(a.get_str("report-json"), Some("out.json"));
        // unlisted single-dash tokens stay positional
        let a = parse(&argv(&["-1", "x"]), &[], &["-v"]).unwrap();
        assert_eq!(a.positional, vec!["-1", "x"]);
    }

    #[test]
    fn multi_value_flags() {
        let a = parse(&argv(&["--merge", "0.2", "0.1"]), &[("merge", 2)], &[]).unwrap();
        assert_eq!(a.get_pair_f64("merge").unwrap(), Some((0.2, 0.1)));
    }

    #[test]
    fn equals_spelling_for_value_flags_and_switches() {
        // value flag via `=`
        let a = parse(&argv(&["--eps=0.02"]), &[("eps", 1)], &[]).unwrap();
        assert_eq!(a.get_f64("eps").unwrap(), Some(0.02));
        // switch with optional inline value: both `has` and the value work
        let a = parse(&argv(&["--progress=0.5"]), &[], &["progress"]).unwrap();
        assert!(a.has("progress"));
        assert_eq!(a.get_f64("progress").unwrap(), Some(0.5));
        // bare switch still has no value
        let a = parse(&argv(&["--progress"]), &[], &["progress"]).unwrap();
        assert!(a.has("progress"));
        assert_eq!(a.get_f64("progress").unwrap(), None);
        // `=` on a multi-value flag is rejected
        let e = parse(&argv(&["--merge=0.2"]), &[("merge", 2)], &[]).unwrap_err();
        assert!(e.contains("--merge"), "{e}");
        // unknown flag with `=` is rejected by its name
        let e = parse(&argv(&["--bogus=1"]), &[("eps", 1)], &[]).unwrap_err();
        assert!(e.contains("--bogus"), "{e}");
    }

    #[test]
    fn duplicate_flags_rejected() {
        // value flag repeated
        let e = parse(
            &argv(&["--threads", "2", "--threads", "8"]),
            &[("threads", 1)],
            &[],
        )
        .unwrap_err();
        assert!(
            e.contains("--threads") && e.contains("more than once"),
            "{e}"
        );
        // mixed spellings of the same flag
        let e = parse(&argv(&["--eps=0.01", "--eps", "0.02"]), &[("eps", 1)], &[]).unwrap_err();
        assert!(e.contains("--eps"), "{e}");
        // long switch repeated
        let e = parse(&argv(&["--auto", "--auto"]), &[], &["auto"]).unwrap_err();
        assert!(e.contains("--auto"), "{e}");
        // switch-with-inline-value repeated as bare switch
        let e = parse(&argv(&["--progress=0.5", "--progress"]), &[], &["progress"]).unwrap_err();
        assert!(e.contains("--progress"), "{e}");
        // short switch repeated
        let e = parse(&argv(&["-v", "-v"]), &[], &["-v"]).unwrap_err();
        assert!(e.contains("-v"), "{e}");
        // multi-value flag repeated
        let e = parse(
            &argv(&["--merge", "0.2", "0.1", "--merge", "0.3", "0.1"]),
            &[("merge", 2)],
            &[],
        )
        .unwrap_err();
        assert!(e.contains("--merge"), "{e}");
        // distinct short switches still coexist
        let a = parse(&argv(&["-v", "-vv"]), &[], &["-v", "-vv"]).unwrap();
        assert!(a.has("-v") && a.has("-vv"));
    }

    #[test]
    fn unknown_flag_rejected() {
        let e = parse(&argv(&["--bogus"]), &[("eps", 1)], &[]).unwrap_err();
        assert!(e.contains("--bogus"));
    }

    #[test]
    fn missing_value_rejected() {
        let e = parse(&argv(&["--eps"]), &[("eps", 1)], &[]).unwrap_err();
        assert!(e.contains("expects 1"));
    }

    #[test]
    fn bad_number_rejected() {
        let a = parse(&argv(&["--eps", "abc"]), &[("eps", 1)], &[]).unwrap();
        assert!(a.get_f64("eps").is_err());
    }
}
