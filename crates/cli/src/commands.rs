//! The `mine`, `synth`, `demo`, and `runs` subcommands.

use crate::args;
use std::fmt;
use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;
use std::time::Duration;
use tricluster_core::obs::httpd::{http_get, http_get_retry, MetricsServer};
use tricluster_core::obs::json::Json;
use tricluster_core::obs::ledger::{
    content_hash, diff_reports, DiffTolerances, IndexEntry, Ledger, NewEntry,
};
use tricluster_core::obs::metrics::Registry;
use tricluster_core::obs::progress::{Progress, ProgressSink, ProgressTicker};
use tricluster_core::obs::timeline::Timeline;
use tricluster_core::obs::{names, EventSink, Fanout, JsonLinesSink, NullSink, Recorder, Tee};
use tricluster_core::runreport;
use tricluster_core::{
    cluster_metrics_observed, mine_auto_observed, mine_shifting, Engine, FanoutMode, MergeParams,
    MineError, MiningResult, Params, TenantCaps,
};
use tricluster_matrix::{io, Labels, Matrix3};
use tricluster_synth::{generate, SynthSpec};

pub const USAGE: &str = "\
tricluster — mining coherent clusters in 3D microarray data (SIGMOD 2005)

USAGE:
  tricluster mine <stacked.tsv> [options]     mine a stacked-TSV 3D matrix
  tricluster synth <out.tsv> [options]        generate synthetic data
  tricluster demo [--export PATH]             run the paper's Table 1 example
                                              (or export it as a stacked TSV)
  tricluster runs <subcommand> ...            inspect an archived run ledger
  tricluster watch <URL> [options]            live-monitor a serving run
  tricluster serve <HOST:PORT> [options]      run the multi-tenant mining daemon
  tricluster submit <URL> <stacked.tsv> ...   submit a job to a serve daemon

MINE OPTIONS:
  --eps E          maximum ratio threshold ε             (default 0.01)
  --eps-time E     relaxed ε along the time dimension    (default: ε)
  --mx N           minimum genes per cluster             (default 3)
  --my N           minimum samples per cluster           (default 3)
  --mz N           minimum time points per cluster       (default 2)
  --delta-x D      max value range across genes per column
  --delta-y D      max value range across samples per row
  --delta-z D      max value range across times per fiber
  --merge ETA GAMMA    enable merge/delete post-processing
  --max-candidates N   bound the DFS search (truncates on exhaustion)
  --deadline SECS  wall-clock budget; on expiry the run stops cooperatively
                   and reports the clusters mined so far as truncated
  --max-memory B   logical-bytes budget for mined structures, with optional
                   K/M/G suffix (e.g. 64M); on exhaustion later slices are
                   dropped deterministically and the run reports truncated
  --threads N      worker threads for the per-slice phases (default: cores)
  --fanout MODE    parallel granularity: auto | slice | pair (default auto;
                   pair = intra-slice pair/branch-level fan-out for inputs
                   with fewer time slices than threads)
  --shifting       mine shifting (additive) clusters via Lemma 2
  --auto           transpose so the largest dimension is mined as genes
  --names          print gene/sample/time names instead of indices
  --csv            emit clusters as CSV (cluster,shape,type,members)
  -v, -vv          phase timings (-vv adds counters, histograms, and the
                   search-space profile) on stderr
  --trace          stream per-decision trace events as JSON lines on stderr
                   (flushed per event)
  --explain        print the search-space profile (nodes expanded, prunes by
                   reason, dedup hits, histograms, memory) as JSON on stdout
  --report-json PATH   write the structured run report (spans, counters,
                       histograms, memory, search space) as JSON
  --trace-out PATH     write a timeline of the run in Chrome Trace Event
                       format (open in Perfetto or chrome://tracing; one
                       track per worker thread)
  --flame-out PATH     write the run's timeline as folded flamegraph stacks
                       (`phase;span;span N` self-time lines in microseconds,
                       loadable by inferno, speedscope, flamegraph.pl)
  --ledger DIR         archive the run (v2 report, timeline artifacts when
                       traced, dataset/params content hashes, build metadata)
                       into the append-only run ledger at DIR
  --progress[=SECS]    emit live progress snapshots as JSON lines on stderr
                       every SECS seconds (default 1.0): phase, slices/pairs/
                       branches done vs. total, candidates, bytes, budgets
  --metrics-addr HOST:PORT   serve live run metrics over HTTP for the
                       lifetime of the mine (port 0 picks one; the bound
                       address is printed on stderr): GET /metrics is
                       OpenMetrics text exposition (counters, phase timing
                       histograms, progress/budget gauges, live/peak heap
                       bytes under --features track-alloc), GET /progress a
                       JSON gauge snapshot, GET /healthz a liveness probe

WATCH OPTIONS (tricluster watch http://HOST:PORT):
  --interval SECS  poll /progress every SECS seconds (default 1.0) and
                   render a live one-line status; exits 0 when the watched
                   run's server goes away after at least one snapshot
  --once           print a single status snapshot and exit
  --get PATH       print one raw HTTP response body from URL+PATH (e.g.
                   --get /metrics scrapes a mine's — or a serve daemon's —
                   OpenMetrics exposition without external tooling)
  --jobs           print a serve daemon's job table (GET /jobs) and exit,
                   headed by its service counters and cache effectiveness

SERVE OPTIONS (tricluster serve HOST:PORT; port 0 picks one, the bound
address is printed on stderr; POST /shutdown drains the daemon):
  --workers N          concurrent mining jobs (default 2)
  --queue-depth N      most jobs waiting in the queue; further submissions
                       are shed with a machine-readable 429 (default 16)
  --memory-budget B    aggregate logical-bytes admission budget across all
                       queued + running matrices (K/M/G suffix allowed)
  --cap-deadline SECS, --cap-memory B, --cap-candidates N, --cap-threads N
                       server-wide ceilings clamped onto every job's
                       requested per-job budgets
  --max-body B         largest accepted request body (default 64M)
  --ledger DIR         archive every finished job's v2 report (plus its
                       Chrome trace with job-lifecycle instants) into the
                       run ledger at DIR (kind \"serve\"), flushed per job
  --cache-entries N    parsed datasets kept by the content-hash cache
                       (default 8; 0 disables)
  --access-log PATH    append one JSONL audit record per HTTP request:
                       request id, method, path, status, bytes, duration,
                       clamp verdict, shed reason. GET /metrics exposes the
                       daemon-lifetime counters, queue-wait/run/archive
                       histograms, and live gauges as OpenMetrics text

SUBMIT OPTIONS (tricluster submit http://HOST:PORT DATA.tsv):
  mine param flags     --eps/--mx/--my/--mz/--merge/--deadline/... forwarded
                       verbatim; the daemon parses them exactly like `mine`
  --label L            free-form job label for listings
  --by-path            send the dataset path instead of its bytes (the
                       daemon must see the same filesystem)
  --wait [--poll SECS] block until the job finishes (poll default 0.2s)
  --report-json PATH   with --wait: write the finished job's v2 report
  --cancel ID          cancel a queued or running job instead of submitting
  --shutdown MODE      drain | cancel: gracefully shut the daemon down

SYNTH OPTIONS:
  --genes N --samples N --times N --clusters N
  --noise F --overlap F --seed N

RUNS SUBCOMMANDS (over a --ledger DIR archive):
  runs list <DIR> [--ids]            list archived runs (--ids: ids only)
  runs show <DIR> <ID> [--json]      summarize one run (--json: raw report);
                                     ID may be any unique id prefix
  runs diff <DIR> <BASE> <CURRENT>   compare two archived mine runs metric by
                                     metric with regression verdicts; exits 1
                                     when any metric regresses. Tolerances:
                                     --time-tol R (default 0.5), --time-floor
                                     SECS (0.05), --mem-tol R (0.25),
                                     --mem-floor BYTES[K/M/G] (1M)
  runs top <DIR> [--metric KEY] [--limit N]
                                     rank runs by a dotted report metric
                                     (default timings.total_secs)

EXIT CODES:
  0   success (including budget-truncated runs, which are reported as such)
  1   mining error: unreadable or non-finite input, escaped worker panic
  2   usage error: unknown command/flag or invalid parameter value
";

/// A CLI failure, split by who is at fault so `main` can pick the exit code:
/// `Usage` (exit 2) means the invocation itself is wrong — unknown flag,
/// unparsable value, parameters rejected by [`Params::validate`] — while
/// `Run` (exit 1) means a well-formed invocation failed at runtime (missing
/// or malformed input file, non-finite cells, escaped panic).
#[derive(Debug)]
pub enum CliError {
    Usage(String),
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Run(m) => f.write_str(m),
        }
    }
}

impl CliError {
    /// Classifies a mining failure: parameter rejections are the caller's
    /// fault (exit 2), everything else is a runtime error (exit 1).
    fn from_mine(e: MineError) -> Self {
        match e {
            MineError::InvalidParams(_) => CliError::Usage(e.to_string()),
            _ => CliError::Run(e.to_string()),
        }
    }
}

/// Parses a byte count with an optional binary `K`/`M`/`G` suffix
/// (case-insensitive, trailing `b` allowed: `64M`, `2gb`, `131072`).
pub(crate) fn parse_bytes(flag: &str, s: &str) -> Result<u64, String> {
    let lower = s.trim().to_ascii_lowercase();
    let (digits, mult) = ["gb", "g", "mb", "m", "kb", "k", "b", ""]
        .iter()
        .find_map(|suf| {
            let mult = match suf.chars().next() {
                Some('g') => 1u64 << 30,
                Some('m') => 1 << 20,
                Some('k') => 1 << 10,
                _ => 1,
            };
            lower.strip_suffix(suf).map(|d| (d, mult))
        })
        .unwrap_or((lower.as_str(), 1));
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| format!("--{flag} expects BYTES with an optional K/M/G suffix, got {s:?}"))
}

pub fn mine_params_from(a: &args::Args) -> Result<Params, String> {
    let mut b = Params::builder()
        .epsilon(a.get_f64("eps")?.unwrap_or(0.01))
        .min_genes(a.get_usize("mx")?.unwrap_or(3))
        .min_samples(a.get_usize("my")?.unwrap_or(3))
        .min_times(a.get_usize("mz")?.unwrap_or(2));
    if let Some(e) = a.get_f64("eps-time")? {
        b = b.epsilon_time(e);
    }
    if let Some(d) = a.get_f64("delta-x")? {
        b = b.delta_gene(d);
    }
    if let Some(d) = a.get_f64("delta-y")? {
        b = b.delta_sample(d);
    }
    if let Some(d) = a.get_f64("delta-z")? {
        b = b.delta_time(d);
    }
    if let Some((eta, gamma)) = a.get_pair_f64("merge")? {
        b = b.merge(MergeParams { eta, gamma });
    }
    if let Some(n) = a.get_u64("max-candidates")? {
        b = b.max_candidates(n);
    }
    if let Some(secs) = a.get_f64("deadline")? {
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!(
                "--deadline expects a non-negative number of seconds, got {secs}"
            ));
        }
        b = b.deadline(Duration::from_secs_f64(secs));
    }
    if let Some(s) = a.get_str("max-memory") {
        b = b.max_memory(parse_bytes("max-memory", s)?);
    }
    if let Some(n) = a.get_usize("threads")? {
        b = b.threads(n);
    }
    if let Some(s) = a.get_str("fanout") {
        let mode = FanoutMode::parse(s)
            .ok_or_else(|| format!("--fanout must be auto, slice, or pair; got {s:?}"))?;
        b = b.fanout(mode);
    }
    b.build().map_err(|e| e.to_string())
}

pub fn mine(argv: &[String]) -> Result<(), CliError> {
    let a = args::parse(
        argv,
        &[
            ("eps", 1),
            ("eps-time", 1),
            ("mx", 1),
            ("my", 1),
            ("mz", 1),
            ("delta-x", 1),
            ("delta-y", 1),
            ("delta-z", 1),
            ("merge", 2),
            ("max-candidates", 1),
            ("deadline", 1),
            ("max-memory", 1),
            ("threads", 1),
            ("fanout", 1),
            ("report-json", 1),
            ("trace-out", 1),
            ("flame-out", 1),
            ("ledger", 1),
            ("metrics-addr", 1),
        ],
        &[
            "shifting", "auto", "names", "csv", "trace", "explain", "progress", "-v", "-vv",
        ],
    )
    .map_err(CliError::Usage)?;
    let Some(path) = a.positional.first() else {
        return Err(CliError::Usage(
            "mine: missing input file (stacked TSV)".into(),
        ));
    };
    let params = mine_params_from(&a).map_err(CliError::Usage)?;
    let verbosity = if a.has("-vv") {
        2u8
    } else if a.has("-v") {
        1
    } else {
        0
    };
    let report_json = a.get_str("report-json").map(str::to_string);
    let trace_out = a.get_str("trace-out").map(str::to_string);
    let flame_out = a.get_str("flame-out").map(str::to_string);
    let ledger_dir = a.get_str("ledger").map(str::to_string);
    let metrics_addr = a.get_str("metrics-addr").map(str::to_string);
    // `--progress` alone means the default heartbeat; `--progress=SECS`
    // overrides the interval. Parse (and reject) up front so a bad value is
    // a usage error before any I/O.
    let progress_interval = if a.has("progress") {
        let secs = a
            .get_f64("progress")
            .map_err(CliError::Usage)?
            .unwrap_or(1.0);
        if !secs.is_finite() || secs <= 0.0 {
            return Err(CliError::Usage(format!(
                "--progress expects a positive number of seconds, got {secs}"
            )));
        }
        Some(Duration::from_secs_f64(secs))
    } else {
        None
    };
    if a.has("shifting")
        && (report_json.is_some()
            || a.has("trace")
            || a.has("explain")
            || trace_out.is_some()
            || flame_out.is_some()
            || ledger_dir.is_some()
            || progress_interval.is_some()
            || metrics_addr.is_some())
    {
        return Err(CliError::Usage(
            "--report-json/--trace/--explain/--trace-out/--flame-out/--ledger/--progress\
             /--metrics-addr are not supported with --shifting"
                .into(),
        ));
    }

    // One-shot frontend over the same Engine the serve daemon uses: the
    // bytes are read once, and the content hash the ledger wants comes for
    // free with the parse. No cache — a single dataset has no reuse.
    let engine = Engine::with_cache_entries(TenantCaps::unlimited(), 0);
    let bytes =
        std::fs::read(path).map_err(|e| CliError::Run(format!("cannot open {path}: {e}")))?;
    let dataset = engine
        .dataset_from_bytes(&bytes)
        .map_err(|e| CliError::Run(format!("{path}: {e}")))?;
    let matrix = &dataset.matrix;
    let labels = &dataset.labels;
    eprintln!(
        "matrix: {} genes x {} samples x {} times",
        matrix.n_genes(),
        matrix.n_samples(),
        matrix.n_times()
    );

    let start = std::time::Instant::now();
    if a.has("shifting") {
        let (clusters, _) = mine_shifting(matrix, &params).map_err(CliError::from_mine)?;
        eprintln!(
            "{} shifting clusters in {:?}",
            clusters.len(),
            start.elapsed()
        );
        for (i, sc) in clusters.iter().enumerate() {
            print_cluster(i, &sc.cluster, labels, a.has("names"));
            let offs: Vec<String> = sc
                .sample_offsets
                .iter()
                .map(|o| format!("{o:+.3}"))
                .collect();
            println!("  offsets: [{}]", offs.join(", "));
        }
        return Ok(());
    }
    // Trace events stream to stderr as they happen (flushed per event so a
    // killed run keeps its tail); aggregate data comes out of the result's
    // embedded report. Histogram collection costs bucket work on the DFS hot
    // paths, so it is switched on only when some output will show it. The
    // timeline and progress sinks are pure discovery vehicles: they record
    // nothing through the event interface, the miner finds them via
    // `EventSink::timeline`/`EventSink::progress`.
    let want_hists = report_json.is_some() || a.has("explain") || verbosity >= 2;
    let trace_sink;
    let timeline = (trace_out.is_some() || flame_out.is_some()).then(Timeline::new);
    // `--metrics-addr` implies progress gauges even without `--progress`:
    // the `/progress` endpoint and the gauge exposition serve them live.
    let progress =
        (progress_interval.is_some() || metrics_addr.is_some()).then(|| Arc::new(Progress::new()));
    let progress_sink;
    // The metrics registry aggregates whatever the run publishes; the
    // scrape server holds its own handle, so the registry keeps answering
    // (with the completed run's totals) until the server shuts down.
    let registry = metrics_addr.as_ref().map(|_| {
        let registry = Arc::new(Registry::new());
        if let Some(p) = &progress {
            registry.attach_progress(p.clone());
        }
        registry
    });
    // Held for the rest of the run; dropping it (any exit path) stops the
    // serve thread, so the endpoint dies with the mine.
    let _metrics_server = match (&metrics_addr, &registry) {
        (Some(addr), Some(registry)) => {
            let server = MetricsServer::serve(addr, registry.clone())
                .map_err(|e| CliError::Run(format!("cannot serve metrics on {addr}: {e}")))?;
            eprintln!("metrics: serving on {}", server.url());
            Some(server)
        }
        _ => None,
    };
    let mut sinks: Vec<&dyn EventSink> = Vec::new();
    if a.has("trace") {
        trace_sink = JsonLinesSink::stderr();
        sinks.push(&trace_sink);
    }
    if want_hists {
        sinks.push(&HistogramTap);
    }
    if let Some(t) = &timeline {
        sinks.push(t);
    }
    if let Some(p) = &progress {
        progress_sink = ProgressSink(p.clone());
        sinks.push(&progress_sink);
    }
    if let Some(r) = &registry {
        sinks.push(&**r);
    }
    let fanout_sink;
    let sink: &dyn EventSink = match sinks.len() {
        0 => &NullSink,
        1 => sinks[0],
        _ => {
            fanout_sink = Fanout(sinks);
            &fanout_sink
        }
    };
    // The heartbeat lives exactly as long as the mining call: dropping it
    // stops the thread after one final snapshot.
    let ticker = match (&progress, progress_interval) {
        (Some(p), Some(interval)) => Some(ProgressTicker::start(
            p.clone(),
            interval,
            Box::new(std::io::stderr()),
        )),
        _ => None,
    };
    let result = if a.has("auto") {
        mine_auto_observed(matrix, &params, sink)
    } else {
        // A one-shot run is a session with unlimited caps: identical code
        // path to a daemon job, minus the clamping.
        engine.session(&params).run(matrix, sink)
    };
    drop(ticker);
    // Write the trace before bailing on a mining error: a partial timeline
    // is most useful exactly when the run went wrong. The mining error
    // still wins if both fail.
    let trace_status = match (&timeline, &trace_out) {
        (Some(t), Some(out_path)) => {
            let trace = t.to_chrome_json().render_pretty() + "\n";
            Some(
                std::fs::write(out_path, trace)
                    .map(|()| eprintln!("timeline trace written to {out_path}"))
                    .map_err(|e| CliError::Run(format!("cannot write {out_path}: {e}"))),
            )
        }
        _ => None,
    };
    // The folded flamegraph gets the same treatment: written from whatever
    // the timeline captured even when mining failed.
    let flame_status = match (&timeline, &flame_out) {
        (Some(t), Some(out_path)) => Some(
            std::fs::write(out_path, t.to_folded())
                .map(|()| eprintln!("folded flamegraph stacks written to {out_path}"))
                .map_err(|e| CliError::Run(format!("cannot write {out_path}: {e}"))),
        ),
        _ => None,
    };
    let result = result.map_err(CliError::from_mine)?;
    if let Some(status) = trace_status {
        status?;
    }
    if let Some(status) = flame_status {
        status?;
    }
    let truncated_note = match result.truncation {
        Some(reason) => format!(" (TRUNCATED: {} budget exhausted)", reason.as_str()),
        None => String::new(),
    };
    eprintln!(
        "{} triclusters in {:?}{}",
        result.triclusters.len(),
        start.elapsed(),
        truncated_note
    );
    for f in &result.worker_failures {
        eprintln!("worker failure: {} [{}]: {}", f.phase, f.unit, f.message);
    }
    if verbosity > 0 {
        print_verbose(&result, verbosity);
    }
    // Metrics are computed once: observedly (so the report JSON carries the
    // metrics span/counters) when any report consumer is present — the
    // `--report-json` file or a `--ledger` archive — plainly otherwise.
    let mut report = result.report.clone();
    let met = if report_json.is_some() || ledger_dir.is_some() {
        let rec = Recorder::new();
        // Tee the metrics phase into the live registry too, so a final
        // scrape (the server outlives the mine) sees `phase.metrics`.
        let met = match &registry {
            Some(r) => {
                let tee = Tee(&rec, &**r);
                cluster_metrics_observed(matrix, &result.triclusters, &tee)
            }
            None => cluster_metrics_observed(matrix, &result.triclusters, &rec),
        };
        report.merge(&rec.snapshot());
        Some(met)
    } else {
        None
    };
    let doc = met
        .as_ref()
        .map(|m| runreport::report_to_json_v2(matrix, &result, &report, m));
    if let Some(out_path) = &report_json {
        let j = doc
            .as_ref()
            .expect("doc built whenever a report is written");
        std::fs::write(out_path, j.render_pretty() + "\n")
            .map_err(|e| CliError::Run(format!("cannot write {out_path}: {e}")))?;
    }
    if let Some(dir) = &ledger_dir {
        // The dataset hash covers the input bytes as given (computed once
        // at parse time by the engine), so two runs over the same file are
        // comparable even when labels differ in memory; the params hash
        // covers every knob that shapes the search.
        let dataset_hash = dataset.hash.clone();
        let params_hash = content_hash(format!("{params:?}").as_bytes());
        let trace_doc = timeline
            .as_ref()
            .map(|t| t.to_chrome_json().render_pretty() + "\n");
        let flame_doc = timeline.as_ref().map(|t| t.to_folded());
        let ledger = Ledger::open(dir)
            .map_err(|e| CliError::Run(format!("cannot open ledger {dir}: {e}")))?;
        let id = ledger
            .archive(&NewEntry {
                kind: "mine",
                label: Some(path.clone()),
                dataset_hash,
                params_hash,
                report: doc.as_ref().expect("doc built whenever a ledger is open"),
                trace: trace_doc.as_deref(),
                flame: flame_doc.as_deref(),
            })
            .map_err(|e| CliError::Run(format!("cannot archive run in {dir}: {e}")))?;
        eprintln!("run archived as {id} in {dir}");
    }
    if a.has("explain") {
        print!("{}", runreport::explain_json(&report).render_pretty());
        return Ok(());
    }
    if a.has("csv") {
        let mut out = std::io::stdout().lock();
        tricluster_core::report::write_csv(&mut out, matrix, &result.triclusters, 1e-9)
            .map_err(|e| CliError::Run(e.to_string()))?;
        return Ok(());
    }
    for (i, c) in result.triclusters.iter().enumerate() {
        print_cluster(i, c, labels, a.has("names"));
    }
    let met = met.unwrap_or_else(|| result.metrics(matrix));
    println!("\n{met}");
    Ok(())
}

/// The `watch` subcommand: polls a serving run's `/progress` endpoint
/// (see `mine --metrics-addr`) and renders a live one-line status on
/// stdout. Exits 0 once the watched server goes away after at least one
/// successful snapshot — that is how a finished run looks from outside.
pub fn watch(argv: &[String]) -> Result<(), CliError> {
    let a = args::parse(argv, &[("interval", 1), ("get", 1)], &["once", "jobs"])
        .map_err(CliError::Usage)?;
    let Some(url) = a.positional.first() else {
        return Err(CliError::Usage(
            "watch: missing URL (as printed by mine --metrics-addr, \
             e.g. http://127.0.0.1:9185)"
                .into(),
        ));
    };
    let base = url.trim_end_matches('/').to_string();
    // `--get PATH`: one raw scrape, printed verbatim — gives scripts an
    // HTTP client with zero external tooling.
    if let Some(path) = a.get_str("get") {
        let path = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/{path}")
        };
        let (status, body) = http_get(&format!("{base}{path}")).map_err(CliError::Run)?;
        print!("{body}");
        return if status == 200 {
            Ok(())
        } else {
            Err(CliError::Run(format!("GET {path}: HTTP {status}")))
        };
    }
    let interval = a
        .get_f64("interval")
        .map_err(CliError::Usage)?
        .unwrap_or(1.0);
    if !interval.is_finite() || interval <= 0.0 {
        return Err(CliError::Usage(format!(
            "--interval expects a positive number of seconds, got {interval}"
        )));
    }
    // `--jobs`: one formatted listing of a serve daemon's job table,
    // headed by the daemon's service counters and cache effectiveness.
    if a.has("jobs") {
        let endpoint = format!("{base}/jobs");
        let (status, body) = http_get_retry(&endpoint, 8, Duration::from_millis(50))
            .into_result()
            .map_err(CliError::Run)?;
        if status != 200 {
            return Err(CliError::Run(format!("GET /jobs: HTTP {status}")));
        }
        let doc = Json::parse(body.trim())
            .map_err(|e| CliError::Run(format!("{endpoint}: unparseable listing: {e}")))?;
        if let Some(line) = render_service_line(&doc) {
            println!("{line}");
        }
        let jobs = doc
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or_else(|| CliError::Run(format!("{endpoint}: no jobs array in response")))?;
        if jobs.is_empty() {
            println!("no jobs");
            return Ok(());
        }
        for job in jobs {
            println!("{}", render_job_line(job));
        }
        return Ok(());
    }
    let endpoint = format!("{base}/progress");
    let mut seen = false;
    let mut width = 0usize;
    // Bounded retry absorbs the startup race against a just-spawned run
    // whose listener has not bound yet; after the first response, every
    // later refusal means the run ended.
    let mut response = http_get_retry(&endpoint, 8, Duration::from_millis(50)).into_result();
    loop {
        match response {
            Ok((200, body)) => {
                let line = Json::parse(body.trim())
                    .ok()
                    .as_ref()
                    .and_then(render_watch_line)
                    .ok_or_else(|| {
                        CliError::Run(format!("{endpoint}: unparseable progress snapshot"))
                    })?;
                seen = true;
                if a.has("once") {
                    println!("{line}");
                    return Ok(());
                }
                // Overwrite in place, blank-padding leftovers of a longer
                // previous line.
                let pad = width.saturating_sub(line.len());
                print!("\r{line}{:pad$}", "");
                let _ = std::io::Write::flush(&mut std::io::stdout());
                width = line.len();
            }
            Ok((status, _)) => {
                return Err(CliError::Run(format!(
                    "{endpoint}: HTTP {status} — is this a tricluster --metrics-addr endpoint?"
                )));
            }
            Err(e) => {
                if seen {
                    println!();
                    eprintln!("watch: {endpoint} went away; run ended");
                    return Ok(());
                }
                return Err(CliError::Run(format!("watch: {e}")));
            }
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
        response = http_get(&endpoint);
    }
}

/// The daemon-level header over a `GET /jobs` listing: lifecycle counters
/// plus dataset-cache effectiveness.
fn render_service_line(doc: &Json) -> Option<String> {
    let s = doc.get("service")?;
    let n = |key: &str| s.get(key).and_then(Json::as_u64).unwrap_or(0);
    let mut line = format!(
        "serve: queue {} | running {} | accepted {} done {} failed {} cancelled {}",
        n("queue_depth"),
        n("running"),
        n("accepted"),
        n("completed"),
        n("failed"),
        n("cancelled"),
    );
    if let Some(cache) = doc.get("dataset_cache") {
        let c = |key: &str| cache.get(key).and_then(Json::as_u64).unwrap_or(0);
        line.push_str(&format!(
            " | cache {} hit / {} miss / {} evicted",
            c("hits"),
            c("misses"),
            c("evictions"),
        ));
    }
    Some(line)
}

/// One line per job from a serve daemon's `GET /jobs` listing.
fn render_job_line(job: &Json) -> String {
    let id = job.get("id").and_then(Json::as_u64).unwrap_or(0);
    let state = job.get("state").and_then(Json::as_str).unwrap_or("?");
    let label = job.get("label").and_then(Json::as_str).unwrap_or("?");
    let mut line = format!("#{id:<4} {state:<10} {label}");
    if let Some(rid) = job.get("request_id").and_then(Json::as_u64) {
        line.push_str(&format!("  req {rid}"));
    }
    if let Some(clusters) = job.get("clusters").and_then(Json::as_u64) {
        line.push_str(&format!("  clusters {clusters}"));
    }
    if let Some(err) = job.get("error").and_then(Json::as_str) {
        line.push_str(&format!("  error: {err}"));
    }
    if let Some(reason) = job.get("truncation").and_then(Json::as_str) {
        line.push_str(&format!("  truncated: {reason}"));
    }
    if let Some(secs) = job.get("secs").and_then(Json::as_f64) {
        line.push_str(&format!("  ({secs:.2}s)"));
    }
    line
}

/// One status line from a `/progress` snapshot: phase, work done vs.
/// discovered, candidates, live logical bytes, budget headroom.
fn render_watch_line(snap: &Json) -> Option<String> {
    let p = snap.get("progress")?;
    let phase = p.get("phase")?.as_str()?;
    let elapsed = p.get("elapsed_secs")?.as_f64()?;
    let pair = |key: &str| -> Option<(u64, u64)> {
        Some((
            p.get_path(&[key, "done"])?.as_u64()?,
            p.get_path(&[key, "total"])?.as_u64()?,
        ))
    };
    let (slices_done, slices_total) = pair("slices")?;
    let (pairs_done, pairs_total) = pair("pairs")?;
    let (branches_done, branches_total) = pair("branches")?;
    let candidates = p.get("candidates")?.as_u64()?;
    let bytes = p.get("logical_bytes")?.as_u64()?;
    let mut line = format!(
        "[{elapsed:7.1}s] {phase:<10} slices {slices_done}/{slices_total} | \
         pairs {pairs_done}/{pairs_total} | branches {branches_done}/{branches_total} | \
         candidates {candidates} | {}",
        human_bytes(bytes)
    );
    if let Some(budgets) = p.get("budgets").and_then(|b| b.as_obj()) {
        for (name, budget) in budgets {
            if let Some(frac) = budget.get("used_frac").and_then(|v| v.as_f64()) {
                line.push_str(&format!(
                    " | {name} headroom {:.0}%",
                    (1.0 - frac).max(0.0) * 100.0
                ));
            }
        }
    }
    Some(line)
}

/// `1536` → `1.5 KiB`; plain byte counts below 1 KiB.
fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

const RUNS_USAGE: &str = "runs: expected a subcommand — \
list <DIR> [--ids] | show <DIR> <ID> [--json] | \
diff <DIR> <BASE> <CURRENT> [--time-tol R] [--time-floor SECS] \
[--mem-tol R] [--mem-floor BYTES] | top <DIR> [--metric KEY] [--limit N]";

/// The `runs` subcommand family: inspection and cross-run analytics over a
/// `--ledger` archive.
pub fn runs(argv: &[String]) -> Result<(), CliError> {
    let Some(sub) = argv.first() else {
        return Err(CliError::Usage(RUNS_USAGE.into()));
    };
    let rest = &argv[1..];
    match sub.as_str() {
        "list" => runs_list(rest),
        "show" => runs_show(rest),
        "diff" => runs_diff(rest),
        "top" => runs_top(rest),
        other => Err(CliError::Usage(format!(
            "runs: unknown subcommand {other:?}\n{RUNS_USAGE}"
        ))),
    }
}

/// Opens the ledger named by the first positional argument. Read-side
/// commands refuse a directory that does not exist instead of silently
/// creating an empty archive there (a typoed path should not look like an
/// empty ledger).
fn open_ledger(a: &args::Args, sub: &str) -> Result<Ledger, CliError> {
    let Some(dir) = a.positional.first() else {
        return Err(CliError::Usage(format!(
            "runs {sub}: missing ledger directory"
        )));
    };
    if !std::path::Path::new(dir).is_dir() {
        return Err(CliError::Run(format!("no ledger directory at {dir}")));
    }
    Ledger::open(dir).map_err(|e| CliError::Run(format!("cannot open ledger {dir}: {e}")))
}

fn read_archived_report(
    ledger: &Ledger,
    sub: &str,
    selector: &str,
) -> Result<(IndexEntry, Json), CliError> {
    let entry = ledger
        .resolve(selector)
        .map_err(|e| CliError::Run(format!("runs {sub}: {e}")))?;
    let doc = ledger
        .read_report(&entry.id)
        .map_err(|e| CliError::Run(format!("runs {sub}: {e}")))?;
    Ok((entry, doc))
}

fn runs_list(argv: &[String]) -> Result<(), CliError> {
    let a = args::parse(argv, &[], &["ids"]).map_err(CliError::Usage)?;
    let ledger = open_ledger(&a, "list")?;
    let entries = ledger
        .list()
        .map_err(|e| CliError::Run(format!("runs list: {e}")))?;
    if a.has("ids") {
        for e in &entries {
            println!("{}", e.id);
        }
        return Ok(());
    }
    if entries.is_empty() {
        eprintln!("ledger at {} is empty", ledger.dir().display());
        return Ok(());
    }
    println!(
        "{:<16} {:<5} {:>11} {:>8} {:>9} {:>7} {:>5}  label",
        "id", "kind", "created", "clusters", "secs", "threads", "req"
    );
    let dash = || "-".to_string();
    for e in &entries {
        println!(
            "{:<16} {:<5} {:>11} {:>8} {:>9} {:>7} {:>5}  {}",
            e.id,
            e.kind,
            e.created_unix,
            e.clusters.map_or_else(dash, |c| c.to_string()),
            e.total_secs.map_or_else(dash, |s| format!("{s:.3}")),
            e.threads.map_or_else(dash, |t| t.to_string()),
            e.request_id.map_or_else(dash, |r| r.to_string()),
            e.label.as_deref().unwrap_or("-"),
        );
    }
    Ok(())
}

fn runs_show(argv: &[String]) -> Result<(), CliError> {
    let a = args::parse(argv, &[], &["json"]).map_err(CliError::Usage)?;
    let ledger = open_ledger(&a, "show")?;
    let Some(selector) = a.positional.get(1) else {
        return Err(CliError::Usage("runs show: missing entry id".into()));
    };
    let (entry, doc) = read_archived_report(&ledger, "show", selector)?;
    if a.has("json") {
        println!("{}", doc.render_pretty());
        return Ok(());
    }
    println!("id:       {}", entry.id);
    println!("kind:     {}", entry.kind);
    if let Some(label) = &entry.label {
        println!("label:    {label}");
    }
    println!("created:  {} (unix seconds)", entry.created_unix);
    if let Some(rid) = entry.request_id {
        println!("request:  {rid} (daemon request id)");
    }
    println!("dataset:  {}", entry.dataset_hash);
    println!("params:   {}", entry.params_hash);
    let meta: Vec<String> = [
        entry.version.as_ref().map(|v| format!("v{v}")),
        entry.git.clone(),
        entry.host.clone(),
        entry.threads.map(|t| format!("{t} thread(s)")),
    ]
    .into_iter()
    .flatten()
    .collect();
    if !meta.is_empty() {
        println!("build:    {}", meta.join(", "));
    }
    if let Some(clusters) = entry.clusters {
        println!("clusters: {clusters}");
    }
    if let Some(timings) = doc.get("timings").and_then(Json::as_obj) {
        println!("timings:");
        for (key, v) in timings {
            if let Some(secs) = v.as_f64() {
                println!("  {key:<22} {secs:>12.6} s");
            }
        }
    }
    if let Some(phases) = doc
        .get_path(&["memory", "phase_bytes"])
        .and_then(Json::as_obj)
    {
        println!("phase allocation:");
        for (phase, v) in phases {
            let bytes = v.get("bytes").and_then(Json::as_u64).unwrap_or(0);
            let allocs = v.get("allocs").and_then(Json::as_u64).unwrap_or(0);
            println!("  {phase:<22} {bytes:>12} bytes in {allocs} allocation(s)");
        }
    }
    for (name, path) in [
        ("trace", ledger.trace_path(&entry.id)),
        ("flame", ledger.flame_path(&entry.id)),
    ] {
        if path.is_file() {
            println!("{name}:    {}", path.display());
        }
    }
    Ok(())
}

fn runs_diff(argv: &[String]) -> Result<(), CliError> {
    let a = args::parse(
        argv,
        &[
            ("time-tol", 1),
            ("time-floor", 1),
            ("mem-tol", 1),
            ("mem-floor", 1),
        ],
        &[],
    )
    .map_err(CliError::Usage)?;
    let ledger = open_ledger(&a, "diff")?;
    let (Some(base_sel), Some(cur_sel)) = (a.positional.get(1), a.positional.get(2)) else {
        return Err(CliError::Usage(
            "runs diff: expected <DIR> <BASE-ID> <CURRENT-ID>".into(),
        ));
    };
    let mut tol = DiffTolerances::default();
    if let Some(v) = a.get_f64("time-tol").map_err(CliError::Usage)? {
        tol.time_rel = v;
    }
    if let Some(v) = a.get_f64("time-floor").map_err(CliError::Usage)? {
        tol.time_floor_secs = v;
    }
    if let Some(v) = a.get_f64("mem-tol").map_err(CliError::Usage)? {
        tol.mem_rel = v;
    }
    if let Some(s) = a.get_str("mem-floor") {
        tol.mem_floor_bytes = parse_bytes("mem-floor", s).map_err(CliError::Usage)?;
    }
    let (base_entry, base_doc) = read_archived_report(&ledger, "diff", base_sel)?;
    let (cur_entry, cur_doc) = read_archived_report(&ledger, "diff", cur_sel)?;
    if base_entry.dataset_hash != cur_entry.dataset_hash {
        eprintln!(
            "note: comparing runs over different datasets ({} vs {})",
            base_entry.dataset_hash, cur_entry.dataset_hash
        );
    }
    let deltas = diff_reports(&base_doc, &cur_doc, &tol)
        .map_err(|e| CliError::Usage(format!("runs diff: {e}")))?;
    println!(
        "{:<40} {:>14} {:>14} {:>14}  verdict",
        "metric", "baseline", "current", "allowed"
    );
    let mut regressed: Vec<&str> = Vec::new();
    for d in &deltas {
        let verdict = if d.regressed {
            regressed.push(&d.metric);
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<40} {:>14.6} {:>14.6} {:>14.6}  {verdict}",
            d.metric, d.baseline, d.current, d.allowed
        );
    }
    if regressed.is_empty() {
        println!(
            "no regressions: {} metric(s) within tolerance ({} vs {})",
            deltas.len(),
            base_entry.id,
            cur_entry.id
        );
        Ok(())
    } else {
        Err(CliError::Run(format!(
            "{} regressed metric(s): {}",
            regressed.len(),
            regressed.join(", ")
        )))
    }
}

fn runs_top(argv: &[String]) -> Result<(), CliError> {
    let a = args::parse(argv, &[("metric", 1), ("limit", 1)], &[]).map_err(CliError::Usage)?;
    let ledger = open_ledger(&a, "top")?;
    let metric = a
        .get_str("metric")
        .unwrap_or("timings.total_secs")
        .to_string();
    let limit = a.get_usize("limit").map_err(CliError::Usage)?.unwrap_or(10);
    let path: Vec<&str> = metric.split('.').collect();
    let entries = ledger
        .list()
        .map_err(|e| CliError::Run(format!("runs top: {e}")))?;
    let mut ranked: Vec<(f64, &IndexEntry)> = entries
        .iter()
        .filter_map(|e| {
            let doc = ledger.read_report(&e.id).ok()?;
            let v = doc.get_path(&path)?.as_f64()?;
            Some((v, e))
        })
        .collect();
    if ranked.is_empty() {
        return Err(CliError::Run(format!(
            "no archived run carries metric {metric}"
        )));
    }
    ranked.sort_by(|x, y| y.0.total_cmp(&x.0).then_with(|| x.1.id.cmp(&y.1.id)));
    println!(
        "top {} of {} by {metric}:",
        ranked.len().min(limit),
        ranked.len()
    );
    for (v, e) in ranked.iter().take(limit) {
        println!("{v:>16.6}  {}  {}", e.id, e.label.as_deref().unwrap_or("-"));
    }
    Ok(())
}

/// Phase timings (and, at `-vv`, the full counter report) on stderr.
fn print_verbose(result: &MiningResult, verbosity: u8) {
    let t = &result.timings;
    eprintln!(
        "timings: slices {:?} wall ({:?} range-graph + {:?} bicluster CPU) | \
         triclusters {:?} | prune {:?}",
        t.slices_wall, t.range_graphs, t.biclusters, t.triclusters, t.prune
    );
    eprintln!(
        "fanout: range-graph at {} level, bicluster DFS at {} level, {} threads",
        result.fanout.range_graph.as_str(),
        result.fanout.bicluster.as_str(),
        result.fanout.threads
    );
    if verbosity >= 2 {
        eprint!("{}", result.report.render_human());
        eprint!("{}", runreport::render_search_space_human(&result.report));
    } else {
        let r = &result.report;
        eprintln!(
            "search: {} range edges, {} bicluster DFS nodes, {} tricluster DFS nodes",
            r.counter(names::RG_EDGES),
            r.counter(names::BC_NODES),
            r.counter(names::TC_NODES),
        );
    }
}

/// Sink whose only job is to switch on histogram collection in the mining
/// phases; the collected data still arrives through the result's embedded
/// report, so everything else stays at the `NullSink` defaults.
pub(crate) struct HistogramTap;

impl EventSink for HistogramTap {
    fn enabled(&self) -> bool {
        false
    }
    fn wants_histograms(&self) -> bool {
        true
    }
}

fn print_cluster(i: usize, c: &tricluster_core::Tricluster, labels: &Labels, names: bool) {
    let (x, y, z) = c.shape();
    println!("cluster {i}: {x} genes x {y} samples x {z} times");
    if names {
        let genes: Vec<String> = c.genes.iter().map(|g| labels.gene(g)).collect();
        let samples: Vec<String> = c.samples.iter().map(|&s| labels.sample(s)).collect();
        let times: Vec<String> = c.times.iter().map(|&t| labels.time(t)).collect();
        println!("  genes:   {}", genes.join(" "));
        println!("  samples: {}", samples.join(" "));
        println!("  times:   {}", times.join(" "));
    } else {
        println!("  genes:   {:?}", c.genes.to_vec());
        println!("  samples: {:?}", c.samples);
        println!("  times:   {:?}", c.times);
    }
}

pub fn synth(argv: &[String]) -> Result<(), CliError> {
    let a = args::parse(
        argv,
        &[
            ("genes", 1),
            ("samples", 1),
            ("times", 1),
            ("clusters", 1),
            ("noise", 1),
            ("overlap", 1),
            ("seed", 1),
        ],
        &[],
    )
    .map_err(CliError::Usage)?;
    let Some(path) = a.positional.first() else {
        return Err(CliError::Usage("synth: missing output file".into()));
    };
    let mut spec = SynthSpec::default();
    if let Some(v) = a.get_usize("genes").map_err(CliError::Usage)? {
        spec.n_genes = v;
        let gx = (v / 12).max(4);
        spec.gene_range = (gx, gx);
    }
    if let Some(v) = a.get_usize("samples").map_err(CliError::Usage)? {
        spec.n_samples = v;
        let sy = (v / 3).max(2);
        spec.sample_range = (sy, sy);
    }
    if let Some(v) = a.get_usize("times").map_err(CliError::Usage)? {
        spec.n_times = v;
        let tz = (v / 2).max(2);
        spec.time_range = (tz, tz);
    }
    if let Some(v) = a.get_usize("clusters").map_err(CliError::Usage)? {
        spec.n_clusters = v;
    }
    if let Some(v) = a.get_f64("noise").map_err(CliError::Usage)? {
        spec.noise = v;
    }
    if let Some(v) = a.get_f64("overlap").map_err(CliError::Usage)? {
        spec.overlap_fraction = v;
    }
    if let Some(v) = a.get_u64("seed").map_err(CliError::Usage)? {
        spec.seed = v;
    }
    let data = generate(&spec);
    write_matrix(path, &data.matrix)?;
    eprintln!(
        "wrote {} genes x {} samples x {} times with {} embedded clusters to {path}",
        spec.n_genes,
        spec.n_samples,
        spec.n_times,
        data.truth.len()
    );
    eprintln!("suggested mining epsilon: {}", spec.suggested_epsilon());
    for (i, c) in data.truth.iter().enumerate() {
        let (x, y, z) = c.shape();
        eprintln!("  truth {i}: {x} x {y} x {z}");
    }
    Ok(())
}

fn write_matrix(path: &str, m: &Matrix3) -> Result<(), CliError> {
    let labels = Labels::default_for(m.n_genes(), m.n_samples(), m.n_times());
    let file =
        File::create(path).map_err(|e| CliError::Run(format!("cannot create {path}: {e}")))?;
    let mut w = BufWriter::new(file);
    io::write_stacked_tsv(&mut w, m, &labels).map_err(|e| CliError::Run(e.to_string()))
}

pub fn demo(argv: &[String]) -> Result<(), CliError> {
    let a = args::parse(argv, &[("export", 1)], &[]).map_err(CliError::Usage)?;
    if let Some(stray) = a.positional.first() {
        return Err(CliError::Usage(format!(
            "demo takes no positional arguments, got {stray:?}"
        )));
    }
    let m = tricluster_core::testdata::paper_table1();
    if let Some(path) = a.get_str("export") {
        write_matrix(path, &m)?;
        eprintln!("wrote the Table 1 running example (10 genes x 7 samples x 2 times) to {path}");
        return Ok(());
    }
    let params = Params::builder()
        .epsilon(0.01)
        .min_genes(3)
        .min_samples(3)
        .min_times(2)
        .build()
        .unwrap();
    let result = tricluster_core::mine(&m, &params)
        .expect("the built-in Table 1 fixture is finite and mines without budgets");
    println!("Table 1 running example (mx=my=3, mz=2, ε=0.01):\n");
    let labels = Labels::default_for(10, 7, 2);
    for (i, c) in result.triclusters.iter().enumerate() {
        print_cluster(i, c, &labels, true);
    }
    println!("\n{}", result.metrics(&m));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricluster_core::obs::json::Json;

    fn parse_mine(argv: &[&str]) -> args::Args {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        args::parse(
            &argv,
            &[
                ("eps", 1),
                ("eps-time", 1),
                ("mx", 1),
                ("my", 1),
                ("mz", 1),
                ("delta-x", 1),
                ("delta-y", 1),
                ("delta-z", 1),
                ("merge", 2),
                ("max-candidates", 1),
                ("deadline", 1),
                ("max-memory", 1),
                ("threads", 1),
                ("fanout", 1),
                ("report-json", 1),
                ("trace-out", 1),
                ("flame-out", 1),
                ("ledger", 1),
                ("metrics-addr", 1),
            ],
            &[
                "shifting", "auto", "names", "csv", "trace", "explain", "progress", "-v", "-vv",
            ],
        )
        .unwrap()
    }

    #[test]
    fn defaults_when_no_flags() {
        let p = mine_params_from(&parse_mine(&["file.tsv"])).unwrap();
        assert_eq!(p.epsilon, 0.01);
        assert_eq!((p.min_genes, p.min_samples, p.min_times), (3, 3, 2));
        assert_eq!(p.merge, None);
        assert_eq!(p.max_candidates, None);
        assert_eq!(p.deadline, None);
        assert_eq!(p.max_memory, None);
    }

    #[test]
    fn all_flags_thread_through() {
        let a = parse_mine(&[
            "f.tsv",
            "--eps",
            "0.05",
            "--eps-time",
            "0.2",
            "--mx",
            "10",
            "--my",
            "4",
            "--mz",
            "3",
            "--delta-x",
            "1.5",
            "--delta-y",
            "2.5",
            "--delta-z",
            "3.5",
            "--merge",
            "0.2",
            "0.1",
            "--max-candidates",
            "5000",
            "--deadline",
            "2.5",
            "--max-memory",
            "64M",
        ]);
        let p = mine_params_from(&a).unwrap();
        assert_eq!(p.epsilon, 0.05);
        assert_eq!(p.epsilon_time, 0.2);
        assert_eq!((p.min_genes, p.min_samples, p.min_times), (10, 4, 3));
        assert_eq!(p.delta_gene, Some(1.5));
        assert_eq!(p.delta_sample, Some(2.5));
        assert_eq!(p.delta_time, Some(3.5));
        assert_eq!(
            p.merge,
            Some(MergeParams {
                eta: 0.2,
                gamma: 0.1
            })
        );
        assert_eq!(p.max_candidates, Some(5000));
        assert_eq!(p.deadline, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(p.max_memory, Some(64 << 20));
    }

    #[test]
    fn fanout_flag_threads_through() {
        let p = mine_params_from(&parse_mine(&["f.tsv", "--fanout", "pair"])).unwrap();
        assert_eq!(p.fanout, FanoutMode::Pair);
        let p = mine_params_from(&parse_mine(&["f.tsv"])).unwrap();
        assert_eq!(p.fanout, FanoutMode::Auto);
        let e = mine_params_from(&parse_mine(&["f.tsv", "--fanout", "bogus"])).unwrap_err();
        assert!(e.contains("--fanout"));
    }

    #[test]
    fn invalid_params_are_reported() {
        let a = parse_mine(&["f.tsv", "--eps", "-1"]);
        let e = mine_params_from(&a).unwrap_err();
        assert!(e.contains("epsilon"));
        let a = parse_mine(&["f.tsv", "--mx", "0"]);
        assert!(mine_params_from(&a).is_err());
    }

    #[test]
    fn byte_suffixes_parse() {
        for (text, want) in [
            ("0", 0),
            ("131072", 131072),
            ("8k", 8 << 10),
            ("8KB", 8 << 10),
            ("64M", 64 << 20),
            ("64mb", 64 << 20),
            ("2G", 2 << 30),
            ("2gb", 2 << 30),
            ("512b", 512),
        ] {
            assert_eq!(parse_bytes("max-memory", text).unwrap(), want, "{text}");
        }
        for bad in ["", "M", "-5", "4.5G", "64X", "999999999999G"] {
            let e = parse_bytes("max-memory", bad).unwrap_err();
            assert!(e.contains("--max-memory"), "{bad}: {e}");
        }
        // zero is parseable but rejected by Params::validate
        let e = mine_params_from(&parse_mine(&["f.tsv", "--max-memory", "0"])).unwrap_err();
        assert!(e.contains("max_memory"), "{e}");
    }

    #[test]
    fn bad_deadline_is_rejected() {
        for bad in ["-1", "nan", "inf"] {
            let e = mine_params_from(&parse_mine(&["f.tsv", "--deadline", bad])).unwrap_err();
            assert!(e.contains("--deadline"), "{bad}: {e}");
        }
        let p = mine_params_from(&parse_mine(&["f.tsv", "--deadline", "0"])).unwrap();
        assert_eq!(p.deadline, Some(Duration::ZERO));
    }

    #[test]
    fn demo_runs() {
        demo(&[]).unwrap();
    }

    /// `demo --export` writes the Table 1 fixture as a mineable stacked
    /// TSV — the dataset the EXPERIMENTS.md live-monitoring walkthrough
    /// points `mine --metrics-addr` at.
    #[test]
    fn demo_exports_a_mineable_table1_tsv() {
        let dir = std::env::temp_dir().join(format!("tricluster-demo-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table1.tsv");
        let path_str = path.to_str().unwrap().to_string();
        demo(&["--export".to_string(), path_str.clone()]).unwrap();
        mine(&[path_str, "--eps".to_string(), "0.01".to_string()]).unwrap();
        let e = demo(&["stray".to_string()]).unwrap_err();
        assert!(
            matches!(&e, CliError::Usage(m) if m.contains("positional")),
            "{e}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mine_missing_file_errors() {
        // unreadable input is a runtime error (exit 1)...
        let e = mine(&["/nonexistent/path.tsv".to_string()]).unwrap_err();
        assert!(
            matches!(&e, CliError::Run(m) if m.contains("cannot open")),
            "{e}"
        );
        // ...while a malformed invocation is a usage error (exit 2)
        let e = mine(&[]).unwrap_err();
        assert!(
            matches!(&e, CliError::Usage(m) if m.contains("missing input file")),
            "{e}"
        );
        let e = mine(&["f.tsv".to_string(), "--bogus-flag".to_string()]).unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e}");
        // invalid parameters are usage errors even though the file is absent:
        // validation runs before any I/O
        let e = mine(&[
            "/nonexistent/path.tsv".to_string(),
            "--eps".to_string(),
            "-1".to_string(),
        ])
        .unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e}");
    }

    #[test]
    fn synth_roundtrip_through_tmpfile() {
        let dir = std::env::temp_dir().join(format!("tricluster-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("synth.tsv");
        let path_str = path.to_str().unwrap().to_string();
        synth(&[
            path_str.clone(),
            "--genes".into(),
            "120".into(),
            "--samples".into(),
            "8".into(),
            "--times".into(),
            "4".into(),
            "--clusters".into(),
            "2".into(),
            "--noise".into(),
            "0".into(),
        ])
        .unwrap();
        // the written file parses back into the declared dimensions
        let file = std::fs::File::open(&path).unwrap();
        let (m, _) = io::read_stacked_tsv(std::io::BufReader::new(file)).unwrap();
        assert_eq!(m.dims(), (120, 8, 4));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synth_missing_path_errors() {
        let e = synth(&[]).unwrap_err();
        assert!(
            matches!(&e, CliError::Usage(m) if m.contains("missing output")),
            "{e}"
        );
    }

    /// Extracts the `"counters": { ... }` block of a pretty-printed report.
    fn counters_block(report: &str) -> &str {
        let start = report.find("\"counters\"").expect("has counters");
        let end = report[start..].find('}').expect("closed") + start;
        &report[start..end]
    }

    #[test]
    fn report_json_is_written_and_deterministic() {
        let dir =
            std::env::temp_dir().join(format!("tricluster-report-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("synth.tsv");
        let data_str = data.to_str().unwrap().to_string();
        synth(&[
            data_str.clone(),
            "--genes".into(),
            "80".into(),
            "--samples".into(),
            "8".into(),
            "--times".into(),
            "4".into(),
            "--clusters".into(),
            "2".into(),
            "--noise".into(),
            "0".into(),
        ])
        .unwrap();
        let run = |out: &std::path::Path, threads: &str| {
            mine(&[
                data_str.clone(),
                "--eps".into(),
                "0.01".into(),
                "--threads".into(),
                threads.into(),
                "--report-json".into(),
                out.to_str().unwrap().into(),
            ])
            .unwrap();
            std::fs::read_to_string(out).unwrap()
        };
        let a = run(&dir.join("a.json"), "1");
        let b = run(&dir.join("b.json"), "4");
        for needle in [
            "\"schema\": \"tricluster.report/v2\"",
            "\"spans\"",
            "phase.tricluster",
            "rangegraph.edges",
            "bicluster.dfs.nodes",
        ] {
            assert!(a.contains(needle), "missing {needle}");
        }
        assert_eq!(
            counters_block(&a),
            counters_block(&b),
            "counters must not depend on thread count"
        );
        // the v2 profile sections must render byte-identically across
        // thread counts (they hold input-determined values only)
        let sections = |text: &str| {
            let doc = Json::parse(text).unwrap();
            ["histograms", "memory", "search_space"]
                .map(|k| doc.get(k).expect(k).render())
                .join("\n")
        };
        assert_eq!(
            sections(&a),
            sections(&b),
            "v2 profile sections must not depend on thread count"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Writes a `--report-json` for the given extra flags and parses it.
    fn mined_report(tag: &str, extra: &[&str]) -> Json {
        let dir =
            std::env::temp_dir().join(format!("tricluster-{tag}-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("synth.tsv");
        let data_str = data.to_str().unwrap().to_string();
        synth(&[
            data_str.clone(),
            "--genes".into(),
            "60".into(),
            "--samples".into(),
            "8".into(),
            "--times".into(),
            "4".into(),
            "--clusters".into(),
            "2".into(),
            "--noise".into(),
            "0".into(),
        ])
        .unwrap();
        let out = dir.join("report.json");
        let mut argv = vec![
            data_str,
            "--report-json".to_string(),
            out.to_str().unwrap().to_string(),
        ];
        argv.extend(extra.iter().map(|s| s.to_string()));
        mine(&argv).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        doc
    }

    /// The end-to-end schema gate used by `scripts/check.sh`: a real
    /// `mine --report-json` run must produce a valid, populated v2 report.
    #[test]
    fn report_json_matches_v2_schema() {
        let doc = mined_report("schema", &[]);
        runreport::validate_v2(&doc).unwrap();
        assert!(
            !doc.get("histograms").unwrap().as_obj().unwrap().is_empty(),
            "histograms section must be non-empty"
        );
    }

    /// A budget-truncated run still exits 0 and its report carries the
    /// machine-readable truncation reason.
    #[test]
    fn truncated_report_carries_reason() {
        let doc = mined_report("truncated", &["--max-candidates", "1"]);
        runreport::validate_v2(&doc).unwrap();
        assert_eq!(doc.get("truncated").unwrap().as_bool(), Some(true));
        assert_eq!(
            doc.get_path(&["fault", "truncation_reason"])
                .and_then(|v| v.as_str()),
            Some("max_candidates")
        );
    }

    /// v1 consumers keep working: every key the v1 schema defined is still
    /// present (and still the same JSON type) in a v2 document.
    #[test]
    fn report_v2_is_backward_compatible_with_v1_readers() {
        let doc = mined_report("v1compat", &[]);
        let v1_u64_keys = [
            &["matrix", "genes"][..],
            &["matrix", "samples"],
            &["matrix", "times"],
            &["clusters"],
            &["metrics", "cluster_count"],
            &["metrics", "element_sum"],
            &["metrics", "coverage"],
        ];
        for path in v1_u64_keys {
            let v = doc.get_path(path).unwrap_or_else(|| panic!("{path:?}"));
            assert!(v.as_u64().is_some(), "{path:?} is no longer an integer");
        }
        let v1_f64_keys = [
            &["timings", "slices_wall_secs"][..],
            &["timings", "range_graphs_cpu_secs"],
            &["timings", "biclusters_cpu_secs"],
            &["timings", "triclusters_secs"],
            &["timings", "prune_secs"],
            &["timings", "total_secs"],
            &["metrics", "overlap"],
            &["metrics", "fluctuation_gene"],
            &["metrics", "fluctuation_sample"],
            &["metrics", "fluctuation_time"],
        ];
        for path in v1_f64_keys {
            let v = doc.get_path(path).unwrap_or_else(|| panic!("{path:?}"));
            assert!(v.as_f64().is_some(), "{path:?} is no longer a number");
        }
        assert!(doc.get("truncated").is_some());
        assert!(doc.get_path(&["report", "counters"]).is_some());
        assert!(doc.get_path(&["report", "spans"]).is_some());
        // a clean run has no fault section at all
        assert!(doc.get("fault").is_none());
    }

    /// End-to-end tentpole gate: `mine --trace-out --threads 2` on the
    /// paper's Table 1 matrix writes a loadable Chrome Trace Event file —
    /// well-formed events, balanced B/E per track, at least one event per
    /// pipeline phase, and slice work attributed to a worker track.
    #[test]
    fn trace_out_writes_valid_chrome_trace() {
        use std::collections::HashMap;
        let dir =
            std::env::temp_dir().join(format!("tricluster-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("table1.tsv");
        {
            let m = tricluster_core::testdata::paper_table1();
            let labels = Labels::default_for(m.n_genes(), m.n_samples(), m.n_times());
            let file = std::fs::File::create(&data).unwrap();
            let mut w = BufWriter::new(file);
            io::write_stacked_tsv(&mut w, &m, &labels).unwrap();
        }
        let trace_path = dir.join("trace.json");
        mine(&[
            data.to_str().unwrap().to_string(),
            "--threads".into(),
            "2".into(),
            "--trace-out".into(),
            trace_path.to_str().unwrap().into(),
            "--progress=0.01".into(),
        ])
        .unwrap();

        let doc = Json::parse(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
        assert_eq!(
            doc.get("displayTimeUnit").and_then(|v| v.as_str()),
            Some("ms")
        );
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());

        let mut open: HashMap<u64, i64> = HashMap::new(); // tid -> B depth
        let mut track_names: HashMap<u64, String> = HashMap::new();
        let mut seen_names: Vec<String> = Vec::new();
        for ev in events {
            let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
            let tid = ev.get("tid").and_then(|v| v.as_u64()).expect("tid");
            let name = ev.get("name").and_then(|v| v.as_str()).expect("name");
            assert_eq!(ev.get("pid").and_then(|v| v.as_u64()), Some(1));
            match ph {
                "M" => {
                    assert_eq!(name, "thread_name");
                    let label = ev
                        .get_path(&["args", "name"])
                        .and_then(|v| v.as_str())
                        .expect("thread_name label");
                    track_names.insert(tid, label.to_string());
                }
                "B" | "E" | "i" => {
                    assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some(), "ts");
                    seen_names.push(name.to_string());
                    match ph {
                        "B" => *open.entry(tid).or_insert(0) += 1,
                        "E" => {
                            let d = open.entry(tid).or_insert(0);
                            *d -= 1;
                            assert!(*d >= 0, "E without B on tid {tid}");
                        }
                        _ => {}
                    }
                }
                other => panic!("unexpected ph {other:?}"),
            }
        }
        assert!(open.values().all(|&d| d == 0), "unbalanced B/E: {open:?}");
        // one event per pipeline phase
        for phase in [
            names::SPAN_SLICES_WALL,
            names::SPAN_RANGE_GRAPH,
            names::SPAN_BICLUSTER,
            names::SPAN_TRICLUSTER,
            names::SPAN_PRUNE,
            names::T_SLICE,
        ] {
            assert!(
                seen_names.iter().any(|n| n == phase),
                "no timeline event named {phase}"
            );
        }
        // worker attribution: the main track exists, and under --threads 2
        // the per-slice work ran on (and is attributed to) worker tracks
        assert!(
            track_names.values().any(|l| l.contains("main")),
            "{track_names:?}"
        );
        assert!(
            track_names.values().any(|l| l.contains("slice")),
            "no slice worker track: {track_names:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_progress_interval_is_rejected() {
        for bad in ["--progress=0", "--progress=-1", "--progress=nan"] {
            let e = mine(&["f.tsv".to_string(), bad.to_string()]).unwrap_err();
            assert!(
                matches!(&e, CliError::Usage(m) if m.contains("--progress")),
                "{bad}: {e}"
            );
        }
    }

    #[test]
    fn trace_out_and_progress_rejected_with_shifting() {
        for extra in [
            vec!["--trace-out", "t.json"],
            vec!["--progress"],
            vec!["--flame-out", "f.folded"],
            vec!["--ledger", "ldir"],
            vec!["--metrics-addr", "127.0.0.1:0"],
        ] {
            let mut argv = vec!["f.tsv".to_string(), "--shifting".to_string()];
            argv.extend(extra.iter().map(|s| s.to_string()));
            let e = mine(&argv).unwrap_err();
            assert!(
                matches!(&e, CliError::Usage(m) if m.contains("--shifting")),
                "{e}"
            );
        }
    }

    /// Writes a synthetic stacked-TSV dataset into `dir` and returns its
    /// path as a string.
    fn synth_into(dir: &std::path::Path) -> String {
        std::fs::create_dir_all(dir).unwrap();
        let data = dir.join("synth.tsv");
        let data_str = data.to_str().unwrap().to_string();
        synth(&[
            data_str.clone(),
            "--genes".into(),
            "60".into(),
            "--samples".into(),
            "8".into(),
            "--times".into(),
            "4".into(),
            "--clusters".into(),
            "2".into(),
            "--noise".into(),
            "0".into(),
        ])
        .unwrap();
        data_str
    }

    /// A `--deadline`-truncated run still writes a well-formed trace:
    /// the file parses, B/E events balance on every track, and the
    /// truncation instant is present so the trace explains why the run
    /// stopped short.
    #[test]
    fn trace_out_survives_deadline_truncation() {
        use std::collections::HashMap;
        let dir = std::env::temp_dir().join(format!(
            "tricluster-trunc-trace-test-{}",
            std::process::id()
        ));
        let data = synth_into(&dir);
        let trace_path = dir.join("trace.json");
        mine(&[
            data,
            "--deadline".into(),
            "0".into(),
            "--trace-out".into(),
            trace_path.to_str().unwrap().into(),
        ])
        .unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        let mut open: HashMap<u64, i64> = HashMap::new();
        let mut saw_truncation = false;
        for ev in events {
            let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
            let tid = ev.get("tid").and_then(|v| v.as_u64()).expect("tid");
            let name = ev.get("name").and_then(|v| v.as_str()).expect("name");
            match ph {
                "B" => *open.entry(tid).or_insert(0) += 1,
                "E" => {
                    let d = open.entry(tid).or_insert(0);
                    *d -= 1;
                    assert!(*d >= 0, "E without B on tid {tid}");
                }
                "i" if name == names::T_TRUNCATED => saw_truncation = true,
                _ => {}
            }
        }
        assert!(open.values().all(|&d| d == 0), "unbalanced B/E: {open:?}");
        assert!(saw_truncation, "no {} instant in trace", names::T_TRUNCATED);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Flamegraph tentpole gate: `mine --flame-out --threads 1` writes
    /// non-empty folded stacks where every line is `stack;parts N`, the
    /// stack roots are exactly the pipeline phases, and each root's
    /// accumulated self time agrees with the report's span stats.
    #[test]
    fn flame_out_structure_matches_report_spans() {
        use std::collections::BTreeMap;
        let dir =
            std::env::temp_dir().join(format!("tricluster-flame-test-{}", std::process::id()));
        let data = synth_into(&dir);
        let flame_path = dir.join("flame.folded");
        let report_path = dir.join("report.json");
        mine(&[
            data,
            "--threads".into(),
            "1".into(),
            "--flame-out".into(),
            flame_path.to_str().unwrap().into(),
            "--report-json".into(),
            report_path.to_str().unwrap().into(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&flame_path).unwrap();
        assert!(!text.trim().is_empty(), "flame file is empty");
        let mut per_root: BTreeMap<String, u64> = BTreeMap::new();
        for line in text.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("`stack N` shape");
            assert!(!stack.is_empty(), "empty stack in {line:?}");
            assert!(
                stack.split(';').all(|part| !part.is_empty()),
                "empty stack segment in {line:?}"
            );
            let micros: u64 = count
                .parse()
                .unwrap_or_else(|_| panic!("bad count in {line:?}"));
            let root = stack.split(';').next().unwrap().to_string();
            *per_root.entry(root).or_insert(0) += micros;
        }
        // With one thread the whole pipeline runs on the main track, so
        // the roots are exactly the three phase spans.
        let phases = [
            names::SPAN_SLICES_WALL,
            names::SPAN_TRICLUSTER,
            names::SPAN_PRUNE,
        ];
        let roots: Vec<&str> = per_root.keys().map(String::as_str).collect();
        let mut want: Vec<&str> = phases.to_vec();
        want.sort_unstable();
        assert_eq!(roots, want, "unexpected flame roots");
        // Per-phase totals agree with the report's span stats: the folded
        // self times under a root sum back to that root's span duration
        // (modulo per-line microsecond rounding and the independent clocks).
        let doc = Json::parse(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
        for phase in phases {
            let span_ns = doc
                .get_path(&["report", "spans", phase, "total_ns"])
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("no span stats for {phase}"));
            let span_us = span_ns / 1_000;
            let flame_us = per_root[phase];
            let allowed = (span_us / 5).max(20_000); // 20% or 20ms, whichever is larger
            assert!(
                flame_us.abs_diff(span_us) <= allowed,
                "{phase}: flame total {flame_us}us vs span {span_us}us (allowed {allowed}us)"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Ledger tentpole gate, end to end: two `mine --ledger` runs over the
    /// same dataset — the second slowed by an injected 400ms delay in the
    /// tricluster phase — archive under distinct sequenced ids with equal
    /// content hashes; `runs list`/`show` round-trip the archive, and
    /// `runs diff` flags the slowed phase while the untouched phases stay
    /// within tolerance (and the fast-vs-slow direction passes clean).
    #[test]
    fn ledger_archives_runs_and_diff_flags_injected_regression() {
        let dir =
            std::env::temp_dir().join(format!("tricluster-ledger-test-{}", std::process::id()));
        let data = synth_into(&dir);
        let ledger_path = dir.join("ledger");
        let ldir = ledger_path.to_str().unwrap().to_string();
        let run = || {
            mine(&[data.clone(), "--ledger".into(), ldir.clone()]).unwrap();
        };
        run();
        {
            let _scenario = tricluster_failpoint::scenario();
            tricluster_failpoint::configure(
                "core.tricluster.phase",
                tricluster_failpoint::Action::Delay(Duration::from_millis(400)),
            );
            run();
        }
        let ledger = Ledger::open(&ledger_path).unwrap();
        let entries = ledger.list().unwrap();
        assert_eq!(entries.len(), 2, "{entries:?}");
        let (base, slow) = (&entries[0], &entries[1]);
        assert_ne!(base.id, slow.id);
        assert!(base.id.starts_with("r0001-") && slow.id.starts_with("r0002-"));
        assert_eq!(base.dataset_hash, slow.dataset_hash, "same input bytes");
        assert_eq!(base.params_hash, slow.params_hash, "same parameters");
        assert_eq!(base.kind, "mine");
        assert_eq!(base.label.as_deref(), Some(data.as_str()));
        assert!(base.clusters.is_some() && base.total_secs.is_some());
        // archived reports are valid v2 documents (the `runs show --json`
        // payload is exactly this file)
        let base_doc = ledger.read_report(&base.id).unwrap();
        let slow_doc = ledger.read_report(&slow.id).unwrap();
        runreport::validate_v2(&base_doc).unwrap();
        runreport::validate_v2(&slow_doc).unwrap();
        // the CLI surface round-trips: list, show by unique id prefix
        let arg = |s: &str| s.to_string();
        runs(&[arg("list"), ldir.clone(), arg("--ids")]).unwrap();
        runs(&[arg("show"), ldir.clone(), base.id.clone()]).unwrap();
        runs(&[arg("show"), ldir.clone(), arg("--json"), arg("r0002")]).unwrap();
        // diff base -> slowed: the delayed phase (and with it the total)
        // regresses past `base*(1+1.0) + 0.15s`; untouched phases do not
        let tol_flags = [
            arg("--time-tol"),
            arg("1.0"),
            arg("--time-floor"),
            arg("0.15"),
        ];
        let mut argv = vec![arg("diff"), ldir.clone(), base.id.clone(), slow.id.clone()];
        argv.extend(tol_flags.iter().cloned());
        let e = runs(&argv).unwrap_err();
        assert!(
            matches!(&e, CliError::Run(m) if m.contains("timings.triclusters_secs")),
            "{e}"
        );
        let tol = DiffTolerances {
            time_rel: 1.0,
            time_floor_secs: 0.15,
            ..DiffTolerances::default()
        };
        let deltas = diff_reports(&base_doc, &slow_doc, &tol).unwrap();
        let regressed: Vec<&str> = deltas
            .iter()
            .filter(|d| d.regressed)
            .map(|d| d.metric.as_str())
            .collect();
        assert!(
            regressed.contains(&"timings.triclusters_secs"),
            "{regressed:?}"
        );
        for untouched in ["timings.slices_wall_secs", "timings.prune_secs"] {
            assert!(
                !regressed.contains(&untouched),
                "{untouched} should be within tolerance: {regressed:?}"
            );
        }
        // the other direction (slow -> fast) is an improvement, not a
        // regression, and exits clean
        let mut argv = vec![arg("diff"), ldir.clone(), slow.id.clone(), base.id.clone()];
        argv.extend(tol_flags.iter().cloned());
        runs(&argv).unwrap();
        // `runs top` ranks the slowed run first on total time
        runs(&[arg("top"), ldir.clone(), arg("--limit"), arg("1")]).unwrap();
        // selector errors surface as runtime errors, not panics
        let e = runs(&[arg("show"), ldir.clone(), arg("r")]).unwrap_err();
        assert!(
            matches!(&e, CliError::Run(m) if m.contains("ambiguous")),
            "{e}"
        );
        let e = runs(&[arg("show"), ldir, arg("zzz")]).unwrap_err();
        assert!(matches!(e, CliError::Run(_)), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `runs` usage errors: missing subcommand, unknown subcommand, and a
    /// read command pointed at a directory that does not exist.
    #[test]
    fn runs_rejects_bad_invocations() {
        let e = runs(&[]).unwrap_err();
        assert!(
            matches!(&e, CliError::Usage(m) if m.contains("subcommand")),
            "{e}"
        );
        let e = runs(&["bogus".to_string()]).unwrap_err();
        assert!(
            matches!(&e, CliError::Usage(m) if m.contains("bogus")),
            "{e}"
        );
        let e = runs(&["list".to_string()]).unwrap_err();
        assert!(
            matches!(&e, CliError::Usage(m) if m.contains("ledger")),
            "{e}"
        );
        let e = runs(&["list".to_string(), "/nonexistent/ledger-dir".to_string()]).unwrap_err();
        assert!(
            matches!(&e, CliError::Run(m) if m.contains("no ledger")),
            "{e}"
        );
    }

    /// Binds an ephemeral port, then releases it — the returned address is
    /// free for the code under test to bind (the usual reserve-port trick;
    /// nothing else in this process grabs ports in between).
    fn reserve_addr() -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        addr
    }

    /// Metrics tentpole gate, end to end: a mine with `--metrics-addr`
    /// serves `/healthz`, `/metrics` (valid exposition with slices-phase
    /// counters, span timings, and budget headroom), and `/progress`
    /// *while mining* — the tricluster phase is held open by an injected
    /// delay so the mid-run window is deterministic — and `tricluster
    /// watch` renders a live snapshot from it. When the mine ends the
    /// endpoint dies with it, and the run's report is a valid v2 document.
    #[test]
    fn metrics_server_serves_scrapes_mid_run() {
        let dir =
            std::env::temp_dir().join(format!("tricluster-metrics-test-{}", std::process::id()));
        let data = synth_into(&dir);
        let addr = reserve_addr();
        let url = format!("http://{addr}");
        let report_path = dir.join("metrics-report.json");
        let report_str = report_path.to_str().unwrap().to_string();
        let _scenario = tricluster_failpoint::scenario();
        tricluster_failpoint::configure(
            "core.tricluster.phase",
            tricluster_failpoint::Action::Delay(Duration::from_millis(700)),
        );
        let mine_argv: Vec<String> = vec![
            data.clone(),
            "--metrics-addr".into(),
            addr.clone(),
            "--deadline".into(),
            "60".into(),
            "--report-json".into(),
            report_str.clone(),
        ];
        let miner = std::thread::spawn(move || mine(&mine_argv));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match http_get(&format!("{url}/healthz")) {
                Ok((200, body)) => {
                    assert_eq!(body, "ok\n");
                    break;
                }
                other => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "healthz never came up: {other:?}"
                    );
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        // Slices-phase counters publish before the delayed tricluster phase
        // begins, so they must become scrapeable mid-run.
        let exposition = loop {
            let (status, body) = http_get(&format!("{url}/metrics")).expect("server up mid-run");
            assert_eq!(status, 200);
            if body.contains("tricluster_rangegraph_pairs_total") {
                break body;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "slices counters never appeared in {body:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        assert!(exposition.ends_with("# EOF\n"), "{exposition}");
        assert!(
            exposition.contains("tricluster_phase_range_graph_seconds_count"),
            "{exposition}"
        );
        assert!(
            exposition.contains("tricluster_budget_headroom_ratio{budget=\"deadline\"}"),
            "{exposition}"
        );
        assert!(
            exposition.contains("tricluster_progress_phase{phase="),
            "{exposition}"
        );
        let (status, body) = http_get(&format!("{url}/progress")).unwrap();
        assert_eq!(status, 200);
        let snap = Json::parse(body.trim()).expect("valid progress JSON");
        assert!(snap.get_path(&["progress", "phase"]).is_some(), "{body}");
        // `watch` renders a live snapshot, and its raw-get mode scrapes
        // (also exercising the missing-leading-slash normalization).
        watch(&[url.clone(), "--once".into()]).unwrap();
        watch(&[url.clone(), "--get".into(), "healthz".into()]).unwrap();
        miner.join().unwrap().unwrap();
        assert!(
            http_get(&format!("{url}/healthz")).is_err(),
            "endpoint must die with the mine"
        );
        let doc = Json::parse(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
        runreport::validate_v2(&doc).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Serving metrics must not change any input-determined report
    /// section: a threads-1 run without metrics and a threads-4
    /// pair-fanout run with a live metrics server render those sections
    /// byte-identically (same list the bench determinism gate pins).
    #[test]
    fn deterministic_sections_unchanged_by_metrics() {
        let dir =
            std::env::temp_dir().join(format!("tricluster-metrics-det-{}", std::process::id()));
        let data = synth_into(&dir);
        let base_path = dir.join("base.json");
        let met_path = dir.join("met.json");
        mine(&[
            data.clone(),
            "--threads".into(),
            "1".into(),
            "--report-json".into(),
            base_path.to_str().unwrap().into(),
        ])
        .unwrap();
        mine(&[
            data.clone(),
            "--threads".into(),
            "4".into(),
            "--fanout".into(),
            "pair".into(),
            "--metrics-addr".into(),
            "127.0.0.1:0".into(),
            "--report-json".into(),
            met_path.to_str().unwrap().into(),
        ])
        .unwrap();
        let base = Json::parse(&std::fs::read_to_string(&base_path).unwrap()).unwrap();
        let met = Json::parse(&std::fs::read_to_string(&met_path).unwrap()).unwrap();
        const SECTIONS: &[&[&str]] = &[
            &["matrix"],
            &["clusters"],
            &["truncated"],
            &["metrics"],
            &["report", "counters"],
            &["histograms"],
            &["search_space"],
            &["memory", "matrix_bytes"],
            &["memory", "rangegraph_peak_bytes"],
            &["memory", "bicluster_bytes"],
            &["memory", "tricluster_bytes"],
        ];
        for path in SECTIONS {
            let a = base.get_path(path).map(|j| j.render());
            let b = met.get_path(path).map(|j| j.render());
            assert!(a.is_some(), "section {path:?} missing from baseline");
            assert_eq!(a, b, "section {path:?} must be byte-identical");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `watch` against a live endpoint: keeps polling until the server
    /// goes away, then exits 0 (that is what a finished run looks like).
    #[test]
    fn watch_polls_until_the_server_goes_away() {
        let registry = Arc::new(Registry::new());
        let progress = Arc::new(Progress::new());
        registry.attach_progress(progress);
        let server = MetricsServer::serve("127.0.0.1:0", registry).unwrap();
        let url = server.url();
        let handle = std::thread::spawn(move || watch(&[url, "--interval".into(), "0.02".into()]));
        std::thread::sleep(Duration::from_millis(150));
        drop(server);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn watch_rejects_bad_invocations() {
        let e = watch(&[]).unwrap_err();
        assert!(matches!(&e, CliError::Usage(m) if m.contains("URL")), "{e}");
        let e = watch(&[
            "http://127.0.0.1:1".to_string(),
            "--interval".to_string(),
            "0".to_string(),
        ])
        .unwrap_err();
        assert!(
            matches!(&e, CliError::Usage(m) if m.contains("--interval")),
            "{e}"
        );
        // A released port refuses connections: `--get` surfaces that as a
        // runtime error immediately (no startup grace for one-shot gets).
        let addr = reserve_addr();
        let e = watch(&[
            format!("http://{addr}"),
            "--get".to_string(),
            "/metrics".to_string(),
        ])
        .unwrap_err();
        assert!(matches!(e, CliError::Run(_)), "{e}");
    }
}
