//! Recovery scoring: how well do mined clusters match the embedded truth?
//!
//! Each truth cluster is matched to the mined cluster with the highest
//! *cell Jaccard* similarity `|L_A ∩ L_B| / |L_A ∪ L_B|` (both spans are
//! axis-aligned boxes, so the intersection is a product of per-dimension
//! intersections). From the per-truth best matches we report recall,
//! precision (fraction of mined clusters that are someone's ≥-threshold
//! match), and F1.

use tricluster_core::{span, Tricluster};

/// Jaccard similarity of two cluster spans.
pub fn span_jaccard(a: &Tricluster, b: &Tricluster) -> f64 {
    let inter = span::intersection_size(a, b);
    let union = a.span_size() + b.span_size() - inter;
    if union == 0 {
        return 0.0;
    }
    inter as f64 / union as f64
}

/// Result of matching mined clusters against ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Best Jaccard score per truth cluster (same order as the truth list).
    pub best_match: Vec<f64>,
    /// Truth clusters with a match `≥ threshold`, divided by truth count.
    pub recall: f64,
    /// Mined clusters that are a `≥ threshold` match of some truth cluster,
    /// divided by mined count.
    pub precision: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
    /// The threshold used.
    pub threshold: f64,
}

/// Scores `mined` clusters against `truth` at the given Jaccard threshold.
pub fn score(truth: &[Tricluster], mined: &[Tricluster], threshold: f64) -> RecoveryReport {
    let best_match: Vec<f64> = truth
        .iter()
        .map(|t| mined.iter().map(|m| span_jaccard(t, m)).fold(0.0, f64::max))
        .collect();
    let recovered = best_match.iter().filter(|&&j| j >= threshold).count();
    let recall = if truth.is_empty() {
        1.0
    } else {
        recovered as f64 / truth.len() as f64
    };
    let matched_mined = mined
        .iter()
        .filter(|m| truth.iter().any(|t| span_jaccard(t, m) >= threshold))
        .count();
    let precision = if mined.is_empty() {
        if truth.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        matched_mined as f64 / mined.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    RecoveryReport {
        best_match,
        recall,
        precision,
        f1,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricluster_bitset::BitSet;

    fn mk(g: &[usize], s: &[usize], t: &[usize]) -> Tricluster {
        Tricluster::new(
            BitSet::from_indices(100, g.iter().copied()),
            s.to_vec(),
            t.to_vec(),
        )
    }

    #[test]
    fn identical_clusters_jaccard_one() {
        let a = mk(&[0, 1, 2], &[0, 1], &[0]);
        assert_eq!(span_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_clusters_jaccard_zero() {
        let a = mk(&[0, 1], &[0], &[0]);
        let b = mk(&[2, 3], &[1], &[1]);
        assert_eq!(span_jaccard(&a, &b), 0.0);
    }

    #[test]
    fn partial_overlap_jaccard() {
        let a = mk(&[0, 1], &[0, 1], &[0]); // 4 cells
        let b = mk(&[1, 2], &[0, 1], &[0]); // 4 cells, 2 shared
        assert!((span_jaccard(&a, &b) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_recovery() {
        let truth = vec![mk(&[0, 1], &[0], &[0]), mk(&[2, 3], &[1], &[1])];
        let report = score(&truth, &truth, 0.99);
        assert_eq!(report.recall, 1.0);
        assert_eq!(report.precision, 1.0);
        assert_eq!(report.f1, 1.0);
        assert_eq!(report.best_match, vec![1.0, 1.0]);
    }

    #[test]
    fn missing_cluster_reduces_recall() {
        let truth = vec![mk(&[0, 1], &[0], &[0]), mk(&[2, 3], &[1], &[1])];
        let mined = vec![truth[0].clone()];
        let report = score(&truth, &mined, 0.99);
        assert_eq!(report.recall, 0.5);
        assert_eq!(report.precision, 1.0);
        assert!((report.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn spurious_cluster_reduces_precision() {
        let truth = vec![mk(&[0, 1], &[0], &[0])];
        let mined = vec![truth[0].clone(), mk(&[50, 51], &[3], &[2])];
        let report = score(&truth, &mined, 0.99);
        assert_eq!(report.recall, 1.0);
        assert_eq!(report.precision, 0.5);
    }

    #[test]
    fn empty_cases() {
        let report = score(&[], &[], 0.5);
        assert_eq!(report.recall, 1.0);
        assert_eq!(report.precision, 1.0);
        let truth = vec![mk(&[0], &[0], &[0])];
        let report = score(&truth, &[], 0.5);
        assert_eq!(report.recall, 0.0);
        assert_eq!(report.precision, 0.0);
        assert_eq!(report.f1, 0.0);
    }

    #[test]
    fn threshold_gates_matches() {
        let truth = vec![mk(&[0, 1], &[0, 1], &[0])];
        let mined = vec![mk(&[1, 2], &[0, 1], &[0])]; // jaccard 1/3
        assert_eq!(score(&truth, &mined, 0.3).recall, 1.0);
        assert_eq!(score(&truth, &mined, 0.4).recall, 0.0);
    }
}
