//! Synthetic 3D microarray generator with embedded ground-truth clusters
//! (paper §5) and recovery scoring.
//!
//! The generator follows the paper's recipe:
//!
//! > The input parameters to the generator are the total number of genes,
//! > samples and times; number of clusters to embed; percentage of
//! > overlapping clusters; dimensional ranges for the cluster sizes; and
//! > the amount of noise for the expression values. […] For generating the
//! > expression values within a cluster, we generate at random, base values
//! > (v_i, v_j and v_k) for each dimension in the cluster. Then the
//! > expression value is set as `d_ijk = v_i · v_j · v_k · (1 + ρ)`, where
//! > `ρ` doesn't exceed the random noise level. Once all clusters are
//! > generated, the non-cluster regions are assigned random values.
//!
//! Base values are assigned *per index, lazily and globally*: when two
//! overlapping clusters share a gene/sample/time, they share its base value,
//! so the multiplicative model stays consistent on the shared cells and
//! every embedded cluster is a genuine scaling tricluster.
//!
//! [`recovery`] scores mined clusters against the embedded truth by cell
//! Jaccard similarity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recovery;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tricluster_bitset::BitSet;
use tricluster_core::Tricluster;
use tricluster_matrix::Matrix3;

/// Generator specification. Start from [`SynthSpec::default`] (a scaled-down
/// version of the paper's defaults) or [`SynthSpec::paper_default`] (the
/// full `4000 × 30 × 20` configuration) and adjust fields.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Total genes in the matrix.
    pub n_genes: usize,
    /// Total samples.
    pub n_samples: usize,
    /// Total time points.
    pub n_times: usize,
    /// Number of clusters to embed.
    pub n_clusters: usize,
    /// Fraction (0..=1) of clusters that overlap a previously placed
    /// cluster (sharing about half of each dimension's indices).
    pub overlap_fraction: f64,
    /// Inclusive range of cluster sizes along genes.
    pub gene_range: (usize, usize),
    /// Inclusive range of cluster sizes along samples.
    pub sample_range: (usize, usize),
    /// Inclusive range of cluster sizes along times.
    pub time_range: (usize, usize),
    /// Maximum relative noise `ρ`: cluster cells are
    /// `v_i·v_j·v_k·(1 + U(−ρ, ρ))`.
    pub noise: f64,
    /// Base values `v` are drawn uniformly from this range.
    pub base_value_range: (f64, f64),
    /// Background (non-cluster) cells are drawn uniformly from this range.
    pub background_range: (f64, f64),
    /// RNG seed (the generator is fully deterministic given the spec).
    pub seed: u64,
}

impl Default for SynthSpec {
    /// A laptop-friendly scale: `1000 × 15 × 8` matrix, 8 clusters of
    /// roughly `80 × 5 × 3`, 20% overlap, 3% noise.
    fn default() -> Self {
        SynthSpec {
            n_genes: 1000,
            n_samples: 15,
            n_times: 8,
            n_clusters: 8,
            overlap_fraction: 0.2,
            gene_range: (80, 80),
            sample_range: (5, 5),
            time_range: (3, 3),
            noise: 0.03,
            base_value_range: (1.0, 3.0),
            background_range: (0.5, 30.0),
            seed: 42,
        }
    }
}

impl SynthSpec {
    /// The paper's default synthetic configuration: `4000 × 30 × 20` matrix,
    /// 10 clusters of `150 × 6 × 4`, 20% overlap, 3% noise.
    pub fn paper_default() -> Self {
        SynthSpec {
            n_genes: 4000,
            n_samples: 30,
            n_times: 20,
            n_clusters: 10,
            gene_range: (150, 150),
            sample_range: (6, 6),
            time_range: (4, 4),
            ..SynthSpec::default()
        }
    }

    /// An `ε` for the miner that tolerates this spec's noise: ratios of two
    /// noisy cells drift by up to `(1+ρ)/(1−ρ) − 1 ≈ 2ρ` each way, so `4.5ρ`
    /// (floor `0.001`) covers the worst case with margin.
    pub fn suggested_epsilon(&self) -> f64 {
        (4.5 * self.noise).max(0.001)
    }

    fn validate(&self) {
        assert!(self.n_genes > 0 && self.n_samples > 0 && self.n_times > 0);
        assert!(
            self.gene_range.0 >= 1 && self.gene_range.1 <= self.n_genes,
            "gene_range {:?} incompatible with {} genes",
            self.gene_range,
            self.n_genes
        );
        assert!(self.sample_range.0 >= 1 && self.sample_range.1 <= self.n_samples);
        assert!(self.time_range.0 >= 1 && self.time_range.1 <= self.n_times);
        assert!(self.gene_range.0 <= self.gene_range.1);
        assert!(self.sample_range.0 <= self.sample_range.1);
        assert!(self.time_range.0 <= self.time_range.1);
        assert!((0.0..=1.0).contains(&self.overlap_fraction));
        assert!(self.noise >= 0.0 && self.noise < 1.0);
        assert!(
            self.base_value_range.0 > 0.0 && self.base_value_range.0 <= self.base_value_range.1
        );
        assert!(
            self.background_range.0 > 0.0 && self.background_range.0 <= self.background_range.1
        );
    }
}

/// A generated dataset: the matrix plus the embedded ground truth.
#[derive(Debug, Clone)]
pub struct SynthDataset {
    /// The generated expression matrix.
    pub matrix: Matrix3,
    /// The embedded clusters (ground truth), in placement order.
    pub truth: Vec<Tricluster>,
}

/// Generates a dataset according to `spec`. Deterministic in `spec.seed`.
///
/// # Panics
/// Panics when the spec is inconsistent (cluster sizes exceeding matrix
/// dimensions, non-positive value ranges, …) or when the requested
/// *disjoint* clusters cannot fit in the gene dimension.
pub fn generate(spec: &SynthSpec) -> SynthDataset {
    spec.validate();
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // ---- place clusters ----
    let n_overlapping = (spec.overlap_fraction * spec.n_clusters as f64).round() as usize;
    let mut gene_pool: Vec<usize> = (0..spec.n_genes).collect();
    gene_pool.shuffle(&mut rng);
    let mut pool_next = 0usize;
    let mut take_fresh_genes = |count: usize, pool_next: &mut usize| -> Vec<usize> {
        assert!(
            *pool_next + count <= spec.n_genes,
            "not enough genes to place disjoint clusters: need {count} more, \
             {} unused of {}",
            spec.n_genes - *pool_next,
            spec.n_genes
        );
        let out = gene_pool[*pool_next..*pool_next + count].to_vec();
        *pool_next += count;
        out
    };

    let mut truth: Vec<Tricluster> = Vec::with_capacity(spec.n_clusters);
    // Overlaps come in pairs: a cluster may overlap its predecessor only if
    // that predecessor did not itself overlap (chains of shared indices
    // would let base values leak across three clusters and break the
    // multiplicative model on coincidentally shared samples/times).
    let mut overlaps_done = 0usize;
    let mut prev_overlapped = false;
    let mut overlap_flags: Vec<bool> = Vec::with_capacity(spec.n_clusters);
    for i in 0..spec.n_clusters {
        let flag = i > 0 && overlaps_done < n_overlapping && !prev_overlapped;
        if flag {
            overlaps_done += 1;
        }
        prev_overlapped = flag;
        overlap_flags.push(flag);
    }
    for i in 0..spec.n_clusters {
        let gx = rng.gen_range(spec.gene_range.0..=spec.gene_range.1);
        let sy = rng.gen_range(spec.sample_range.0..=spec.sample_range.1);
        let tz = rng.gen_range(spec.time_range.0..=spec.time_range.1);

        let overlapping = overlap_flags[i];
        let (genes, samples, times) = if overlapping {
            // share about half of each dimension with the previous cluster
            let prev = &truth[i - 1];
            let genes = mix_with_prev(
                &prev.genes.to_vec(),
                gx,
                &mut take_fresh_genes,
                &mut pool_next,
                &mut rng,
            );
            let samples = mix_subset(&prev.samples, sy, spec.n_samples, &mut rng);
            let times = mix_subset(&prev.times, tz, spec.n_times, &mut rng);
            (genes, samples, times)
        } else {
            let genes = take_fresh_genes(gx, &mut pool_next);
            (
                genes,
                random_subset(spec.n_samples, sy, &mut rng),
                random_subset(spec.n_times, tz, &mut rng),
            )
        };
        truth.push(Tricluster::new(
            BitSet::from_indices(spec.n_genes, genes),
            samples,
            times,
        ));
    }

    // ---- assign values ----
    let mut m = Matrix3::zeros(spec.n_genes, spec.n_samples, spec.n_times);
    let (bg_lo, bg_hi) = spec.background_range;
    for v in m.as_mut_slice() {
        *v = rng.gen_range(bg_lo..=bg_hi);
    }
    // Base values are drawn *per cluster* (the paper: "we generate at
    // random, base values for each dimension in the cluster"), so disjoint
    // clusters never line up into accidental cross-cluster coherent boxes.
    // An overlapping cluster inherits the previous cluster's base values on
    // the shared indices, which keeps the multiplicative model consistent
    // on (and around) the shared cells.
    let (v_lo, v_hi) = spec.base_value_range;
    type BaseMaps = (
        std::collections::HashMap<usize, f64>, // gene
        std::collections::HashMap<usize, f64>, // sample
        std::collections::HashMap<usize, f64>, // time
    );
    let mut prev_bases: Option<BaseMaps> = None;
    let mut filled: std::collections::HashSet<(u32, u32, u32)> = std::collections::HashSet::new();
    for (i, c) in truth.iter().enumerate() {
        let mut gene_base: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        let mut sample_base: std::collections::HashMap<usize, f64> =
            std::collections::HashMap::new();
        let mut time_base: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
        let overlapping = overlap_flags[i];
        if overlapping {
            if let Some((pg, ps, pt)) = &prev_bases {
                for g in c.genes.iter() {
                    if let Some(&v) = pg.get(&g) {
                        gene_base.insert(g, v);
                    }
                }
                for s in &c.samples {
                    if let Some(&v) = ps.get(s) {
                        sample_base.insert(*s, v);
                    }
                }
                for t in &c.times {
                    if let Some(&v) = pt.get(t) {
                        time_base.insert(*t, v);
                    }
                }
            }
        }
        for g in c.genes.iter() {
            gene_base
                .entry(g)
                .or_insert_with(|| rng.gen_range(v_lo..=v_hi));
        }
        for &s in &c.samples {
            sample_base
                .entry(s)
                .or_insert_with(|| rng.gen_range(v_lo..=v_hi));
        }
        for &t in &c.times {
            time_base
                .entry(t)
                .or_insert_with(|| rng.gen_range(v_lo..=v_hi));
        }
        for g in c.genes.iter() {
            let vi = gene_base[&g];
            for &s in &c.samples {
                let vj = sample_base[&s];
                for &t in &c.times {
                    if !filled.insert((g as u32, s as u32, t as u32)) {
                        continue; // keep the first cluster's noisy value
                    }
                    let vk = time_base[&t];
                    let rho = if spec.noise > 0.0 {
                        rng.gen_range(-spec.noise..=spec.noise)
                    } else {
                        0.0
                    };
                    m.set(g, s, t, vi * vj * vk * (1.0 + rho));
                }
            }
        }
        prev_bases = Some((gene_base, sample_base, time_base));
    }

    SynthDataset { matrix: m, truth }
}

fn random_subset(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.truncate(k);
    idx
}

/// Takes about half of `prev` (at most `k`) and fills up with fresh indices
/// outside `prev` from `0..n`.
fn mix_subset(prev: &[usize], k: usize, n: usize, rng: &mut StdRng) -> Vec<usize> {
    let shared = (k / 2).min(prev.len());
    let mut out: Vec<usize> = prev.to_vec();
    out.shuffle(rng);
    out.truncate(shared);
    let mut fresh: Vec<usize> = (0..n).filter(|i| !prev.contains(i)).collect();
    fresh.shuffle(rng);
    for f in fresh {
        if out.len() >= k {
            break;
        }
        out.push(f);
    }
    out
}

fn mix_with_prev(
    prev_genes: &[usize],
    k: usize,
    take_fresh: &mut impl FnMut(usize, &mut usize) -> Vec<usize>,
    pool_next: &mut usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let shared = (k / 2).min(prev_genes.len());
    let mut out: Vec<usize> = prev_genes.to_vec();
    out.shuffle(rng);
    out.truncate(shared);
    let fresh = take_fresh(k - out.len(), pool_next);
    out.extend(fresh);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tricluster_core::validate::is_coherent_region;

    fn small_spec() -> SynthSpec {
        SynthSpec {
            n_genes: 120,
            n_samples: 10,
            n_times: 6,
            n_clusters: 3,
            overlap_fraction: 0.0,
            gene_range: (20, 25),
            sample_range: (4, 5),
            time_range: (3, 4),
            noise: 0.0,
            seed: 7,
            ..SynthSpec::default()
        }
    }

    #[test]
    fn dimensions_and_truth_count() {
        let ds = generate(&small_spec());
        assert_eq!(ds.matrix.dims(), (120, 10, 6));
        assert_eq!(ds.truth.len(), 3);
        for c in &ds.truth {
            let (x, y, z) = c.shape();
            assert!((20..=25).contains(&x));
            assert!((4..=5).contains(&y));
            assert!((3..=4).contains(&z));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&small_spec());
        let b = generate(&small_spec());
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.truth, b.truth);
        let c = generate(&SynthSpec {
            seed: 8,
            ..small_spec()
        });
        assert_ne!(a.matrix, c.matrix);
    }

    #[test]
    fn noiseless_clusters_are_exactly_coherent() {
        let ds = generate(&small_spec());
        for c in &ds.truth {
            assert!(
                is_coherent_region(&ds.matrix, &c.genes, &c.samples, &c.times, 1e-9, 1e-9),
                "embedded cluster not coherent: {c:?}"
            );
        }
    }

    #[test]
    fn noisy_clusters_coherent_within_suggested_epsilon() {
        let spec = SynthSpec {
            noise: 0.03,
            ..small_spec()
        };
        let ds = generate(&spec);
        let eps = spec.suggested_epsilon();
        for c in &ds.truth {
            assert!(
                is_coherent_region(&ds.matrix, &c.genes, &c.samples, &c.times, eps, eps),
                "noisy cluster exceeds suggested epsilon {eps}: {c:?}"
            );
        }
    }

    #[test]
    fn disjoint_clusters_share_no_genes() {
        let ds = generate(&small_spec());
        for (i, a) in ds.truth.iter().enumerate() {
            for b in &ds.truth[i + 1..] {
                assert!(a.genes.is_disjoint(&b.genes));
            }
        }
    }

    #[test]
    fn overlapping_clusters_share_genes_and_stay_coherent() {
        let spec = SynthSpec {
            overlap_fraction: 0.5,
            n_clusters: 4,
            noise: 0.02,
            ..small_spec()
        };
        let ds = generate(&spec);
        // at least one consecutive pair shares genes
        let any_shared = ds
            .truth
            .windows(2)
            .any(|w| w[0].genes.intersection_count(&w[1].genes) > 0);
        assert!(any_shared);
        let eps = spec.suggested_epsilon();
        for c in &ds.truth {
            assert!(
                is_coherent_region(&ds.matrix, &c.genes, &c.samples, &c.times, eps, eps),
                "overlapping cluster broke coherence: {c:?}"
            );
        }
    }

    #[test]
    fn background_in_range() {
        let ds = generate(&small_spec());
        let in_cluster: std::collections::HashSet<(usize, usize, usize)> =
            ds.truth.iter().flat_map(|c| c.cells()).collect();
        let (lo, hi) = small_spec().background_range;
        for g in 0..120 {
            for s in 0..10 {
                for t in 0..6 {
                    if !in_cluster.contains(&(g, s, t)) {
                        let v = ds.matrix.get(g, s, t);
                        assert!((lo..=hi).contains(&v), "background {v} out of range");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not enough genes")]
    fn too_many_disjoint_clusters_panics() {
        generate(&SynthSpec {
            n_genes: 50,
            n_clusters: 3,
            gene_range: (20, 20),
            overlap_fraction: 0.0,
            ..small_spec()
        });
    }

    #[test]
    #[should_panic]
    fn cluster_bigger_than_matrix_panics() {
        generate(&SynthSpec {
            sample_range: (11, 11),
            ..small_spec()
        });
    }

    #[test]
    fn suggested_epsilon_scales_with_noise() {
        let mut spec = small_spec();
        spec.noise = 0.0;
        assert_eq!(spec.suggested_epsilon(), 0.001);
        spec.noise = 0.03;
        assert!((spec.suggested_epsilon() - 0.135).abs() < 1e-12);
    }

    #[test]
    fn paper_default_matches_paper() {
        let p = SynthSpec::paper_default();
        assert_eq!((p.n_genes, p.n_samples, p.n_times), (4000, 30, 20));
        assert_eq!(p.n_clusters, 10);
        assert_eq!(p.gene_range, (150, 150));
        assert_eq!(p.sample_range, (6, 6));
        assert_eq!(p.time_range, (4, 4));
        assert!((p.overlap_fraction - 0.2).abs() < 1e-12);
        assert!((p.noise - 0.03).abs() < 1e-12);
    }
}
