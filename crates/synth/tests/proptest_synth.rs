//! Property tests for the synthetic generator: every embedded cluster must
//! be coherent at the suggested ε, regardless of spec.

use proptest::prelude::*;
use tricluster_core::validate::is_coherent_region;
use tricluster_synth::{generate, recovery, SynthSpec};

fn arb_spec() -> impl Strategy<Value = SynthSpec> {
    (
        1usize..5,    // clusters
        0.0f64..1.0,  // overlap
        0.0f64..0.05, // noise
        0u64..1000,   // seed
        8usize..20,   // cluster genes
        3usize..5,    // cluster samples
        2usize..4,    // cluster times
    )
        .prop_map(|(k, overlap, noise, seed, gx, sy, tz)| SynthSpec {
            n_genes: 40 * k + 60,
            n_samples: 12,
            n_times: 8,
            n_clusters: k,
            overlap_fraction: overlap,
            gene_range: (gx, gx),
            sample_range: (sy, sy),
            time_range: (tz, tz),
            noise,
            seed,
            ..SynthSpec::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn embedded_clusters_are_coherent(spec in arb_spec()) {
        let ds = generate(&spec);
        prop_assert_eq!(ds.truth.len(), spec.n_clusters);
        let eps = spec.suggested_epsilon();
        for c in &ds.truth {
            prop_assert!(
                is_coherent_region(&ds.matrix, &c.genes, &c.samples, &c.times, eps, eps),
                "incoherent embedded cluster for spec {:?}: {:?}",
                spec, c
            );
        }
    }

    #[test]
    fn truth_shapes_respect_spec(spec in arb_spec()) {
        let ds = generate(&spec);
        for c in &ds.truth {
            let (x, y, z) = c.shape();
            prop_assert_eq!(x, spec.gene_range.0);
            prop_assert_eq!(y, spec.sample_range.0);
            prop_assert_eq!(z, spec.time_range.0);
        }
    }

    #[test]
    fn generation_is_deterministic(spec in arb_spec()) {
        let a = generate(&spec);
        let b = generate(&spec);
        prop_assert_eq!(a.matrix, b.matrix);
        prop_assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn self_recovery_is_perfect(spec in arb_spec()) {
        // scoring the truth against itself: recall = precision = 1
        let ds = generate(&spec);
        let report = recovery::score(&ds.truth, &ds.truth, 0.999);
        prop_assert_eq!(report.recall, 1.0);
        prop_assert_eq!(report.precision, 1.0);
    }

    #[test]
    fn jaccard_is_symmetric_and_bounded(spec in arb_spec()) {
        let ds = generate(&spec);
        for a in &ds.truth {
            for b in &ds.truth {
                let j1 = recovery::span_jaccard(a, b);
                let j2 = recovery::span_jaccard(b, a);
                prop_assert!((j1 - j2).abs() < 1e-12);
                prop_assert!((0.0..=1.0).contains(&j1));
            }
            prop_assert_eq!(recovery::span_jaccard(a, a), 1.0);
        }
    }
}
