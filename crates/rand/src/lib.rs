//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so this in-tree crate
//! implements exactly the API subset the workspace uses:
//!
//! * [`Rng`] with `gen_range` (half-open and inclusive ranges over the
//!   integer and float types used in the workspace) and `gen`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], and
//! * [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256**, seeded via SplitMix64 — a deterministic,
//! high-quality PRNG. Streams differ from the real `rand` crate's `StdRng`
//! (which is ChaCha12), so seeded data generation produces *different but
//! equally deterministic* datasets. Nothing in the workspace depends on the
//! exact stream, only on determinism and distribution quality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random bits plus the typed sampling helpers used here.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw output.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a value uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a value of a type with a canonical uniform distribution.
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

/// Types a generator can produce directly via [`Rng::gen`].
pub trait Uniform {
    /// Samples one value from `rng`.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

impl Uniform for u32 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Uniform for u64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for f64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Uniform for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (no modulo bias
/// worth caring about at these bound sizes).
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * rng.next_f64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&w));
            let x = rng.gen_range(5u64..=5);
            assert_eq!(x, 5);
            let y = rng.gen_range(-10i64..-3);
            assert!((-10..-3).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }
}
