//! Deterministic fault injection for the TriCluster workspace.
//!
//! The build environment is fully offline, so — like `crates/rand` and
//! `crates/proptest` — this is an in-tree stand-in for the usual
//! `fail`/`failpoints` crates, covering exactly the API surface the
//! workspace needs.
//!
//! A *failpoint* is a named site compiled into production code (e.g.
//! `"core.bicluster.branch"`). Tests arm a site with an [`Action`] and then
//! drive the code under test; when execution reaches the site, the action
//! fires:
//!
//! - [`Action::Panic`] panics with a message naming the site,
//! - [`Action::Error`] hands an error message back to the site (sites
//!   without an error channel escalate it to a panic),
//! - [`Action::Delay`] sleeps, then continues normally (used to force
//!   deadline budgets to fire deterministically).
//!
//! Sites fire a bounded number of times ([`configure_times`]) or until
//! disarmed. All configuration is process-global; tests serialize through
//! [`scenario`], whose guard clears every site on drop.
//!
//! # Zero cost when disabled
//!
//! Without the `enabled` cargo feature, [`trigger`] is an inlined function
//! returning `None` and the registry does not exist — call sites compile to
//! nothing. The workspace only turns the feature on for test builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

/// What an armed failpoint does when execution reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Panic with `"failpoint <site>: injected panic"`.
    Panic,
    /// Return `"failpoint <site>: injected error"` to the site. Sites with
    /// no error channel escalate this to a panic carrying the same message.
    Error,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
}

#[cfg(feature = "enabled")]
mod imp {
    use super::Action;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// An armed site: the action plus how many more times it may fire
    /// (`None` = unlimited).
    struct Armed {
        action: Action,
        remaining: Option<u64>,
    }

    /// Number of armed sites; lets `trigger` bail with one atomic load on
    /// the (overwhelmingly common) nothing-armed path.
    static ARMED_COUNT: AtomicUsize = AtomicUsize::new(0);

    fn registry() -> &'static Mutex<HashMap<String, Armed>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock_registry() -> MutexGuard<'static, HashMap<String, Armed>> {
        // A panic injected while the registry lock is held cannot happen
        // (the lock is released before the action fires), but a panicking
        // *test* can poison it between calls; recover rather than cascade.
        registry()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn configure(site: &str, action: Action, times: Option<u64>) {
        if times == Some(0) {
            return;
        }
        let mut map = lock_registry();
        if map
            .insert(
                site.to_owned(),
                Armed {
                    action,
                    remaining: times,
                },
            )
            .is_none()
        {
            ARMED_COUNT.fetch_add(1, Ordering::SeqCst);
        }
    }

    pub fn disarm(site: &str) {
        let mut map = lock_registry();
        if map.remove(site).is_some() {
            ARMED_COUNT.fetch_sub(1, Ordering::SeqCst);
        }
    }

    pub fn reset() {
        let mut map = lock_registry();
        let n = map.len();
        map.clear();
        ARMED_COUNT.fetch_sub(n, Ordering::SeqCst);
    }

    pub fn trigger(site: &str) -> Option<String> {
        if ARMED_COUNT.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let action = {
            let mut map = lock_registry();
            let armed = map.get_mut(site)?;
            let action = armed.action.clone();
            if let Some(n) = &mut armed.remaining {
                *n -= 1;
                if *n == 0 {
                    map.remove(site);
                    ARMED_COUNT.fetch_sub(1, Ordering::SeqCst);
                }
            }
            action
        };
        match action {
            Action::Panic => panic!("failpoint {site}: injected panic"),
            Action::Error => Some(format!("failpoint {site}: injected error")),
            Action::Delay(d) => {
                std::thread::sleep(d);
                None
            }
        }
    }

    /// Guard serializing scenario-based tests (see [`super::scenario`]).
    pub struct Scenario {
        _guard: MutexGuard<'static, ()>,
    }

    impl Drop for Scenario {
        fn drop(&mut self) {
            reset();
        }
    }

    pub fn scenario() -> Scenario {
        static SCENARIO: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = SCENARIO
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        reset();
        Scenario { _guard: guard }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::Action;

    #[inline(always)]
    pub fn configure(_site: &str, _action: Action, _times: Option<u64>) {}

    #[inline(always)]
    pub fn disarm(_site: &str) {}

    #[inline(always)]
    pub fn reset() {}

    #[inline(always)]
    pub fn trigger(_site: &str) -> Option<String> {
        None
    }

    /// Inert stand-in for the `enabled` scenario guard.
    pub struct Scenario;

    pub fn scenario() -> Scenario {
        Scenario
    }
}

pub use imp::Scenario;

/// Arms `site` with `action`, firing on every hit until disarmed.
pub fn configure(site: &str, action: Action) {
    imp::configure(site, action, None);
}

/// Arms `site` with `action` for exactly one hit, then disarms it. The tool
/// for "one poisoned work unit" scenarios.
pub fn configure_once(site: &str, action: Action) {
    imp::configure(site, action, Some(1));
}

/// Arms `site` with `action` for at most `times` hits.
pub fn configure_times(site: &str, action: Action, times: u64) {
    imp::configure(site, action, Some(times));
}

/// Disarms `site` (no-op when not armed).
pub fn disarm(site: &str) {
    imp::disarm(site);
}

/// Disarms every site.
pub fn reset() {
    imp::reset();
}

/// Evaluates the failpoint `site`.
///
/// Returns `None` when the site is not armed (or the crate is compiled
/// without `enabled`) and after a [`Action::Delay`] completes. Returns the
/// injected error message for [`Action::Error`]. Panics for
/// [`Action::Panic`].
#[inline]
pub fn trigger(site: &str) -> Option<String> {
    imp::trigger(site)
}

/// Starts an injection scenario: takes a process-global lock (serializing
/// concurrent scenario tests) and clears all sites both on entry and when
/// the returned guard drops, so scenarios cannot leak configuration into
/// each other. Without the `enabled` feature this is an inert guard.
pub fn scenario() -> Scenario {
    imp::scenario()
}

#[cfg(all(test, feature = "enabled"))]
mod enabled_tests {
    use super::*;

    #[test]
    fn unarmed_sites_are_silent() {
        let _s = scenario();
        assert_eq!(trigger("nope"), None);
    }

    #[test]
    fn error_action_returns_message_every_hit() {
        let _s = scenario();
        configure("site.err", Action::Error);
        for _ in 0..3 {
            let msg = trigger("site.err").expect("armed");
            assert!(msg.contains("site.err"), "{msg}");
            assert!(msg.contains("injected error"), "{msg}");
        }
        disarm("site.err");
        assert_eq!(trigger("site.err"), None);
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _s = scenario();
        configure("site.boom", Action::Panic);
        let err = std::panic::catch_unwind(|| trigger("site.boom")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("site.boom"), "{msg}");
    }

    #[test]
    fn once_fires_exactly_once() {
        let _s = scenario();
        configure_once("site.once", Action::Error);
        assert!(trigger("site.once").is_some());
        assert_eq!(trigger("site.once"), None);
    }

    #[test]
    fn times_bounds_the_hit_count() {
        let _s = scenario();
        configure_times("site.twice", Action::Error, 2);
        assert!(trigger("site.twice").is_some());
        assert!(trigger("site.twice").is_some());
        assert_eq!(trigger("site.twice"), None);
        configure_times("site.zero", Action::Error, 0);
        assert_eq!(trigger("site.zero"), None);
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        let _s = scenario();
        configure("site.slow", Action::Delay(Duration::from_millis(5)));
        let start = std::time::Instant::now();
        assert_eq!(trigger("site.slow"), None);
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn scenario_guard_clears_configuration() {
        {
            let _s = scenario();
            configure("site.leak", Action::Error);
        }
        let _s = scenario();
        assert_eq!(trigger("site.leak"), None);
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod disabled_tests {
    use super::*;

    #[test]
    fn everything_is_inert() {
        let _s = scenario();
        configure("site", Action::Panic);
        assert_eq!(trigger("site"), None);
        reset();
    }
}
